//! `bichrome-streaming` — the W-streaming model of §6.4 and
//! Corollary 1.2, made executable.
//!
//! In the **W-streaming model** the edges arrive as a stream, the
//! algorithm keeps `s` bits of internal state, and — unlike classic
//! streaming — it may also *emit* output (edge colors) as it goes, so
//! `s` can be far below the output size. The paper proves the first
//! non-trivial space lower bound for edge coloring here: any
//! constant-pass `(2Δ−1)`-edge-coloring W-streaming algorithm needs
//! `Ω(n)` bits of space (Corollary 1.2), via a reduction from the
//! *weaker-(2Δ−1)* two-party problem.
//!
//! This crate provides:
//!
//! * [`model`] — the [`model::WStreamingAlgorithm`] trait with exact
//!   self-reported space accounting, audited per edge by the harness
//!   [`model::run_w_streaming`].
//! * [`algorithms`] — two concrete algorithms: the one-pass greedy
//!   `(2Δ−1)`-coloring with `Θ(nΔ)` bits of state, and a chunked
//!   low-memory variant in the spirit of the simple algorithms of
//!   Ansari–Saneian–Zarrabi-Zadeh / Saneian–Behnezhad (`Õ(n√Δ)` space,
//!   more colors — see the type docs for the exact trade-off).
//! * [`reduction`] — the §6.4 reduction direction made executable: two
//!   parties simulate any W-streaming algorithm by shipping its state
//!   once per pass, solving the *weaker* two-party problem with
//!   `passes × state` bits; Theorem 5's `Ω(n)` bound on that problem
//!   is what pushes the space bound back onto the streaming model.
//! * [`weaker`] — the weaker-(2Δ−1) problem's output discipline and
//!   validator (each edge's color must be output by *at least one*
//!   party).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod model;
pub mod reduction;
pub mod weaker;

pub use model::{run_w_streaming, SpaceStats, WStreamingAlgorithm};
