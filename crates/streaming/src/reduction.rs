//! The §6.4 reduction, executable: two parties jointly simulate a
//! W-streaming algorithm by streaming Alice's edges first, shipping
//! the algorithm's state across (`state` bits), then streaming Bob's
//! edges — one state transfer per pass.
//!
//! The simulation solves the **weaker**-(2Δ−1) problem: whichever
//! party is driving the stream when a color is emitted reports it.
//! Consequently an `s`-space, `r`-pass W-streaming algorithm yields an
//! `O(r·s)`-bit weaker-two-party protocol; since Theorem 5 proves
//! `Ω(n)` bits are necessary, every constant-pass `(2Δ−1)`-edge
//! W-streaming algorithm needs `Ω(n)` bits of space — Corollary 1.2.

use crate::model::WStreamingAlgorithm;
use crate::weaker::WeakerOutput;
use bichrome_comm::session::run_two_party_ctx;
use bichrome_comm::wire::{BitWriter, Message};
use bichrome_comm::{CommStats, Side};
use bichrome_graph::coloring::EdgeColoring;
use bichrome_graph::partition::EdgePartition;

/// Result of the streaming simulation.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Both parties' reported colors (weaker output discipline).
    pub output: WeakerOutput,
    /// Bits and rounds of the two-party simulation — `≈ passes ×
    /// state-size`, the quantity Corollary 1.2 lower-bounds.
    pub stats: CommStats,
}

/// Simulates the W-streaming algorithm produced by `make_alg` (called
/// once per party) on the stream "Alice's edges then Bob's edges".
///
/// Within each pass, Alice runs the algorithm over her edges,
/// exports its state and ships it (metered); Bob imports, continues
/// over his edges, and — if more passes remain — ships the state back.
pub fn simulate_streaming_two_party<A>(
    partition: &EdgePartition,
    make_alg: impl Fn() -> A + Send + Sync,
    seed: u64,
) -> SimulationOutcome
where
    A: WStreamingAlgorithm,
{
    let alice_edges = partition.alice().edges().to_vec();
    let bob_edges = partition.bob().edges().to_vec();
    let make_ref = &make_alg;

    let party = |side: Side| {
        let my_edges = if side == Side::Alice {
            alice_edges.clone()
        } else {
            bob_edges.clone()
        };
        move |ctx: bichrome_comm::session::PartyCtx| {
            let mut alg = make_ref();
            let mut reported = EdgeColoring::new();
            let passes = alg.passes();
            for pass in 0..passes {
                match side {
                    Side::Alice => {
                        // Alice streams first. On later passes she first
                        // receives the state Bob finished the previous
                        // pass with.
                        if pass > 0 {
                            let state = ctx.endpoint.recv();
                            alg.import_state(&bits_to_bytes(&state));
                        }
                        alg.begin_pass(pass);
                        for &e in &my_edges {
                            reported.extend(alg.process_edge(e));
                        }
                        ctx.endpoint.send(bytes_to_bits(&alg.export_state()));
                    }
                    Side::Bob => {
                        if pass > 0 {
                            ctx.endpoint.send(bytes_to_bits(&alg.export_state()));
                        }
                        let state = ctx.endpoint.recv();
                        if pass == 0 {
                            alg.begin_pass(pass);
                        }
                        alg.import_state(&bits_to_bytes(&state));
                        for &e in &my_edges {
                            reported.extend(alg.process_edge(e));
                        }
                        reported.extend(alg.end_pass());
                    }
                }
            }
            reported
        }
    };

    let (alice, bob, stats) = run_two_party_ctx(seed, party(Side::Alice), party(Side::Bob));
    SimulationOutcome {
        output: WeakerOutput { alice, bob },
        stats,
    }
}

fn bytes_to_bits(bytes: &[u8]) -> Message {
    let mut w = BitWriter::new();
    for &b in bytes {
        w.write_uint(b as u64, 8);
    }
    w.finish()
}

fn bits_to_bytes(msg: &Message) -> Vec<u8> {
    let mut r = msg.reader();
    let mut out = Vec::with_capacity(msg.len_bits() / 8);
    while r.remaining() >= 8 {
        out.push(r.read_uint(8) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ChunkedWStreaming, GreedyWStreaming};
    use crate::weaker::validate_weaker_output;
    use bichrome_graph::coloring::validate_edge_coloring;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn greedy_simulation_solves_weaker_problem() {
        for seed in 0..3 {
            let g = gen::gnm_max_degree(40, 120, 7, seed);
            let delta = g.max_degree().max(1);
            for part in Partitioner::family(seed) {
                let p = part.split(&g);
                let out = simulate_streaming_two_party(&p, || GreedyWStreaming::new(40, delta), 0);
                validate_weaker_output(&g, &out.output, 2 * delta - 1)
                    .unwrap_or_else(|e| panic!("{part}: {e}"));
            }
        }
    }

    #[test]
    fn simulation_cost_equals_state_size() {
        let g = gen::gnm_max_degree(50, 150, 8, 2);
        let delta = g.max_degree();
        let p = Partitioner::Random(1).split(&g);
        let out = simulate_streaming_two_party(&p, || GreedyWStreaming::new(50, delta), 0);
        // One pass → exactly one state transfer (byte-rounded).
        let state_bits = (50 * (2 * delta - 1)) as u64;
        let expected = state_bits.div_ceil(8) * 8;
        assert_eq!(out.stats.total_bits(), expected);
        assert_eq!(out.stats.rounds, 1);
    }

    #[test]
    fn chunked_simulation_is_cheaper_but_more_colorful() {
        // Δ large relative to log n so the Õ(n√Δ) buffer undercuts the
        // n·(2Δ−1) greedy masks at the transfer point.
        let g = gen::gnm_max_degree(64, 900, 32, 5);
        let delta = g.max_degree();
        let p = Partitioner::Alternating.split(&g);
        let greedy = simulate_streaming_two_party(&p, || GreedyWStreaming::new(64, delta), 0);
        let chunked = simulate_streaming_two_party(
            &p,
            || ChunkedWStreaming::with_sqrt_delta_capacity(64, delta),
            0,
        );
        let gc = greedy.output.combined().expect("consistent");
        let cc = chunked.output.combined().expect("consistent");
        assert!(validate_edge_coloring(&g, &gc).is_ok());
        assert!(validate_edge_coloring(&g, &cc).is_ok());
        // Note: the chunked state *at the transfer point* may exceed the
        // greedy mask for extreme parameters; for this shape it is far
        // smaller, mirroring the space comparison.
        assert!(chunked.stats.total_bits() < greedy.stats.total_bits());
        assert!(cc.num_distinct_colors() >= gc.num_distinct_colors());
    }

    #[test]
    fn one_sided_partitions_still_work() {
        let g = gen::gnm_max_degree(30, 90, 6, 7);
        let delta = g.max_degree();
        for part in [Partitioner::AllToAlice, Partitioner::AllToBob] {
            let p = part.split(&g);
            let out = simulate_streaming_two_party(&p, || GreedyWStreaming::new(30, delta), 0);
            validate_weaker_output(&g, &out.output, 2 * delta - 1)
                .unwrap_or_else(|e| panic!("{part}: {e}"));
        }
    }
}
