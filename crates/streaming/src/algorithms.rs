//! Concrete W-streaming edge-coloring algorithms.

use crate::model::WStreamingAlgorithm;
use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::greedy::greedy_edge_coloring_with;
use bichrome_graph::{builder, Edge};

/// One-pass greedy `(2Δ−1)`-edge coloring.
///
/// Keeps, per vertex, the bitmask of colors already used at that
/// vertex — `n·(2Δ−1)` bits of state. Every arriving edge gets the
/// smallest color free at both endpoints (at most `2Δ−2` are blocked)
/// and is emitted immediately; nothing else is stored. This is the
/// "trivial" upper bound the paper's streaming discussion starts from,
/// and its `Θ(n)`-for-constant-Δ space is exactly what Corollary 1.2
/// proves necessary.
#[derive(Debug, Clone)]
pub struct GreedyWStreaming {
    n: usize,
    colors: usize,
    used: Vec<Vec<bool>>,
}

impl GreedyWStreaming {
    /// A greedy streamer for an `n`-vertex stream with maximum degree
    /// `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn new(n: usize, delta: usize) -> Self {
        assert!(delta >= 1, "need a positive maximum degree");
        let colors = 2 * delta - 1;
        GreedyWStreaming {
            n,
            colors,
            used: vec![vec![false; colors]; n],
        }
    }

    /// Number of colors in the palette (`2Δ−1`).
    pub fn palette_size(&self) -> usize {
        self.colors
    }
}

impl WStreamingAlgorithm for GreedyWStreaming {
    fn begin_pass(&mut self, pass: usize) {
        assert_eq!(pass, 0, "single-pass algorithm");
    }

    fn process_edge(&mut self, e: Edge) -> Vec<(Edge, ColorId)> {
        let (u, v) = (e.u().index(), e.v().index());
        let c = (0..self.colors)
            .find(|&c| !self.used[u][c] && !self.used[v][c])
            .expect("an edge is adjacent to at most 2Δ−2 colored edges");
        self.used[u][c] = true;
        self.used[v][c] = true;
        vec![(e, ColorId(c as u32))]
    }

    fn end_pass(&mut self) -> Vec<(Edge, ColorId)> {
        Vec::new()
    }

    fn state_bits(&self) -> u64 {
        (self.n * self.colors) as u64
    }

    fn export_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.n * self.colors).div_ceil(8));
        let mut acc = 0u8;
        let mut fill = 0;
        for row in &self.used {
            for &b in row {
                if b {
                    acc |= 1 << fill;
                }
                fill += 1;
                if fill == 8 {
                    out.push(acc);
                    acc = 0;
                    fill = 0;
                }
            }
        }
        if fill > 0 {
            out.push(acc);
        }
        out
    }

    fn import_state(&mut self, bytes: &[u8]) {
        let mut iter = (0..self.n * self.colors).map(|i| {
            let byte = bytes[i / 8];
            (byte >> (i % 8)) & 1 == 1
        });
        for row in &mut self.used {
            for slot in row.iter_mut() {
                *slot = iter.next().expect("state length matches");
            }
        }
    }
}

/// Bits needed to address a vertex of an `n`-vertex graph.
fn vertex_bits(n: usize) -> usize {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize
}

/// Chunked low-memory streamer in the spirit of the simple algorithms
/// of \[ASZ22\] / \[SB24\]: buffer up to `chunk_capacity` edges, then
/// properly color the buffered subgraph with a *fresh* palette slice
/// and flush.
///
/// Because palette slices of different chunks are disjoint, incident
/// edges in different chunks never clash; within a chunk the greedy
/// subgraph coloring handles conflicts. With capacity `K`:
///
/// * **space** is `O(K log n)` bits (the buffer) — choosing
///   `K = n·⌈√Δ⌉ / 2` gives the `Õ(n√Δ)` profile of \[SB24\];
/// * **colors** total `Σ_chunks (2Δ_chunk − 1) = O((m/K)·Δ)` — the
///   simple trade-off; the full \[SB24\] algorithm sharpens this to
///   `O(Δ)` with a considerably more intricate chunk coloring, which
///   is out of scope here (DESIGN.md records the substitution).
#[derive(Debug, Clone)]
pub struct ChunkedWStreaming {
    n: usize,
    chunk_capacity: usize,
    buffer: Vec<Edge>,
    next_color: u32,
}

impl ChunkedWStreaming {
    /// A chunked streamer with the given buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_capacity == 0`.
    pub fn new(n: usize, chunk_capacity: usize) -> Self {
        assert!(chunk_capacity >= 1, "need room for at least one edge");
        ChunkedWStreaming {
            n,
            chunk_capacity,
            buffer: Vec::new(),
            next_color: 0,
        }
    }

    /// The `Õ(n√Δ)`-space parameterization: capacity `n·⌈√Δ⌉/2`
    /// (at least 1).
    pub fn with_sqrt_delta_capacity(n: usize, delta: usize) -> Self {
        let cap = (n * (delta as f64).sqrt().ceil() as usize / 2).max(1);
        Self::new(n, cap)
    }

    /// Total colors consumed so far.
    pub fn colors_used(&self) -> usize {
        self.next_color as usize
    }

    fn flush(&mut self) -> Vec<(Edge, ColorId)> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        let chunk = builder::from_edges(self.n, self.buffer.drain(..));
        let colored = greedy_edge_coloring_with(
            &chunk,
            EdgeColoring::dense_for(&chunk),
            chunk.edges().iter().copied(),
        );
        let base = self.next_color;
        let width = colored.max_color().map_or(0, |c| c.0 + 1);
        self.next_color += width;
        colored
            .iter()
            .map(|(e, c)| (e, ColorId(base + c.0)))
            .collect()
    }
}

impl WStreamingAlgorithm for ChunkedWStreaming {
    fn begin_pass(&mut self, pass: usize) {
        assert_eq!(pass, 0, "single-pass algorithm");
    }

    fn process_edge(&mut self, e: Edge) -> Vec<(Edge, ColorId)> {
        self.buffer.push(e);
        if self.buffer.len() >= self.chunk_capacity {
            self.flush()
        } else {
            Vec::new()
        }
    }

    fn end_pass(&mut self) -> Vec<(Edge, ColorId)> {
        self.flush()
    }

    fn state_bits(&self) -> u64 {
        // Buffer entries at 2⌈log n⌉ bits each, plus the color cursor
        // and length header.
        self.buffer.len() as u64 * 2 * vertex_bits(self.n) as u64 + 64
    }

    fn export_state(&self) -> Vec<u8> {
        // Bit-pack endpoints at ⌈log₂ n⌉ bits each so the serialized
        // size matches `state_bits` (up to byte rounding) — the
        // two-party simulation meters these bytes.
        let vbits = vertex_bits(self.n);
        let mut w = bichrome_comm::BitWriter::new();
        w.write_uint(self.next_color as u64, 32);
        w.write_uint(self.buffer.len() as u64, 32);
        for e in &self.buffer {
            w.write_uint(e.u().0 as u64, vbits);
            w.write_uint(e.v().0 as u64, vbits);
        }
        let msg = w.finish();
        let mut r = msg.reader();
        let mut out = Vec::with_capacity(msg.len_bits() / 8 + 1);
        while r.remaining() >= 8 {
            out.push(r.read_uint(8) as u8);
        }
        if r.remaining() > 0 {
            let rem = r.remaining();
            out.push(r.read_uint(rem) as u8);
        }
        out
    }

    fn import_state(&mut self, bytes: &[u8]) {
        let vbits = vertex_bits(self.n);
        let mut w = bichrome_comm::BitWriter::new();
        for &b in bytes {
            w.write_uint(b as u64, 8);
        }
        let msg = w.finish();
        let mut r = msg.reader();
        self.next_color = r.read_uint(32) as u32;
        let len = r.read_uint(32) as usize;
        self.buffer.clear();
        for _ in 0..len {
            let u = r.read_uint(vbits) as u32;
            let v = r.read_uint(vbits) as u32;
            self.buffer.push(Edge::new(u.into(), v.into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::run_w_streaming;
    use bichrome_graph::coloring::{validate_edge_coloring, validate_edge_coloring_with_palette};
    use bichrome_graph::gen;

    #[test]
    fn greedy_streaming_is_proper_within_palette() {
        for seed in 0..5 {
            let g = gen::gnm_max_degree(50, 150, 8, seed);
            let delta = g.max_degree().max(1);
            let mut alg = GreedyWStreaming::new(50, delta);
            let (coloring, stats) = run_w_streaming(&mut alg, g.edges());
            assert!(validate_edge_coloring_with_palette(&g, &coloring, 2 * delta - 1).is_ok());
            assert_eq!(stats.max_state_bits, (50 * (2 * delta - 1)) as u64);
        }
    }

    #[test]
    fn greedy_state_roundtrips() {
        let g = gen::gnm_max_degree(20, 40, 5, 1);
        let mut a = GreedyWStreaming::new(20, 5);
        a.begin_pass(0);
        for &e in &g.edges()[..20] {
            let _ = a.process_edge(e);
        }
        let mut b = GreedyWStreaming::new(20, 5);
        b.import_state(&a.export_state());
        assert_eq!(a.used, b.used);
    }

    #[test]
    fn chunked_streaming_is_proper() {
        for seed in 0..5 {
            let g = gen::gnm_max_degree(40, 200, 12, seed);
            let mut alg = ChunkedWStreaming::new(40, 25);
            let (coloring, _) = run_w_streaming(&mut alg, g.edges());
            assert!(validate_edge_coloring(&g, &coloring).is_ok());
        }
    }

    #[test]
    fn chunked_trades_space_for_colors() {
        let g = gen::gnm_max_degree(60, 600, 24, 3);
        let delta = g.max_degree();

        let mut greedy = GreedyWStreaming::new(60, delta);
        let (cg, sg) = run_w_streaming(&mut greedy, g.edges());

        let mut chunked = ChunkedWStreaming::with_sqrt_delta_capacity(60, delta);
        let (cc, sc) = run_w_streaming(&mut chunked, g.edges());

        assert!(validate_edge_coloring(&g, &cg).is_ok());
        assert!(validate_edge_coloring(&g, &cc).is_ok());
        assert!(
            sc.max_state_bits < sg.max_state_bits,
            "chunked must use less space: {} vs {}",
            sc.max_state_bits,
            sg.max_state_bits
        );
        assert!(
            cc.num_distinct_colors() >= cg.num_distinct_colors(),
            "the space saving costs colors"
        );
    }

    #[test]
    fn chunked_state_roundtrips() {
        let mut a = ChunkedWStreaming::new(10, 100);
        a.begin_pass(0);
        let _ = a.process_edge(Edge::new(0.into(), 1.into()));
        let _ = a.process_edge(Edge::new(2.into(), 3.into()));
        let mut b = ChunkedWStreaming::new(10, 100);
        b.import_state(&a.export_state());
        assert_eq!(a.buffer, b.buffer);
        assert_eq!(a.next_color, b.next_color);
    }

    #[test]
    fn chunked_capacity_one_gives_per_edge_palettes() {
        // Degenerate corner: every edge its own chunk → every edge its
        // own color, trivially proper.
        let g = gen::path(5);
        let mut alg = ChunkedWStreaming::new(5, 1);
        let (coloring, _) = run_w_streaming(&mut alg, g.edges());
        assert!(validate_edge_coloring(&g, &coloring).is_ok());
        assert_eq!(coloring.num_distinct_colors(), 4);
    }
}
