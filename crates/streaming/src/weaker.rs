//! The weaker-(2Δ−1)-edge-coloring problem (§6.4).
//!
//! Identical input setup to the standard two-party problem, but
//! relaxed output discipline: *each edge's color must be reported by
//! at least one party* (not necessarily its owner). This is the
//! problem the W-streaming reduction targets — a streaming algorithm
//! may emit the color of an Alice edge while Bob's half of the stream
//! is being processed — and Theorem 5 shows it still needs `Ω(n)`
//! bits.

use bichrome_graph::coloring::{validate_edge_coloring_with_palette, ColoringError, EdgeColoring};
use bichrome_graph::Graph;

/// Both parties' reported outputs for a weaker-(2Δ−1) instance.
#[derive(Debug, Clone, Default)]
pub struct WeakerOutput {
    /// Colors Alice reported (any edges, not just hers).
    pub alice: EdgeColoring,
    /// Colors Bob reported.
    pub bob: EdgeColoring,
}

impl WeakerOutput {
    /// Combined view of both reports.
    ///
    /// # Errors
    ///
    /// Returns the offending edge if the parties report *conflicting*
    /// colors for it (reporting the same color twice is fine).
    pub fn combined(&self) -> Result<EdgeColoring, bichrome_graph::Edge> {
        let mut all = self.alice.clone();
        all.merge(&self.bob)?;
        Ok(all)
    }
}

/// Validates a weaker-(2Δ−1) output against the whole graph: every
/// edge reported by someone, no conflicting double reports, proper,
/// and within the `2Δ−1` palette.
///
/// # Errors
///
/// Returns the first [`ColoringError`] found; double reports with
/// different colors surface as [`ColoringError::UncoloredEdge`]-free
/// merge failure mapped to `IncidentEdges`-style errors by the caller —
/// here they are reported via `Err` from the merge as an uncolored
/// marker on the conflicting edge.
pub fn validate_weaker_output(
    g: &Graph,
    out: &WeakerOutput,
    palette_size: usize,
) -> Result<(), ColoringError> {
    let combined = out.combined().map_err(ColoringError::UncoloredEdge)?; // conflicting report
    validate_edge_coloring_with_palette(g, &combined, palette_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::coloring::ColorId;
    use bichrome_graph::{gen, Edge, VertexId};

    #[test]
    fn cross_reporting_is_allowed() {
        let g = gen::path(3);
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        // Alice reports *both* edges (even if one belongs to Bob).
        let mut alice = EdgeColoring::new();
        alice.set(e01, ColorId(0));
        alice.set(e12, ColorId(1));
        let out = WeakerOutput {
            alice,
            bob: EdgeColoring::new(),
        };
        assert!(validate_weaker_output(&g, &out, 3).is_ok());
    }

    #[test]
    fn agreement_on_double_reports_is_fine() {
        let g = gen::path(2);
        let e = Edge::new(VertexId(0), VertexId(1));
        let mut alice = EdgeColoring::new();
        alice.set(e, ColorId(0));
        let mut bob = EdgeColoring::new();
        bob.set(e, ColorId(0));
        let out = WeakerOutput { alice, bob };
        assert!(validate_weaker_output(&g, &out, 1).is_ok());
    }

    #[test]
    fn conflicting_double_reports_fail() {
        let g = gen::path(2);
        let e = Edge::new(VertexId(0), VertexId(1));
        let mut alice = EdgeColoring::new();
        alice.set(e, ColorId(0));
        let mut bob = EdgeColoring::new();
        bob.set(e, ColorId(1));
        let out = WeakerOutput { alice, bob };
        assert!(validate_weaker_output(&g, &out, 3).is_err());
    }

    #[test]
    fn missing_edges_fail() {
        let g = gen::path(3);
        let out = WeakerOutput::default();
        assert!(matches!(
            validate_weaker_output(&g, &out, 3),
            Err(ColoringError::UncoloredEdge(_))
        ));
    }
}
