//! The W-streaming execution model.

use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::Edge;
use serde::{Deserialize, Serialize};

/// A W-streaming algorithm: processes an edge stream with bounded
/// internal state, emitting `(edge, color)` outputs along the way.
///
/// Space accounting is *self-reported* through
/// [`WStreamingAlgorithm::state_bits`] and audited by the harness
/// after every edge; implementations must report the information
/// content of their live state (not Rust allocation sizes), the way
/// the streaming literature counts space.
pub trait WStreamingAlgorithm {
    /// Called at the start of pass `pass` (0-based) over the stream.
    fn begin_pass(&mut self, pass: usize);

    /// Processes the next edge of the stream; returns any outputs
    /// emitted now.
    fn process_edge(&mut self, e: Edge) -> Vec<(Edge, ColorId)>;

    /// Called at the end of a pass; returns any final outputs for the
    /// pass.
    fn end_pass(&mut self) -> Vec<(Edge, ColorId)>;

    /// Total number of passes this algorithm makes over the stream.
    fn passes(&self) -> usize {
        1
    }

    /// Current internal state size in bits.
    fn state_bits(&self) -> u64;

    /// Serializes the internal state (used by the two-party
    /// simulation of [`crate::reduction`]). The byte length must be
    /// consistent with [`WStreamingAlgorithm::state_bits`] up to
    /// byte-rounding.
    fn export_state(&self) -> Vec<u8>;

    /// Restores internal state from [`WStreamingAlgorithm::export_state`]
    /// output.
    fn import_state(&mut self, bytes: &[u8]);
}

/// Space and pass statistics from a W-streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Maximum state size observed after any edge, in bits.
    pub max_state_bits: u64,
    /// Passes performed.
    pub passes: usize,
    /// Stream length (edges per pass).
    pub stream_len: usize,
}

/// Runs `alg` over `stream` for all of its passes, collecting the
/// emitted coloring and auditing space after every edge.
///
/// # Panics
///
/// Panics if the algorithm emits two different colors for one edge.
pub fn run_w_streaming(
    alg: &mut dyn WStreamingAlgorithm,
    stream: &[Edge],
) -> (EdgeColoring, SpaceStats) {
    let mut coloring = EdgeColoring::new();
    let mut stats = SpaceStats {
        max_state_bits: alg.state_bits(),
        passes: alg.passes(),
        stream_len: stream.len(),
    };
    let absorb = |outputs: Vec<(Edge, ColorId)>, coloring: &mut EdgeColoring| {
        for (e, c) in outputs {
            if let Some(prev) = coloring.set(e, c) {
                assert_eq!(prev, c, "edge {e} recolored from {prev} to {c}");
            }
        }
    };
    for pass in 0..alg.passes() {
        alg.begin_pass(pass);
        stats.max_state_bits = stats.max_state_bits.max(alg.state_bits());
        for &e in stream {
            let out = alg.process_edge(e);
            absorb(out, &mut coloring);
            stats.max_state_bits = stats.max_state_bits.max(alg.state_bits());
        }
        let out = alg.end_pass();
        absorb(out, &mut coloring);
        stats.max_state_bits = stats.max_state_bits.max(alg.state_bits());
    }
    (coloring, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::VertexId;

    /// Trivial test algorithm: colors every edge 0 and stores nothing.
    struct AllZero;
    impl WStreamingAlgorithm for AllZero {
        fn begin_pass(&mut self, _pass: usize) {}
        fn process_edge(&mut self, e: Edge) -> Vec<(Edge, ColorId)> {
            vec![(e, ColorId(0))]
        }
        fn end_pass(&mut self) -> Vec<(Edge, ColorId)> {
            Vec::new()
        }
        fn state_bits(&self) -> u64 {
            0
        }
        fn export_state(&self) -> Vec<u8> {
            Vec::new()
        }
        fn import_state(&mut self, _bytes: &[u8]) {}
    }

    #[test]
    fn harness_collects_outputs_and_space() {
        let stream = vec![
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(2), VertexId(3)),
        ];
        let (coloring, stats) = run_w_streaming(&mut AllZero, &stream);
        assert_eq!(coloring.len(), 2);
        assert_eq!(stats.max_state_bits, 0);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.stream_len, 2);
    }

    #[test]
    #[should_panic(expected = "recolored")]
    fn harness_rejects_recoloring() {
        struct Flaky(u32);
        impl WStreamingAlgorithm for Flaky {
            fn begin_pass(&mut self, _pass: usize) {}
            fn process_edge(&mut self, e: Edge) -> Vec<(Edge, ColorId)> {
                self.0 += 1;
                vec![(e, ColorId(self.0))]
            }
            fn end_pass(&mut self) -> Vec<(Edge, ColorId)> {
                Vec::new()
            }
            fn state_bits(&self) -> u64 {
                32
            }
            fn export_state(&self) -> Vec<u8> {
                self.0.to_le_bytes().to_vec()
            }
            fn import_state(&mut self, bytes: &[u8]) {
                self.0 = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
            }
        }
        let e = Edge::new(VertexId(0), VertexId(1));
        let (_c, _s) = run_w_streaming(&mut Flaky(0), &[e, e]);
    }
}
