//! Lightweight span tracing: wall-time intervals recorded from
//! thread-local span stacks into one bounded process-wide ring
//! buffer, exportable as Chrome `trace_event` JSON.
//!
//! Tracing is **off by default** and gated by one atomic: a disabled
//! [`span`] call is a single relaxed load and the returned guard does
//! nothing on drop, so instrumentation can stay in place on the trial
//! hot path permanently.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring-buffer capacity: completed spans beyond this evict the oldest
/// (a trace stays bounded however long the process runs).
const RING_CAPACITY: usize = 65_536;

static TRACING: AtomicBool = AtomicBool::new(false);

/// The process epoch all span timestamps are relative to (first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ring() -> &'static Mutex<VecDeque<SpanEvent>> {
    static RING: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

// Small dense thread ids for trace rows: `std::thread::ThreadId` has
// no stable numeric form, so threads take a counter ticket on first
// span. Each thread also keeps its span-stack depth so nesting
// survives into the exported events.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Turns span recording on or off (process-wide). Off is the default;
/// metrics counters and histograms are unaffected either way.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// The span name (a static label like `"trial/execute"`).
    pub name: &'static str,
    /// Dense per-thread id (assigned on the thread's first span).
    pub tid: u64,
    /// Start time in microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Wall-time duration in microseconds.
    pub dur_us: u64,
    /// Span-stack depth on its thread when it started (0 = top level).
    pub depth: u32,
    /// Optional numeric tag, e.g. `("threads", 4)`.
    pub tag: Option<(&'static str, u64)>,
}

/// RAII guard from [`span`]: records the completed span into the ring
/// buffer when dropped. Inert (and cost-free) when tracing is off.
#[must_use = "the span ends when the returned guard is dropped"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    tag: Option<(&'static str, u64)>,
    tid: u64,
    depth: u32,
    ts_us: u64,
    started: Instant,
}

/// Opens a named span covering the guard's lifetime. When tracing is
/// disabled this is one atomic load and the guard is empty.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// [`span`] with one numeric tag attached (rendered into the Chrome
/// trace's `args`), e.g. the intra-trial thread budget.
pub fn span_tagged(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    span_impl(name, Some((key, value)))
}

fn span_impl(name: &'static str, tag: Option<(&'static str, u64)>) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { active: None };
    }
    let tid = TID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            tag,
            tid,
            depth,
            ts_us: epoch().elapsed().as_micros() as u64,
            started: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let event = SpanEvent {
            name: active.name,
            tid: active.tid,
            ts_us: active.ts_us,
            dur_us: active.started.elapsed().as_micros() as u64,
            depth: active.depth,
            tag: active.tag,
        };
        let mut ring = ring().lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

/// A snapshot of every span currently in the ring buffer, oldest
/// first (the buffer is not drained).
pub fn span_events() -> Vec<SpanEvent> {
    ring()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Empties the span ring buffer.
pub fn clear_spans() {
    ring().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Exports the ring buffer as Chrome `trace_event` JSON — an object
/// with a `traceEvents` array of complete (`"ph":"X"`) events, one
/// per recorded span, timestamps in microseconds since the process
/// trace epoch. Load the file at `chrome://tracing` or
/// <https://ui.perfetto.dev>. The buffer is left intact.
pub fn export_chrome_trace() -> String {
    use std::fmt::Write as _;
    let events = span_events();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"bichrome\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}",
            escape(e.name),
            e.tid,
            e.ts_us,
            e.dur_us,
            e.depth
        )
        .expect("string write");
        if let Some((k, v)) = e.tag {
            write!(out, ",\"{}\":{v}", escape(k)).expect("string write");
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Escapes a JSON string value (span names are static identifiers;
/// the escape covers the general case anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        set_tracing(false);
        let before = span_events().len();
        {
            let _s = span("test_trace/disabled");
        }
        assert_eq!(span_events().len(), before);
        assert!(!span_events()
            .iter()
            .any(|e| e.name == "test_trace/disabled"));
    }

    #[test]
    fn enabled_spans_record_name_tag_and_nesting() {
        set_tracing(true);
        {
            let _outer = span_tagged("test_trace/outer", "threads", 4);
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("test_trace/inner");
            }
        }
        set_tracing(false);
        let events = span_events();
        let outer = events
            .iter()
            .find(|e| e.name == "test_trace/outer")
            .expect("outer span recorded");
        let inner = events
            .iter()
            .find(|e| e.name == "test_trace/inner")
            .expect("inner span recorded");
        assert_eq!(outer.tag, Some(("threads", 4)));
        assert!(outer.dur_us >= 1_000, "covers the 1ms sleep");
        assert_eq!(inner.depth, outer.depth + 1, "nesting is recorded");
        assert_eq!(inner.tid, outer.tid, "same thread, same trace row");
        // Inner completes first: ring order is completion order.
        let outer_at = events.iter().position(|e| e.name == "test_trace/outer");
        let inner_at = events.iter().position(|e| e.name == "test_trace/inner");
        assert!(inner_at < outer_at);
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        set_tracing(true);
        {
            let _s = span_tagged("test_trace/export", "threads", 2);
        }
        set_tracing(false);
        let json = export_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"test_trace/export\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"threads\":2"));
        // Export does not drain: a second export still sees the span.
        assert!(export_chrome_trace().contains("test_trace/export"));
    }
}
