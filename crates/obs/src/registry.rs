//! The process-wide metrics registry: monotonic counters, gauges, and
//! fixed log₂-bucket histograms, sharded to keep registration cheap
//! and rendered as Prometheus text exposition or single-line JSON.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are thin `Arc`s
//! around shared atomics: look one up once (a shard lock), cache it,
//! and every subsequent update is lock-free with no allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Shard count of the registry map (a small power of two).
const SHARDS: usize = 8;

/// Histogram bucket count: bucket `i ≥ 1` holds values of bit length
/// `i` (the range `[2^(i−1), 2^i − 1]`); bucket 0 holds exactly 0.
const BUCKETS: usize = 65;

/// Canonical identity of one metric: name plus sorted label pairs.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// The Prometheus-style rendering: `name` or `name{k="v",...}`.
    fn render(&self) -> String {
        render_labeled(&self.name, &self.labels, None)
    }
}

/// Renders `name{labels...}`, optionally with an extra trailing label
/// (the histogram `le` bound).
fn render_labeled(name: &str, labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes a label value / JSON string (the shared subset: backslash,
/// quote, newline — metric names and labels are ASCII identifiers in
/// practice).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One registered metric of whichever kind.
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The sharded name → metric map behind the free functions.
struct Registry {
    shards: Vec<Mutex<HashMap<MetricId, Metric>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
    })
}

impl Registry {
    fn get_or_insert(&self, id: MetricId, make: impl FnOnce() -> Metric) -> Metric {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        let shard = &self.shards[hasher.finish() as usize % SHARDS];
        let mut map = shard.lock().unwrap_or_else(|p| p.into_inner());
        map.entry(id).or_insert_with(make).clone()
    }

    /// Every registered metric, sorted by rendered identity.
    fn snapshot(&self) -> Vec<(MetricId, Metric)> {
        let mut all: Vec<(MetricId, Metric)> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|p| p.into_inner());
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort_by(|(a, _), (b, _)| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        all
    }
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; updates are lock-free.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways. Cloning shares the
/// underlying atomic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Interior of a histogram: one atomic per log₂ bucket plus count and
/// sum.
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// The bucket a value lands in: its bit length (0 for 0).
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed log₂-bucket histogram of `u64` samples (typically
/// nanoseconds). [`Histogram::observe`] is three relaxed atomic adds —
/// no locks, no allocation — so it is safe on the trial hot path.
/// Percentiles read out as nearest-rank bucket upper bounds, accurate
/// to within a factor of two (ample for latency trajectories).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The nearest-rank `p`-th percentile (0–100) as the matching
    /// bucket's upper bound; 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.0.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(i) as f64;
            }
        }
        bucket_bound(BUCKETS - 1) as f64
    }

    /// Starts a timer that records its elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            histogram: self.clone(),
            started: Instant::now(),
        }
    }

    /// Per-bucket `(inclusive upper bound, count)` pairs for the
    /// non-empty buckets, in ascending bound order.
    fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let n = self.0.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bound(i), n))
            })
            .collect()
    }
}

/// RAII timer from [`Histogram::start_timer`]: observes the elapsed
/// wall time in nanoseconds on drop.
pub struct HistogramTimer {
    histogram: Histogram,
    started: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram
            .observe(self.started.elapsed().as_nanos() as u64);
    }
}

fn mismatch(id: &MetricId, want: &str, got: &Metric) -> ! {
    panic!(
        "metric {:?} is already registered as a {}, not a {want}",
        id.render(),
        got.kind()
    )
}

/// The counter named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    counter_labeled(name, &[])
}

/// The counter named `name` with the given label pairs.
///
/// # Panics
///
/// Panics if the identity is already registered as a different kind.
pub fn counter_labeled(name: &str, labels: &[(&str, &str)]) -> Counter {
    let id = MetricId::new(name, labels);
    match registry().get_or_insert(id.clone(), || {
        Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
    }) {
        Metric::Counter(c) => c,
        other => mismatch(&id, "counter", &other),
    }
}

/// The gauge named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    gauge_labeled(name, &[])
}

/// The gauge named `name` with the given label pairs.
///
/// # Panics
///
/// Panics if the identity is already registered as a different kind.
pub fn gauge_labeled(name: &str, labels: &[(&str, &str)]) -> Gauge {
    let id = MetricId::new(name, labels);
    match registry().get_or_insert(id.clone(), || {
        Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
    }) {
        Metric::Gauge(g) => g,
        other => mismatch(&id, "gauge", &other),
    }
}

/// The histogram named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    histogram_labeled(name, &[])
}

/// The histogram named `name` with the given label pairs.
///
/// # Panics
///
/// Panics if the identity is already registered as a different kind.
pub fn histogram_labeled(name: &str, labels: &[(&str, &str)]) -> Histogram {
    let id = MetricId::new(name, labels);
    match registry().get_or_insert(id.clone(), || {
        Metric::Histogram(Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h,
        other => mismatch(&id, "histogram", &other),
    }
}

/// Renders the whole registry in Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per family, counters and gauges
/// as single samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`. This is the body the daemon's
/// `GET /metrics` endpoint serves.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for (id, metric) in registry().snapshot() {
        if last_family.as_deref() != Some(id.name.as_str()) {
            out.push_str("# TYPE ");
            out.push_str(&id.name);
            out.push(' ');
            out.push_str(metric.kind());
            out.push('\n');
            last_family = Some(id.name.clone());
        }
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("{} {}\n", id.render(), c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{} {}\n", id.render(), g.get()));
            }
            Metric::Histogram(h) => {
                let mut cumulative = 0u64;
                for (bound, n) in h.nonempty_buckets() {
                    cumulative += n;
                    let le = bound.to_string();
                    let series = render_labeled(
                        &format!("{}_bucket", id.name),
                        &id.labels,
                        Some(("le", &le)),
                    );
                    out.push_str(&format!("{series} {cumulative}\n"));
                }
                let inf = render_labeled(
                    &format!("{}_bucket", id.name),
                    &id.labels,
                    Some(("le", "+Inf")),
                );
                out.push_str(&format!("{inf} {}\n", h.count()));
                out.push_str(&format!(
                    "{} {}\n",
                    render_labeled(&format!("{}_sum", id.name), &id.labels, None),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    render_labeled(&format!("{}_count", id.name), &id.labels, None),
                    h.count()
                ));
            }
        }
    }
    out
}

/// Renders the whole registry as one single-line JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}`, histograms
/// as `{count, sum, p50, p95, p99}`. This is the payload of the
/// daemon's `metrics` socket verb — the same registry `GET /metrics`
/// exposes, in machine-readable form.
pub fn render_json() -> String {
    use std::fmt::Write as _;
    let snapshot = registry().snapshot();
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut histograms = String::new();
    for (id, metric) in &snapshot {
        let key = escape(&id.render());
        match metric {
            Metric::Counter(c) => {
                if !counters.is_empty() {
                    counters.push(',');
                }
                write!(counters, "\"{key}\":{}", c.get()).expect("string write");
            }
            Metric::Gauge(g) => {
                if !gauges.is_empty() {
                    gauges.push(',');
                }
                write!(gauges, "\"{key}\":{}", g.get()).expect("string write");
            }
            Metric::Histogram(h) => {
                if !histograms.is_empty() {
                    histograms.push(',');
                }
                write!(
                    histograms,
                    "\"{key}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    h.count(),
                    h.sum(),
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0),
                )
                .expect("string write");
            }
        }
    }
    format!(
        "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = counter("test_registry_counter_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second lookup shares the same atomic.
        assert_eq!(counter("test_registry_counter_total").get(), 5);

        let g = gauge("test_registry_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(gauge("test_registry_gauge").get(), 4);
    }

    #[test]
    fn labeled_metrics_are_distinct_and_order_insensitive() {
        let a = counter_labeled("test_registry_labeled_total", &[("verb", "submit")]);
        let b = counter_labeled("test_registry_labeled_total", &[("verb", "status")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        // Label order does not change identity.
        let two = counter_labeled("test_registry_two_labels", &[("a", "1"), ("b", "2")]);
        let same = counter_labeled("test_registry_two_labels", &[("b", "2"), ("a", "1")]);
        two.inc();
        assert_eq!(same.get(), 1);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);

        let h = histogram("test_registry_hist_nanos");
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        // p50: rank 3 of 6 → the bucket holding 2 and 3 (bound 3).
        assert_eq!(h.percentile(50.0), 3.0);
        // p99: rank 6 → the bucket holding 1_000_000.
        assert!(h.percentile(99.0) >= 1_000_000.0);
        assert_eq!(histogram("test_registry_hist_empty").percentile(95.0), 0.0);
    }

    #[test]
    fn timer_records_elapsed_nanos() {
        let h = histogram("test_registry_timer_nanos");
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "at least the 1ms sleep");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        counter("test_registry_kind_clash");
        let _ = histogram("test_registry_kind_clash");
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        counter("test_prom_counter_total").add(3);
        gauge_labeled("test_prom_gauge", &[("site", "a")]).set(-2);
        let h = histogram("test_prom_hist_nanos");
        h.observe(5);
        h.observe(900);
        let text = render_prometheus();
        assert!(text.contains("# TYPE test_prom_counter_total counter"));
        assert!(text.contains("test_prom_counter_total 3"));
        assert!(text.contains("# TYPE test_prom_gauge gauge"));
        assert!(text.contains("test_prom_gauge{site=\"a\"} -2"));
        assert!(text.contains("# TYPE test_prom_hist_nanos histogram"));
        assert!(text.contains("test_prom_hist_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_prom_hist_nanos_sum 905"));
        assert!(text.contains("test_prom_hist_nanos_count 2"));
        // Cumulative bucket counts are non-decreasing.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("test_prom_hist_nanos_bucket{le=\"") {
                let n: u64 = rest
                    .rsplit(' ')
                    .next()
                    .expect("count field")
                    .parse()
                    .expect("count parses");
                assert!(n >= last, "cumulative histogram must not decrease");
                last = n;
            }
        }
    }

    #[test]
    fn json_rendering_is_single_line_and_covers_all_kinds() {
        counter("test_json_counter_total").inc();
        gauge("test_json_gauge").set(9);
        histogram("test_json_hist_nanos").observe(42);
        let json = render_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"test_json_counter_total\":1"));
        assert!(json.contains("\"test_json_gauge\":9"));
        assert!(json.contains("\"test_json_hist_nanos\":{\"count\":1"));
        assert!(json.contains("\"p95\":"));
    }

    #[test]
    fn eight_thread_hammer_keeps_exact_totals() {
        // The concurrency contract: N threads × M increments lose
        // nothing — counter totals, histogram counts, and histogram
        // sums are all exact.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let c = counter("test_hammer_total");
                    let h = histogram("test_hammer_nanos");
                    let g = gauge("test_hammer_gauge");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe(t * PER_THREAD + i);
                        g.add(1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("hammer thread");
        }
        assert_eq!(counter("test_hammer_total").get(), THREADS * PER_THREAD);
        let h = histogram("test_hammer_nanos");
        assert_eq!(h.count(), THREADS * PER_THREAD);
        // Sum of 0..80_000.
        let n = THREADS * PER_THREAD;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(
            gauge("test_hammer_gauge").get(),
            (THREADS * PER_THREAD) as i64
        );
    }
}
