//! Unified observability for the bichrome workspace: a process-wide
//! metrics registry plus lightweight span tracing, both deliberately
//! inert with respect to experiment results.
//!
//! # The two halves
//!
//! **Metrics** ([`counter`], [`gauge`], [`histogram`]) live in one
//! process-wide sharded registry. Handles are cheap clones of shared
//! atomics: registration takes a shard lock once, after which every
//! increment or observation is a lock-free atomic operation with no
//! allocation — safe on the trial hot path. Histograms use fixed
//! log₂ buckets (one per bit length), so [`Histogram::observe`] is a
//! couple of atomic adds and p50/p95/p99 read out as bucket upper
//! bounds. The whole registry renders as Prometheus text exposition
//! ([`render_prometheus`], served by the daemon's `GET /metrics`
//! endpoint) or as single-line JSON ([`render_json`], the daemon's
//! `metrics` socket verb).
//!
//! **Spans** ([`span`], [`span_tagged`]) record wall-time intervals
//! into a bounded ring buffer, exportable as Chrome `trace_event`
//! JSON ([`export_chrome_trace`] — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>). Tracing is off by default: a disabled
//! [`span`] call is one relaxed atomic load and the returned guard
//! holds nothing. Enable it with [`set_tracing`].
//!
//! # Zero perturbation
//!
//! Nothing in this crate feeds back into protocol execution: trial
//! records, reports, and the pinned CSV golden are bit-identical with
//! tracing enabled, disabled, or the crate absent (asserted by the
//! workspace's `obs_is_inert` integration tests).
//!
//! # Quickstart
//!
//! ```
//! // Metrics: handles are cacheable, increments are atomics only.
//! let trials = bichrome_obs::counter("quickstart_trials_total");
//! trials.inc();
//! let latency = bichrome_obs::histogram("quickstart_latency_nanos");
//! latency.observe(1_500);
//! assert_eq!(trials.get(), 1);
//! assert!(latency.percentile(50.0) >= 1_500.0);
//!
//! // Spans: off by default, one atomic load when disabled.
//! bichrome_obs::set_tracing(true);
//! {
//!     let _span = bichrome_obs::span("quickstart/work");
//! } // recorded on drop
//! bichrome_obs::set_tracing(false);
//!
//! let text = bichrome_obs::render_prometheus();
//! assert!(text.contains("quickstart_trials_total 1"));
//! let trace = bichrome_obs::export_chrome_trace();
//! assert!(trace.contains("quickstart/work"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod trace;

pub use registry::{
    counter, counter_labeled, gauge, gauge_labeled, histogram, histogram_labeled, render_json,
    render_prometheus, Counter, Gauge, Histogram, HistogramTimer,
};
pub use trace::{
    clear_spans, export_chrome_trace, set_tracing, span, span_events, span_tagged, tracing_enabled,
    SpanEvent, SpanGuard,
};
