//! Ambient intra-trial thread budget.
//!
//! The campaign executor decides how many OS threads one trial may
//! use from queue occupancy (4 giant cells on 16 cores → 4 threads
//! each; 1000 small cells → 1 each) and publishes that decision here,
//! as a thread-local the session layer reads when it builds the
//! per-party [`PartyCtx`](crate::session::PartyCtx). Protocols never
//! touch this module directly: they read `ctx.threads` and hand it to
//! the deterministic chunked helpers in the `rayon` shim.
//!
//! The budget is *advisory capacity*, never semantics: every consumer
//! must produce bit-identical output at any budget, so a budget of 1
//! (the default everywhere) is always correct.

use std::cell::Cell;

thread_local! {
    static INTRA_BUDGET: Cell<usize> = const { Cell::new(1) };
}

/// The intra-trial thread budget currently in force on this thread
/// (1 unless inside [`with_intra_budget`]).
pub fn intra_budget() -> usize {
    INTRA_BUDGET.with(Cell::get)
}

/// Runs `f` with the ambient intra-trial budget set to
/// `threads.max(1)`, restoring the previous value afterwards (also on
/// panic). Sessions started inside `f` on this thread split the
/// budget between their two parties.
pub fn with_intra_budget<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INTRA_BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(INTRA_BUDGET.with(|b| b.replace(threads.max(1))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one() {
        assert_eq!(intra_budget(), 1);
    }

    #[test]
    fn scoped_and_restored() {
        assert_eq!(with_intra_budget(6, intra_budget), 6);
        assert_eq!(intra_budget(), 1);
        with_intra_budget(4, || {
            assert_eq!(with_intra_budget(2, intra_budget), 2);
            assert_eq!(intra_budget(), 4);
        });
    }

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(with_intra_budget(0, intra_budget), 1);
    }

    #[test]
    fn restored_on_panic() {
        let r = std::panic::catch_unwind(|| with_intra_budget(8, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(intra_budget(), 1);
    }

    #[test]
    fn does_not_leak_to_other_threads() {
        with_intra_budget(8, || {
            let seen = std::thread::scope(|s| s.spawn(intra_budget).join().unwrap());
            assert_eq!(seen, 1);
        });
    }
}
