//! Shared accounting of communication cost.

use crate::Side;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Immutable snapshot of a session's communication cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Bits sent by Alice to Bob.
    pub bits_alice_to_bob: u64,
    /// Bits sent by Bob to Alice.
    pub bits_bob_to_alice: u64,
    /// Number of communication rounds (one round = both parties send
    /// one message simultaneously).
    pub rounds: u64,
    /// Total bits per protocol phase, in phase-name order.
    pub bits_by_phase: BTreeMap<String, u64>,
    /// Rounds per protocol phase.
    pub rounds_by_phase: BTreeMap<String, u64>,
}

impl CommStats {
    /// Total bits exchanged in both directions.
    pub fn total_bits(&self) -> u64 {
        self.bits_alice_to_bob + self.bits_bob_to_alice
    }
}

impl std::fmt::Display for CommStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bits ({} A→B, {} B→A) in {} rounds",
            self.total_bits(),
            self.bits_alice_to_bob,
            self.bits_bob_to_alice,
            self.rounds
        )
    }
}

/// One entry of the phase stack.
#[derive(Debug)]
struct PhaseEntry {
    label: String,
    /// Open [`PhaseScope`] guards sharing this entry.
    refs: usize,
    /// Installed by [`Meter::set_phase`]: never popped by guards.
    pinned: bool,
}

#[derive(Debug, Default)]
struct MeterInner {
    stats: CommStats,
    /// Stack of active phase labels. The top entry is the current
    /// phase; identical labels installed concurrently (both parties
    /// run the same script) share one reference-counted entry.
    /// [`Meter::set_phase`] replaces the whole stack with a pinned
    /// entry; [`Meter::phase_scope`] pushes/pops unpinned ones.
    phases: Vec<PhaseEntry>,
}

impl MeterInner {
    fn current_phase(&self) -> Option<&str> {
        self.phases.last().map(|e| e.label.as_str())
    }
}

/// Thread-shared communication meter.
///
/// Cloning shares the underlying counters. The channel layer calls
/// [`Meter::on_message`] and [`Meter::on_round`]; protocol code may
/// group costs with [`Meter::set_phase`].
#[derive(Debug, Clone, Default)]
pub struct Meter {
    inner: Arc<Mutex<MeterInner>>,
}

impl Meter {
    /// A fresh meter with all counters zero and an unnamed phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the interior, shrugging off poisoning: the counters are
    /// plain integers and stay consistent even if a party thread
    /// panicked mid-protocol.
    fn lock(&self) -> MutexGuard<'_, MeterInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Records `bits` sent by `from`.
    pub fn on_message(&self, from: Side, bits: u64) {
        let mut inner = self.lock();
        match from {
            Side::Alice => inner.stats.bits_alice_to_bob += bits,
            Side::Bob => inner.stats.bits_bob_to_alice += bits,
        }
        if let Some(phase) = inner.current_phase() {
            let phase = phase.to_owned();
            *inner.stats.bits_by_phase.entry(phase).or_insert(0) += bits;
        }
    }

    /// Records one completed round.
    pub fn on_round(&self) {
        let mut inner = self.lock();
        inner.stats.rounds += 1;
        if let Some(phase) = inner.current_phase() {
            let phase = phase.to_owned();
            *inner.stats.rounds_by_phase.entry(phase).or_insert(0) += 1;
        }
    }

    /// Names the current phase; subsequent costs accrue to it until
    /// the next `set_phase` (the label never pops on its own — prefer
    /// [`Meter::phase_scope`]).
    ///
    /// Either party may call this (they run the same protocol script,
    /// so the phase labels agree); setting the same phase twice is
    /// harmless. Any phase scopes still open when `set_phase` runs are
    /// discarded: their guards become no-ops.
    pub fn set_phase(&self, phase: &str) {
        let mut inner = self.lock();
        inner.phases.clear();
        if !phase.is_empty() {
            inner.phases.push(PhaseEntry {
                label: phase.to_owned(),
                refs: 1,
                pinned: true,
            });
        }
    }

    /// Names the current phase for the lifetime of the returned guard;
    /// when the guard drops, the label is removed and the enclosing
    /// phase (if any) becomes current again.
    ///
    /// Prefer this over [`Meter::set_phase`] in protocol code: a
    /// scoped phase cannot leak past the code it labels, so a
    /// subprotocol's costs never silently accrue to its caller's
    /// phase (or vice versa) after an early return.
    ///
    /// Phases form a reference-counted stack. Both parties share one
    /// meter and run the same script, so both typically install the
    /// same label concurrently: the second install joins the first's
    /// stack entry instead of shadowing it, and the entry pops only
    /// when *both* guards have dropped. Once every guard is gone the
    /// stack is empty again regardless of how the two threads'
    /// installs and drops interleaved — an ended phase can never be
    /// left installed.
    ///
    /// # Example
    ///
    /// ```
    /// use bichrome_comm::meter::Meter;
    /// use bichrome_comm::Side;
    ///
    /// let meter = Meter::new();
    /// {
    ///     let _phase = meter.phase_scope("rct");
    ///     meter.on_message(Side::Alice, 5);
    /// } // "rct" ends here, even on early return or panic
    /// meter.on_message(Side::Alice, 2);
    /// let stats = meter.snapshot();
    /// assert_eq!(stats.bits_by_phase["rct"], 5);
    /// assert_eq!(stats.total_bits(), 7);
    /// ```
    #[must_use = "the phase ends when the returned guard is dropped"]
    pub fn phase_scope(&self, phase: &str) -> PhaseScope {
        let mut inner = self.lock();
        match inner.phases.last_mut() {
            Some(e) if e.label == phase && !e.pinned => e.refs += 1,
            _ => inner.phases.push(PhaseEntry {
                label: phase.to_owned(),
                refs: 1,
                pinned: false,
            }),
        }
        drop(inner);
        PhaseScope {
            meter: self.clone(),
            installed: phase.to_owned(),
            started: Instant::now(),
        }
    }

    /// A snapshot of the counters so far.
    pub fn snapshot(&self) -> CommStats {
        self.lock().stats.clone()
    }
}

/// RAII guard returned by [`Meter::phase_scope`]; removes one
/// reference to its label from the phase stack when dropped (see
/// [`Meter::phase_scope`] for the shared-meter semantics), and
/// observes the phase's wall time into the process-wide
/// `bichrome_comm_phase_nanos{phase=...}` histogram — phases have
/// always tracked bits and rounds, this adds the time dimension.
#[derive(Debug)]
pub struct PhaseScope {
    meter: Meter,
    installed: String,
    started: Instant,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        bichrome_obs::histogram_labeled("bichrome_comm_phase_nanos", &[("phase", &self.installed)])
            .observe(self.started.elapsed().as_nanos() as u64);
        let mut inner = self.meter.lock();
        // Release the topmost unpinned entry carrying our label. It
        // may not be the very top if the peer thread's installs
        // interleaved with ours; it may be absent entirely if
        // set_phase cleared the stack — then there is nothing to
        // release (and a pinned set_phase label, even an identical
        // one, is never ours to pop).
        if let Some(idx) = inner
            .phases
            .iter()
            .rposition(|e| e.label == self.installed && !e.pinned)
        {
            inner.phases[idx].refs -= 1;
            if inner.phases[idx].refs == 0 {
                inner.phases.remove(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_directions_separately() {
        let m = Meter::new();
        m.on_message(Side::Alice, 10);
        m.on_message(Side::Bob, 3);
        m.on_message(Side::Alice, 1);
        let s = m.snapshot();
        assert_eq!(s.bits_alice_to_bob, 11);
        assert_eq!(s.bits_bob_to_alice, 3);
        assert_eq!(s.total_bits(), 14);
    }

    #[test]
    fn counts_rounds() {
        let m = Meter::new();
        m.on_round();
        m.on_round();
        assert_eq!(m.snapshot().rounds, 2);
    }

    #[test]
    fn phases_accumulate() {
        let m = Meter::new();
        m.set_phase("rct");
        m.on_message(Side::Alice, 5);
        m.on_round();
        m.set_phase("d1lc");
        m.on_message(Side::Bob, 7);
        m.on_round();
        m.on_round();
        let s = m.snapshot();
        assert_eq!(s.bits_by_phase["rct"], 5);
        assert_eq!(s.bits_by_phase["d1lc"], 7);
        assert_eq!(s.rounds_by_phase["rct"], 1);
        assert_eq!(s.rounds_by_phase["d1lc"], 2);
    }

    #[test]
    fn phase_scope_restores_previous_phase() {
        let m = Meter::new();
        m.set_phase("outer");
        {
            let _guard = m.phase_scope("inner");
            m.on_message(Side::Alice, 3);
        }
        m.on_message(Side::Alice, 4);
        let s = m.snapshot();
        assert_eq!(s.bits_by_phase["inner"], 3);
        assert_eq!(s.bits_by_phase["outer"], 4);
    }

    #[test]
    fn phase_scopes_nest() {
        let m = Meter::new();
        let _a = m.phase_scope("a");
        m.on_round();
        {
            let _b = m.phase_scope("b");
            m.on_round();
            m.on_round();
        }
        m.on_round();
        let s = m.snapshot();
        assert_eq!(s.rounds_by_phase["a"], 2);
        assert_eq!(s.rounds_by_phase["b"], 2);
    }

    #[test]
    fn concurrent_identical_scopes_never_leak_the_label() {
        // Both parties install the same label on the shared meter, in
        // every drop order: the label must be gone once both guards
        // are dropped.
        for first_dropper in 0..2 {
            let m = Meter::new();
            let g0 = m.phase_scope("shared");
            let g1 = m.phase_scope("shared");
            m.on_message(Side::Alice, 1);
            if first_dropper == 0 {
                drop(g0);
                drop(g1);
            } else {
                drop(g1);
                drop(g0);
            }
            m.on_message(Side::Bob, 2);
            let s = m.snapshot();
            assert_eq!(
                s.bits_by_phase["shared"], 1,
                "post-scope bits leaked into the ended phase (order {first_dropper})"
            );
        }
    }

    #[test]
    fn interleaved_nested_scopes_from_two_parties_fully_unwind() {
        // The adversarial interleaving: A opens rct then d1lc, B's
        // identical opens land after A's, and the drops come in the
        // order A:d1lc, B:d1lc, B:rct, A:rct. Whatever the transient
        // attribution, the stack must be empty at the end.
        let m = Meter::new();
        let a_rct = m.phase_scope("rct");
        let a_d1lc = m.phase_scope("d1lc");
        let b_rct = m.phase_scope("rct");
        let b_d1lc = m.phase_scope("d1lc");
        drop(a_d1lc);
        drop(b_d1lc);
        drop(b_rct);
        drop(a_rct);
        m.on_message(Side::Alice, 7);
        let s = m.snapshot();
        assert!(
            !s.bits_by_phase.contains_key("rct") && !s.bits_by_phase.contains_key("d1lc"),
            "ended phases must not collect post-scope bits: {:?}",
            s.bits_by_phase
        );
    }

    #[test]
    fn set_phase_discards_open_scopes() {
        let m = Meter::new();
        let guard = m.phase_scope("scoped");
        m.set_phase("flat");
        drop(guard); // must not disturb the set_phase label
        m.on_round();
        let s = m.snapshot();
        assert_eq!(s.rounds_by_phase["flat"], 1);
        assert!(!s.rounds_by_phase.contains_key("scoped"));
    }

    #[test]
    fn stale_guard_cannot_pop_a_same_label_set_phase() {
        let m = Meter::new();
        let guard = m.phase_scope("rct");
        m.set_phase("rct"); // pinned; the stale guard must not pop it
        drop(guard);
        m.on_message(Side::Alice, 3);
        let s = m.snapshot();
        assert_eq!(
            s.bits_by_phase["rct"], 3,
            "set_phase label must survive the stale guard"
        );
    }

    #[test]
    fn phase_scope_restores_on_panic() {
        let m = Meter::new();
        let m2 = m.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = m2.phase_scope("doomed");
            panic!("protocol bug");
        });
        assert!(result.is_err());
        m.on_message(Side::Bob, 9);
        let s = m.snapshot();
        assert!(!s.bits_by_phase.contains_key("doomed"));
    }

    #[test]
    fn phase_scope_wall_time_lands_in_the_obs_histogram() {
        let h = bichrome_obs::histogram_labeled(
            "bichrome_comm_phase_nanos",
            &[("phase", "meter-test-phase")],
        );
        let before = h.count();
        let m = Meter::new();
        {
            let _guard = m.phase_scope("meter-test-phase");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), before + 1, "one observation per scope");
        assert!(h.sum() >= 1_000_000, "covers the 1ms the phase was open");
    }

    #[test]
    fn clones_share_state() {
        let m = Meter::new();
        let m2 = m.clone();
        m2.on_message(Side::Alice, 4);
        assert_eq!(m.snapshot().bits_alice_to_bob, 4);
    }

    #[test]
    fn display_is_informative() {
        let m = Meter::new();
        m.on_message(Side::Alice, 2);
        m.on_round();
        let text = m.snapshot().to_string();
        assert!(text.contains("2 bits"));
        assert!(text.contains("1 rounds"));
    }
}
