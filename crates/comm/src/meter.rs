//! Shared accounting of communication cost.

use crate::Side;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Immutable snapshot of a session's communication cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Bits sent by Alice to Bob.
    pub bits_alice_to_bob: u64,
    /// Bits sent by Bob to Alice.
    pub bits_bob_to_alice: u64,
    /// Number of communication rounds (one round = both parties send
    /// one message simultaneously).
    pub rounds: u64,
    /// Total bits per protocol phase, in phase-name order.
    pub bits_by_phase: BTreeMap<String, u64>,
    /// Rounds per protocol phase.
    pub rounds_by_phase: BTreeMap<String, u64>,
}

impl CommStats {
    /// Total bits exchanged in both directions.
    pub fn total_bits(&self) -> u64 {
        self.bits_alice_to_bob + self.bits_bob_to_alice
    }
}

impl std::fmt::Display for CommStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bits ({} A→B, {} B→A) in {} rounds",
            self.total_bits(),
            self.bits_alice_to_bob,
            self.bits_bob_to_alice,
            self.rounds
        )
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    stats: CommStats,
    phase: String,
}

/// Thread-shared communication meter.
///
/// Cloning shares the underlying counters. The channel layer calls
/// [`Meter::on_message`] and [`Meter::on_round`]; protocol code may
/// group costs with [`Meter::set_phase`].
#[derive(Debug, Clone, Default)]
pub struct Meter {
    inner: Arc<Mutex<MeterInner>>,
}

impl Meter {
    /// A fresh meter with all counters zero and an unnamed phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bits` sent by `from`.
    pub fn on_message(&self, from: Side, bits: u64) {
        let mut inner = self.inner.lock();
        match from {
            Side::Alice => inner.stats.bits_alice_to_bob += bits,
            Side::Bob => inner.stats.bits_bob_to_alice += bits,
        }
        if !inner.phase.is_empty() {
            let phase = inner.phase.clone();
            *inner.stats.bits_by_phase.entry(phase).or_insert(0) += bits;
        }
    }

    /// Records one completed round.
    pub fn on_round(&self) {
        let mut inner = self.inner.lock();
        inner.stats.rounds += 1;
        if !inner.phase.is_empty() {
            let phase = inner.phase.clone();
            *inner.stats.rounds_by_phase.entry(phase).or_insert(0) += 1;
        }
    }

    /// Names the current phase; subsequent costs accrue to it.
    ///
    /// Either party may call this (they run the same protocol script,
    /// so the phase labels agree); setting the same phase twice is
    /// harmless.
    pub fn set_phase(&self, phase: &str) {
        self.inner.lock().phase = phase.to_owned();
    }

    /// A snapshot of the counters so far.
    pub fn snapshot(&self) -> CommStats {
        self.inner.lock().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_directions_separately() {
        let m = Meter::new();
        m.on_message(Side::Alice, 10);
        m.on_message(Side::Bob, 3);
        m.on_message(Side::Alice, 1);
        let s = m.snapshot();
        assert_eq!(s.bits_alice_to_bob, 11);
        assert_eq!(s.bits_bob_to_alice, 3);
        assert_eq!(s.total_bits(), 14);
    }

    #[test]
    fn counts_rounds() {
        let m = Meter::new();
        m.on_round();
        m.on_round();
        assert_eq!(m.snapshot().rounds, 2);
    }

    #[test]
    fn phases_accumulate() {
        let m = Meter::new();
        m.set_phase("rct");
        m.on_message(Side::Alice, 5);
        m.on_round();
        m.set_phase("d1lc");
        m.on_message(Side::Bob, 7);
        m.on_round();
        m.on_round();
        let s = m.snapshot();
        assert_eq!(s.bits_by_phase["rct"], 5);
        assert_eq!(s.bits_by_phase["d1lc"], 7);
        assert_eq!(s.rounds_by_phase["rct"], 1);
        assert_eq!(s.rounds_by_phase["d1lc"], 2);
    }

    #[test]
    fn clones_share_state() {
        let m = Meter::new();
        let m2 = m.clone();
        m2.on_message(Side::Alice, 4);
        assert_eq!(m.snapshot().bits_alice_to_bob, 4);
    }

    #[test]
    fn display_is_informative() {
        let m = Meter::new();
        m.on_message(Side::Alice, 2);
        m.on_round();
        let text = m.snapshot().to_string();
        assert!(text.contains("2 bits"));
        assert!(text.contains("1 rounds"));
    }
}
