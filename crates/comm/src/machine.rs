//! Sans-io round machines and the lock-step driver.
//!
//! Algorithm 1 of the paper runs one `Color-Sample` subprotocol *per
//! active vertex, in parallel* within each iteration: the per-vertex
//! messages ride together in each round's message, so the iteration's
//! round count is the *maximum* over vertices while bits add up.
//!
//! A [`RoundMachine`] is one such subprotocol, written sans-io: each
//! round it appends its outgoing bits ([`RoundMachine::write_round`])
//! and then absorbs the peer's bits ([`RoundMachine::read_round`]).
//! [`drive_lockstep`] batches any number of machines over one
//! [`Endpoint`].
//!
//! # Synchronization contract
//!
//! Both parties drive machine lists of the same length, and machine
//! `i` on one side is the peer of machine `i` on the other. Parsing
//! works without framing because machine state is *publicly
//! synchronized*: a machine's message widths and its done-ness after
//! any round are functions of public information (public randomness
//! and previously exchanged bits), so both sides agree on which
//! machines are active and how many bits each contributes. Violating
//! this contract corrupts the parse — it is a protocol bug by
//! construction, and the bit cursors will panic loudly.

use crate::channel::Endpoint;
use crate::wire::{BitReader, BitWriter};

/// One lock-step subprotocol.
pub trait RoundMachine {
    /// Whether the machine has produced its result and stopped
    /// participating in rounds. Must agree between the two parties at
    /// every round boundary (see the module docs).
    fn is_done(&self) -> bool;

    /// Appends this round's outgoing bits.
    fn write_round(&mut self, w: &mut BitWriter);

    /// Absorbs this round's incoming bits (the peer's
    /// `write_round` output for the same round).
    fn read_round(&mut self, r: &mut BitReader<'_>);
}

/// Drives `machines` to completion over `ep`, batching all active
/// machines' bits into one message per round.
///
/// Returns the number of rounds used (the maximum over machines, since
/// they run in parallel). Zero machines — or all machines already done
/// — costs zero rounds.
pub fn drive_lockstep(ep: &Endpoint, machines: &mut [&mut dyn RoundMachine]) -> u64 {
    let mut rounds = 0;
    loop {
        let active: Vec<usize> = (0..machines.len())
            .filter(|&i| !machines[i].is_done())
            .collect();
        if active.is_empty() {
            return rounds;
        }
        let mut w = BitWriter::new();
        for &i in &active {
            machines[i].write_round(&mut w);
        }
        let incoming = ep.exchange(w.finish());
        let mut r = incoming.reader();
        for &i in &active {
            machines[i].read_round(&mut r);
        }
        assert_eq!(
            r.remaining(),
            0,
            "peer sent more bits than machines consumed"
        );
        rounds += 1;
    }
}

/// Drives a single machine to completion; returns rounds used.
pub fn drive_single(ep: &Endpoint, machine: &mut dyn RoundMachine) -> u64 {
    drive_lockstep(ep, &mut [machine])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_two_party;
    use crate::wire::width_for;

    /// Toy machine: exchanges `len` u8 values one per round and sums
    /// what it receives.
    struct Summer {
        mine: Vec<u8>,
        pos: usize,
        total: u64,
    }

    impl Summer {
        fn new(mine: Vec<u8>) -> Self {
            Summer {
                mine,
                pos: 0,
                total: 0,
            }
        }
    }

    impl RoundMachine for Summer {
        fn is_done(&self) -> bool {
            self.pos >= self.mine.len()
        }
        fn write_round(&mut self, w: &mut BitWriter) {
            w.write_uint(self.mine[self.pos] as u64, 8);
        }
        fn read_round(&mut self, r: &mut BitReader<'_>) {
            self.total += r.read_uint(8);
            self.pos += 1;
        }
    }

    #[test]
    fn single_machine_runs_to_completion() {
        let (a, b, stats) = run_two_party(
            0,
            |ep| {
                let mut m = Summer::new(vec![1, 2, 3]);
                let rounds = drive_single(&ep, &mut m);
                (m.total, rounds)
            },
            |ep| {
                let mut m = Summer::new(vec![10, 20, 30]);
                let rounds = drive_single(&ep, &mut m);
                (m.total, rounds)
            },
        );
        assert_eq!(a, (60, 3));
        assert_eq!(b, (6, 3));
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.total_bits(), 2 * 3 * 8);
    }

    #[test]
    fn parallel_machines_share_rounds() {
        // Three machines of different lengths: rounds = max length,
        // not the sum.
        let lens = [2usize, 5, 3];
        let (ra, rb, stats) = run_two_party(
            0,
            move |ep| {
                let mut ms: Vec<Summer> = lens.iter().map(|&l| Summer::new(vec![1; l])).collect();
                let mut refs: Vec<&mut dyn RoundMachine> =
                    ms.iter_mut().map(|m| m as &mut dyn RoundMachine).collect();
                drive_lockstep(&ep, &mut refs)
            },
            move |ep| {
                let mut ms: Vec<Summer> = ms_from(&lens);
                let mut refs: Vec<&mut dyn RoundMachine> =
                    ms.iter_mut().map(|m| m as &mut dyn RoundMachine).collect();
                drive_lockstep(&ep, &mut refs)
            },
        );
        fn ms_from(lens: &[usize]) -> Vec<Summer> {
            lens.iter().map(|&l| Summer::new(vec![2; l])).collect()
        }
        assert_eq!(ra, 5);
        assert_eq!(rb, 5);
        assert_eq!(stats.rounds, 5);
        // Bits: machine i contributes 8 bits per live round per side.
        assert_eq!(stats.total_bits(), 2 * 8 * (2 + 5 + 3) as u64);
    }

    #[test]
    fn zero_machines_zero_rounds() {
        let (ra, rb, stats) = run_two_party(
            0,
            |ep| drive_lockstep(&ep, &mut []),
            |ep| drive_lockstep(&ep, &mut []),
        );
        assert_eq!((ra, rb), (0, 0));
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn width_helper_reexported_usage() {
        // Machines often size fields with width_for; smoke-test the path.
        assert_eq!(width_for(5), 3);
    }
}

#[cfg(test)]
mod failure_injection {
    use super::*;
    use crate::session::run_two_party;
    use crate::wire::Message;

    /// Machine that lies about the number of bits it writes, breaking
    /// the synchronization contract.
    struct Overwriter {
        rounds_left: usize,
        extra: bool,
    }

    impl RoundMachine for Overwriter {
        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }
        fn write_round(&mut self, w: &mut BitWriter) {
            w.write_uint(1, 4);
            if self.extra {
                w.write_uint(7, 3); // bits the peer will not consume
            }
        }
        fn read_round(&mut self, r: &mut BitReader<'_>) {
            let _ = r.read_uint(4);
            self.rounds_left -= 1;
        }
    }

    #[test]
    #[should_panic]
    fn asymmetric_writes_are_detected() {
        // Alice's machine writes 7 bits, Bob's expects 4: the driver's
        // residue check (or the reader overrun) must panic rather than
        // silently misparse. The panic propagates through the session.
        let _ = run_two_party(
            0,
            |ep| {
                let mut m = Overwriter {
                    rounds_left: 1,
                    extra: true,
                };
                drive_single(&ep, &mut m)
            },
            |ep| {
                let mut m = Overwriter {
                    rounds_left: 1,
                    extra: false,
                };
                drive_single(&ep, &mut m)
            },
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_machine_counts_are_detected() {
        // Alice drives one machine, Bob drives none: Bob's side sees
        // unconsumed bits and panics (and Alice would deadlock if Bob
        // exited silently — the assertion fires first).
        let _ = run_two_party(
            0,
            |ep| {
                let mut m = Overwriter {
                    rounds_left: 1,
                    extra: false,
                };
                drive_single(&ep, &mut m)
            },
            |ep| {
                // Bob participates in the round but consumes nothing.
                let incoming = ep.exchange(Message::empty());
                assert_eq!(incoming.len_bits(), 0, "peer sent unexpected bits");
            },
        );
    }
}
