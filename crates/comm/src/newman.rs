//! Newman's theorem \[New91\], executable: converting a public-coin
//! protocol into a private-coin one.
//!
//! The paper's model grants free public randomness and notes (§3.1)
//! that private randomness suffices at an additive
//! `O(log n + log(1/δ))` bits. The classical construction fixes a
//! small multiset of candidate seeds *in the protocol description*
//! (both parties know it; no communication), Alice samples one index
//! with her private coins, announces it (`⌈log K⌉` bits, one round),
//! and both parties run the public-coin protocol with the selected
//! seed. Newman's probabilistic argument shows `K = O(n/δ²)`
//! candidates suffice to keep the failure probability within `2δ`;
//! here the candidates are derived from a fixed generator, which is
//! the standard heuristic instantiation.

use crate::channel::endpoint_pair;
use crate::coin::{private_rng, PublicCoin};
use crate::meter::{CommStats, Meter};
use crate::session::PartyCtx;
use crate::wire::{width_for, BitWriter, Message};
use rand::Rng;

/// Derives the `idx`-th candidate seed of a Newman seed family
/// identified by `family`.
///
/// Deterministic and known to both parties — part of the protocol
/// description, hence free.
pub fn candidate_seed(family: u64, idx: u64) -> u64 {
    // Reuse the public coin's stream derivation for high-quality
    // mixing.
    PublicCoin::new(family)
        .subcoin(0x4E57_4D41)
        .subcoin(idx)
        .seed()
}

/// Runs a public-coin two-party protocol using only *private*
/// randomness plus Newman's one-round seed announcement.
///
/// `num_candidates` is Newman's `K`; `alice_private_seed` models
/// Alice's private coins; `family` identifies the (publicly known)
/// candidate family. The announcement costs exactly
/// `⌈log₂ K⌉` bits and one round, which the meter records along with
/// the protocol's own cost.
///
/// # Panics
///
/// Panics if `num_candidates == 0` or a party panics.
pub fn run_newman<RA, RB>(
    family: u64,
    num_candidates: u64,
    alice_private_seed: u64,
    alice: impl FnOnce(PartyCtx) -> RA + Send,
    bob: impl FnOnce(PartyCtx) -> RB + Send,
) -> (RA, RB, CommStats)
where
    RA: Send,
    RB: Send,
{
    assert!(
        num_candidates >= 1,
        "Newman needs at least one candidate seed"
    );
    let meter = Meter::new();
    let (a_ep, b_ep) = endpoint_pair(meter.clone());
    let width = width_for(num_candidates - 1);
    let (ra, rb) = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            // Alice draws the index with her private coins and
            // announces it.
            let idx = private_rng(alice_private_seed, 0xA11CE).gen_range(0..num_candidates);
            let mut w = BitWriter::new();
            w.write_uint(idx, width);
            a_ep.send(w.finish());
            let coin = PublicCoin::new(candidate_seed(family, idx));
            alice(PartyCtx {
                endpoint: a_ep,
                coin,
                threads: 1,
            })
        });
        let hb = s.spawn(move || {
            let msg = b_ep.exchange(Message::empty());
            let idx = msg.reader().read_uint(width);
            let coin = PublicCoin::new(candidate_seed(family, idx));
            bob(PartyCtx {
                endpoint: b_ep,
                coin,
                threads: 1,
            })
        });
        let ra = match ha.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    });
    (ra, rb, meter.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_seeds_are_deterministic_and_distinct() {
        assert_eq!(candidate_seed(1, 5), candidate_seed(1, 5));
        assert_ne!(candidate_seed(1, 5), candidate_seed(1, 6));
        assert_ne!(candidate_seed(1, 5), candidate_seed(2, 5));
    }

    #[test]
    fn parties_agree_on_the_sampled_coin() {
        let (a, b, stats) = run_newman(
            7,
            64,
            12345,
            |ctx| ctx.coin.stream(&[1]).gen::<u64>(),
            |ctx| ctx.coin.stream(&[1]).gen::<u64>(),
        );
        assert_eq!(a, b, "both parties must derive the same public coin");
        // Announcement: ⌈log₂ 64⌉ = 6 bits, one round; nothing else.
        assert_eq!(stats.total_bits(), 6);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn different_private_seeds_select_different_coins() {
        let run = |priv_seed: u64| {
            let (a, _, _) = run_newman(
                7,
                1 << 16,
                priv_seed,
                |ctx| ctx.coin.seed(),
                |ctx| ctx.coin.seed(),
            );
            a
        };
        // With 2^16 candidates, two random draws collide with
        // probability 2^-16; distinct seeds should differ.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn protocol_continues_after_announcement() {
        // The protocol body can keep using the endpoint afterwards.
        let (a, b, stats) = run_newman(
            3,
            4,
            9,
            |ctx| {
                let mut w = BitWriter::new();
                w.write_uint(5, 3);
                ctx.endpoint.send(w.finish());
                5u64
            },
            |ctx| {
                let msg = ctx.endpoint.recv();
                msg.reader().read_uint(3)
            },
        );
        assert_eq!(a, b);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.total_bits(), 2 + 3);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_rejected() {
        let _ = run_newman(0, 0, 0, |_| (), |_| ());
    }
}
