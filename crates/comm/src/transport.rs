//! Pluggable wires under the two-party session: the [`Transport`]
//! trait and its three implementations.
//!
//! Every session runs both parties in one process (two threads), but
//! the *bytes* between them can travel three ways:
//!
//! * [`InProc`] — the original yield-to-peer mpsc exchange. Zero
//!   copies beyond an `Arc` bump; the fast default for campaigns.
//! * [`Pipe`] — a pair of OS pipes (`std::io::pipe`). Every round
//!   crosses a real kernel byte boundary.
//! * [`Tcp`] — a loopback TCP connection with length-prefixed frames.
//!   The frame writer is buffered so one round costs one `write`
//!   syscall (header + payload flushed together), not one per field
//!   the bit writer flushed.
//!
//! The communication *accounting* is transport-independent by
//! construction: the [`Meter`](crate::meter::Meter) counts
//! `len_bits()` and rounds in [`Endpoint::exchange`](crate::Endpoint)
//! **before** the message reaches the link, so `CommStats` are
//! bit-identical across all three transports — the byte framing the
//! stream transports add (a 32-bit length prefix per message) is
//! plumbing, not protocol, and is never metered. Tests in this module
//! and the workspace's campaign-level proptests pin that invariant.
//!
//! # Selecting a transport
//!
//! [`TransportKind`] names the three implementations and parses from
//! the same strings campaign files use (`"inproc"`, `"pipe"`,
//! `"tcp"`). Sessions pick their wire two ways:
//!
//! * explicitly — [`run_two_party_ctx_on`](crate::session::run_two_party_ctx_on)
//!   takes a `TransportKind` first argument;
//! * ambiently — [`with_session_transport`] sets a thread-local
//!   default that every plain
//!   [`run_two_party_ctx`](crate::session::run_two_party_ctx) under
//!   the closure inherits. This is how the campaign runner threads a
//!   `transport = "tcp"` axis setting through protocol code that
//!   never mentions transports.

use crate::wire::Message;
use std::cell::Cell;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};

/// How many yield-and-retry attempts the in-process link's receive
/// makes before parking on the blocking receive.
const YIELD_ROUNDS: usize = 16;

/// Upper bound a stream transport accepts for one frame's bit length.
///
/// A header above this is refused as corrupt instead of allocating —
/// a torn or misaligned stream must not look like a 500 MB message.
pub const MAX_FRAME_BITS: usize = 1 << 30;

/// One party's end of a connected duplex wire.
///
/// `send` ships one [`Message`] to the peer; `recv` blocks for the
/// peer's next message. Both panic if the peer is gone — in this
/// workspace a vanished peer means its thread panicked, and the
/// session layer propagates that panic anyway.
pub trait Link {
    /// Ships one message to the peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected.
    fn send(&mut self, msg: &Message);

    /// Blocks for the peer's next message.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected before answering.
    fn recv(&mut self) -> Message;
}

/// A boxed, thread-movable link half.
pub type LinkBox = Box<dyn Link + Send>;

/// A way to wire two parties together: produces connected
/// [`Link`] pairs.
///
/// # Example
///
/// A real TCP loopback round trip, driven directly at the link layer:
///
/// ```
/// use bichrome_comm::transport::{Tcp, Transport};
/// use bichrome_comm::wire::BitWriter;
///
/// let (mut alice, mut bob) = Tcp.pair().unwrap();
/// let echo = std::thread::spawn(move || {
///     let got = bob.recv();
///     bob.send(&got);
/// });
/// let mut w = BitWriter::new();
/// w.write_uint(29, 5);
/// alice.send(&w.finish());
/// assert_eq!(alice.recv().reader().read_uint(5), 29);
/// echo.join().unwrap();
/// ```
pub trait Transport {
    /// The transport's canonical name (`"inproc"` / `"pipe"` /
    /// `"tcp"`).
    fn name(&self) -> &'static str;

    /// A fresh connected pair of link halves: `(alice, bob)`.
    ///
    /// # Errors
    ///
    /// Propagates OS resource failures (pipe / socket creation).
    fn pair(&self) -> io::Result<(LinkBox, LinkBox)>;
}

// ---------------------------------------------------------------------------
// InProc: the original mpsc exchange.
// ---------------------------------------------------------------------------

/// The in-process transport: std mpsc channels with a cooperative
/// yield-to-peer fast path, semantics identical to the pre-transport
/// `Endpoint`.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProc;

struct InProcLink {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

impl Link for InProcLink {
    fn send(&mut self, msg: &Message) {
        // Messages are Arc-backed; this clone is a refcount bump.
        self.tx.send(msg.clone()).expect("peer hung up before send");
    }

    fn recv(&mut self) -> Message {
        // Cooperative fast path: the peer is almost always runnable
        // and about to answer, so try a few yield-to-peer handoffs
        // before the blocking receive parks this thread. On a single
        // core `yield_now` runs the peer immediately, making one
        // round cost one scheduler handoff instead of a futex
        // park/wake pair; on many cores the reply usually lands
        // during the first yields.
        for _ in 0..YIELD_ROUNDS {
            match self.rx.try_recv() {
                Ok(m) => return m,
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => {
                    panic!("peer hung up before reply")
                }
            }
        }
        self.rx.recv().expect("peer hung up before reply")
    }
}

impl Transport for InProc {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        let (a_tx, a_rx) = std::sync::mpsc::channel();
        let (b_tx, b_rx) = std::sync::mpsc::channel();
        Ok((
            Box::new(InProcLink { tx: a_tx, rx: b_rx }),
            Box::new(InProcLink { tx: b_tx, rx: a_rx }),
        ))
    }
}

// ---------------------------------------------------------------------------
// The frame codec shared by the byte-stream transports.
// ---------------------------------------------------------------------------

/// Writes one frame — a little-endian `u32` *bit* length followed by
/// `ceil(bits / 8)` payload bytes — into `w` without flushing, so a
/// buffered writer coalesces header and payload into one syscall.
///
/// # Errors
///
/// Propagates the underlying write failure; refuses messages above
/// [`MAX_FRAME_BITS`] as `InvalidInput`.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let bits = msg.len_bits();
    if bits > MAX_FRAME_BITS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {bits} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        ));
    }
    w.write_all(&(bits as u32).to_le_bytes())?;
    w.write_all(msg.as_bytes())
}

/// Reads one [`write_frame`]-encoded frame from `r`.
///
/// # Errors
///
/// `UnexpectedEof` on a torn frame (stream ends inside the header or
/// payload); `InvalidData` on an oversized bit length (refused before
/// any allocation).
pub fn read_frame(r: &mut impl Read) -> io::Result<Message> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let bits = u32::from_le_bytes(header) as usize;
    if bits > MAX_FRAME_BITS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {bits} bits (cap {MAX_FRAME_BITS}); refusing"),
        ));
    }
    let mut buf = vec![0u8; bits.div_ceil(8)];
    r.read_exact(&mut buf)?;
    Ok(Message::from_raw_parts(buf, bits))
}

/// A [`Link`] over any byte stream: buffered frames, one flush (and
/// therefore one syscall on an OS-backed stream) per message.
struct FramedLink<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: BufWriter<W>,
}

impl<R: Read, W: Write> FramedLink<R, W> {
    fn new(reader: R, writer: W) -> Self {
        FramedLink {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
        }
    }
}

impl<R: Read, W: Write> Link for FramedLink<R, W> {
    fn send(&mut self, msg: &Message) {
        write_frame(&mut self.writer, msg)
            .and_then(|()| self.writer.flush())
            .expect("peer hung up before send");
    }

    fn recv(&mut self) -> Message {
        read_frame(&mut self.reader).expect("peer hung up before reply")
    }
}

// ---------------------------------------------------------------------------
// Pipe: two OS pipes.
// ---------------------------------------------------------------------------

/// The OS-pipe transport: one anonymous pipe per direction
/// (`std::io::pipe`), frames crossing a real kernel byte boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pipe;

impl Transport for Pipe {
    fn name(&self) -> &'static str {
        "pipe"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        let (a_to_b_read, a_to_b_write) = io::pipe()?;
        let (b_to_a_read, b_to_a_write) = io::pipe()?;
        Ok((
            Box::new(FramedLink::new(b_to_a_read, a_to_b_write)),
            Box::new(FramedLink::new(a_to_b_read, b_to_a_write)),
        ))
    }
}

// ---------------------------------------------------------------------------
// Tcp: loopback sockets.
// ---------------------------------------------------------------------------

/// The TCP transport: a loopback connection on an ephemeral port,
/// `TCP_NODELAY` on, length-prefixed frames batched so one round is
/// one `write` syscall per direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tcp;

impl Transport for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let alice = TcpStream::connect(addr)?;
        let (bob, _) = listener.accept()?;
        // Rounds are latency-bound single frames; Nagle would add a
        // delayed-ACK stall to every exchange.
        alice.set_nodelay(true)?;
        bob.set_nodelay(true)?;
        let a = FramedLink::new(alice.try_clone()?, alice);
        let b = FramedLink::new(bob.try_clone()?, bob);
        Ok((Box::new(a), Box::new(b)))
    }
}

// ---------------------------------------------------------------------------
// TransportKind: the nameable axis value.
// ---------------------------------------------------------------------------

/// A nameable transport choice — the value a campaign's
/// `transport = "inproc" | "pipe" | "tcp"` axis parses into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// [`InProc`] (the default).
    #[default]
    InProc,
    /// [`Pipe`].
    Pipe,
    /// [`Tcp`].
    Tcp,
}

static INPROC: InProc = InProc;
static PIPE: Pipe = Pipe;
static TCP: Tcp = Tcp;

impl TransportKind {
    /// Every kind, in declaration order — handy for identity tests
    /// that sweep all transports.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::InProc,
        TransportKind::Pipe,
        TransportKind::Tcp,
    ];

    /// The canonical name (`"inproc"` / `"pipe"` / `"tcp"`).
    pub fn name(self) -> &'static str {
        self.transport().name()
    }

    /// The implementation behind this kind.
    pub fn transport(self) -> &'static dyn Transport {
        match self {
            TransportKind::InProc => &INPROC,
            TransportKind::Pipe => &PIPE,
            TransportKind::Tcp => &TCP,
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "inproc" => Ok(TransportKind::InProc),
            "pipe" => Ok(TransportKind::Pipe),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (inproc|pipe|tcp)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// The ambient (thread-local) session transport.
// ---------------------------------------------------------------------------

thread_local! {
    static SESSION_TRANSPORT: Cell<TransportKind> = const { Cell::new(TransportKind::InProc) };
}

/// The transport plain
/// [`run_two_party_ctx`](crate::session::run_two_party_ctx) sessions
/// started from this thread currently use ([`TransportKind::InProc`]
/// unless a [`with_session_transport`] scope is active).
pub fn session_transport() -> TransportKind {
    SESSION_TRANSPORT.with(Cell::get)
}

/// Runs `f` with `kind` as this thread's ambient session transport,
/// restoring the previous value afterwards (also on panic/unwind).
///
/// This is how a transport choice reaches protocol code that calls
/// `run_two_party_ctx` without a transport parameter: the campaign
/// executor wraps each trial in this scope.
pub fn with_session_transport<R>(kind: TransportKind, f: impl FnOnce() -> R) -> R {
    struct Restore(TransportKind);
    impl Drop for Restore {
        fn drop(&mut self) {
            SESSION_TRANSPORT.with(|cell| cell.set(self.0));
        }
    }
    let prev = SESSION_TRANSPORT.with(|cell| cell.replace(kind));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;
    use std::io::Cursor;

    fn msg(value: u64, width: usize) -> Message {
        let mut w = BitWriter::new();
        w.write_uint(value, width);
        w.finish()
    }

    #[test]
    fn kinds_parse_and_render_round_trip() {
        for kind in TransportKind::ALL {
            assert_eq!(kind.name().parse::<TransportKind>().expect("parses"), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(TransportKind::default(), TransportKind::InProc);
        let err = "smoke-signals".parse::<TransportKind>().expect_err("bad");
        assert!(err.contains("inproc|pipe|tcp"), "{err}");
    }

    #[test]
    fn every_transport_round_trips_messages_both_ways() {
        for kind in TransportKind::ALL {
            let (mut alice, mut bob) = kind.transport().pair().expect("pair");
            let handle = std::thread::spawn(move || {
                let got = bob.recv();
                assert_eq!(got.reader().read_uint(9), 257, "bob got alice's message");
                bob.send(&msg(42, 6));
                bob.send(&Message::empty());
            });
            alice.send(&msg(257, 9));
            assert_eq!(alice.recv().reader().read_uint(6), 42);
            assert!(alice.recv().is_empty(), "empty messages survive framing");
            handle.join().expect("bob ok");
        }
    }

    #[test]
    fn frame_codec_round_trips_exact_bit_lengths() {
        for bits in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let mut w = BitWriter::new();
            for i in 0..bits {
                w.write_bit(i % 3 == 0);
            }
            let original = w.finish();
            let mut buf = Vec::new();
            write_frame(&mut buf, &original).expect("encode");
            assert_eq!(buf.len(), 4 + bits.div_ceil(8), "header + payload bytes");
            let decoded = read_frame(&mut Cursor::new(&buf)).expect("decode");
            assert_eq!(decoded, original, "{bits} bits");
            assert_eq!(decoded.len_bits(), bits);
        }
    }

    #[test]
    fn torn_frames_are_reported_not_misread() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg(77, 20)).expect("encode");
        // Every strict prefix is a torn frame: inside the header or
        // inside the payload, the decode must fail cleanly.
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).expect_err("torn");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // The full frame still decodes.
        assert_eq!(
            read_frame(&mut Cursor::new(&buf))
                .expect("whole")
                .reader()
                .read_uint(20),
            77
        );
    }

    #[test]
    fn oversized_frame_headers_are_refused_without_allocating() {
        let mut buf = ((MAX_FRAME_BITS as u32) + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut Cursor::new(&buf)).expect_err("refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("refusing"), "{err}");
        // The cap itself is still legal on the write side.
        let mut sink = Vec::new();
        let fit = Message::from_raw_parts(vec![0u8; MAX_FRAME_BITS / 8], MAX_FRAME_BITS);
        write_frame(&mut sink, &fit).expect("at-cap frame encodes");
    }

    #[test]
    fn ambient_transport_scopes_nest_and_restore() {
        assert_eq!(session_transport(), TransportKind::InProc);
        with_session_transport(TransportKind::Tcp, || {
            assert_eq!(session_transport(), TransportKind::Tcp);
            with_session_transport(TransportKind::Pipe, || {
                assert_eq!(session_transport(), TransportKind::Pipe);
            });
            assert_eq!(
                session_transport(),
                TransportKind::Tcp,
                "inner scope restored"
            );
        });
        assert_eq!(session_transport(), TransportKind::InProc);
        // A panicking scope must restore too.
        let caught = std::panic::catch_unwind(|| {
            with_session_transport(TransportKind::Pipe, || panic!("boom"))
        });
        assert!(caught.is_err());
        assert_eq!(session_transport(), TransportKind::InProc);
    }
}
