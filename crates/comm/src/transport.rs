//! Pluggable wires under the two-party session: the [`Transport`]
//! trait and its three implementations.
//!
//! Every session runs both parties in one process (two threads), but
//! the *bytes* between them can travel three ways:
//!
//! * [`InProc`] — the original yield-to-peer mpsc exchange. Zero
//!   copies beyond an `Arc` bump; the fast default for campaigns.
//! * [`Pipe`] — a pair of OS pipes (`std::io::pipe`). Every round
//!   crosses a real kernel byte boundary.
//! * [`Tcp`] — a loopback TCP connection with length-prefixed frames.
//!   The frame writer is buffered so one round costs one `write`
//!   syscall (header + payload flushed together), not one per field
//!   the bit writer flushed.
//!
//! The communication *accounting* is transport-independent by
//! construction: the [`Meter`](crate::meter::Meter) counts
//! `len_bits()` and rounds in [`Endpoint::exchange`](crate::Endpoint)
//! **before** the message reaches the link, so `CommStats` are
//! bit-identical across all three transports — the byte framing the
//! stream transports add (a length prefix and checksum per message)
//! is plumbing, not protocol, and is never metered. Tests in this
//! module and the workspace's campaign-level proptests pin that
//! invariant.
//!
//! # Frame format
//!
//! Stream transports ship each message as one *frame*. Two frame
//! versions coexist on the read side:
//!
//! * **v1** (legacy): a little-endian `u32` *bit* length, then
//!   `ceil(bits / 8)` payload bytes.
//! * **v2** (current, written by [`write_frame`]): the same `u32` bit
//!   length with the high bit ([`FRAME_V2_FLAG`]) set, then a
//!   little-endian IEEE CRC-32 of (bit length, payload), then the
//!   payload bytes. A corrupted header or payload is *detected* —
//!   [`read_frame`] refuses it as `InvalidData` instead of delivering
//!   garbage.
//!
//! Because legal bit lengths are capped at [`MAX_FRAME_BITS`]
//! (`1 << 30`), the v2 flag bit can never appear in a v1 header:
//! [`read_frame`] auto-detects the version per frame, so streams (and
//! any persisted frames) written before v2 still load.
//!
//! # Errors instead of hangs
//!
//! [`Link::try_send`] / [`Link::try_recv`] surface failures as typed
//! [`TransportError`]s; the panicking [`Link::send`] / [`Link::recv`]
//! wrappers preserve the original session semantics (a vanished peer
//! means its thread panicked, and the session layer propagates that
//! panic anyway). The in-process receive no longer parks forever: it
//! spins a configurable yield budget, then parks with a deadline
//! ([`configure_inproc_recv`]) so a peer that is alive but silent past
//! the deadline surfaces as [`TransportError::Timeout`].
//!
//! # Selecting a transport
//!
//! [`TransportKind`] names the three implementations and parses from
//! the same strings campaign files use (`"inproc"`, `"pipe"`,
//! `"tcp"`). Sessions pick their wire two ways:
//!
//! * explicitly — [`run_two_party_ctx_on`](crate::session::run_two_party_ctx_on)
//!   takes a `TransportKind` first argument;
//! * ambiently — [`with_session_transport`] sets a thread-local
//!   default that every plain
//!   [`run_two_party_ctx`](crate::session::run_two_party_ctx) under
//!   the closure inherits. This is how the campaign runner threads a
//!   `transport = "tcp"` axis setting through protocol code that
//!   never mentions transports.

use crate::wire::Message;
use std::cell::Cell;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

/// Default for [`InProcRecvConfig::yield_rounds`].
const DEFAULT_YIELD_ROUNDS: usize = 16;

/// Default for [`InProcRecvConfig::park_timeout`]: generous, because
/// a party may legitimately compute for a long time between rounds —
/// the deadline exists to turn a *permanently* silent peer into a
/// typed error instead of an unbounded hang.
const DEFAULT_PARK_TIMEOUT: Duration = Duration::from_secs(300);

/// Upper bound a stream transport accepts for one frame's bit length.
///
/// A header above this is refused as corrupt instead of allocating —
/// a torn or misaligned stream must not look like a 500 MB message.
/// Keeping the cap below `1 << 31` also guarantees a legal v1 header
/// never has the [`FRAME_V2_FLAG`] bit set.
pub const MAX_FRAME_BITS: usize = 1 << 30;

/// High bit of the frame header marking the checksummed v2 format.
pub const FRAME_V2_FLAG: u32 = 1 << 31;

// ---------------------------------------------------------------------------
// TransportError: typed link failures.
// ---------------------------------------------------------------------------

/// Why a link operation failed. Carried by [`Link::try_send`] /
/// [`Link::try_recv`]; the panicking [`Link::send`] / [`Link::recv`]
/// render it into their panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer disconnected (its thread panicked, its process died,
    /// or the connection was severed).
    PeerGone(String),
    /// Bytes arrived but failed validation (bad checksum, impossible
    /// header, sequence desync) — detected, never silently delivered.
    Corrupt(String),
    /// The peer stayed silent past the receive deadline
    /// (see [`configure_inproc_recv`]).
    Timeout(String),
    /// Any other I/O failure.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerGone(d) => write!(f, "peer gone: {d}"),
            TransportError::Corrupt(d) => write!(f, "corrupt frame: {d}"),
            TransportError::Timeout(d) => write!(f, "receive timeout: {d}"),
            TransportError::Io(d) => write!(f, "link i/o error: {d}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Maps an [`io::Error`] from a stream link onto the matching
/// [`TransportError`] variant.
fn io_error(context: &str, e: io::Error) -> TransportError {
    let detail = format!("{context}: {e}");
    match e.kind() {
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::NotConnected => TransportError::PeerGone(detail),
        io::ErrorKind::InvalidData => TransportError::Corrupt(detail),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => TransportError::Timeout(detail),
        _ => TransportError::Io(detail),
    }
}

/// One party's end of a connected duplex wire.
///
/// `try_send` ships one [`Message`] to the peer; `try_recv` blocks
/// for the peer's next message. Both report failures as typed
/// [`TransportError`]s. The provided [`Link::send`] / [`Link::recv`]
/// panic instead — in this workspace a vanished peer means its thread
/// panicked, and the session layer propagates that panic anyway.
pub trait Link {
    /// Ships one message to the peer.
    ///
    /// # Errors
    ///
    /// [`TransportError::PeerGone`] if the peer disconnected; other
    /// variants for stream-level failures.
    fn try_send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Blocks for the peer's next message.
    ///
    /// # Errors
    ///
    /// [`TransportError::PeerGone`] if the peer disconnected before
    /// answering, [`TransportError::Timeout`] past the receive
    /// deadline, [`TransportError::Corrupt`] for frames that fail
    /// validation.
    fn try_recv(&mut self) -> Result<Message, TransportError>;

    /// Ships one message to the peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected.
    fn send(&mut self, msg: &Message) {
        if let Err(e) = self.try_send(msg) {
            panic!("link send failed ({e})");
        }
    }

    /// Blocks for the peer's next message.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected before answering.
    fn recv(&mut self) -> Message {
        match self.try_recv() {
            Ok(msg) => msg,
            Err(e) => panic!("link recv failed ({e})"),
        }
    }
}

/// A boxed, thread-movable link half.
pub type LinkBox = Box<dyn Link + Send>;

/// A way to wire two parties together: produces connected
/// [`Link`] pairs.
///
/// # Example
///
/// A real TCP loopback round trip, driven directly at the link layer:
///
/// ```
/// use bichrome_comm::transport::{Tcp, Transport};
/// use bichrome_comm::wire::BitWriter;
///
/// let (mut alice, mut bob) = Tcp.pair().unwrap();
/// let echo = std::thread::spawn(move || {
///     let got = bob.recv();
///     bob.send(&got);
/// });
/// let mut w = BitWriter::new();
/// w.write_uint(29, 5);
/// alice.send(&w.finish());
/// assert_eq!(alice.recv().reader().read_uint(5), 29);
/// echo.join().unwrap();
/// ```
pub trait Transport {
    /// The transport's canonical name (`"inproc"` / `"pipe"` /
    /// `"tcp"`).
    fn name(&self) -> &'static str;

    /// A fresh connected pair of link halves: `(alice, bob)`.
    ///
    /// # Errors
    ///
    /// Propagates OS resource failures (pipe / socket creation).
    fn pair(&self) -> io::Result<(LinkBox, LinkBox)>;
}

// ---------------------------------------------------------------------------
// InProc: the original mpsc exchange.
// ---------------------------------------------------------------------------

/// How the in-process receive waits for the peer: a cooperative
/// yield-spin budget, then a parked wait with a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InProcRecvConfig {
    /// Yield-and-retry attempts before parking on the blocking
    /// receive. On a single core `yield_now` runs the peer
    /// immediately, making one round cost one scheduler handoff
    /// instead of a futex park/wake pair.
    pub yield_rounds: usize,
    /// How long the parked receive waits before surfacing
    /// [`TransportError::Timeout`]. Generous by default (300 s): a
    /// party may compute for a long time between rounds, and the
    /// deadline only exists so a *permanently* silent peer becomes a
    /// typed error instead of a hang.
    pub park_timeout: Duration,
}

impl Default for InProcRecvConfig {
    fn default() -> InProcRecvConfig {
        InProcRecvConfig {
            yield_rounds: DEFAULT_YIELD_ROUNDS,
            park_timeout: DEFAULT_PARK_TIMEOUT,
        }
    }
}

/// Process-wide [`InProcRecvConfig`], captured by each
/// [`InProc::pair`] at creation time.
static INPROC_YIELD_ROUNDS: AtomicUsize = AtomicUsize::new(DEFAULT_YIELD_ROUNDS);
static INPROC_PARK_TIMEOUT_NANOS: AtomicU64 = AtomicU64::new(300_000_000_000);

/// Sets the process-wide receive behavior for **future** in-process
/// link pairs (existing links keep the configuration they were
/// created with).
pub fn configure_inproc_recv(config: InProcRecvConfig) {
    INPROC_YIELD_ROUNDS.store(config.yield_rounds, Ordering::Relaxed);
    INPROC_PARK_TIMEOUT_NANOS.store(
        config.park_timeout.as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
}

/// The current process-wide in-process receive configuration.
pub fn inproc_recv_config() -> InProcRecvConfig {
    InProcRecvConfig {
        yield_rounds: INPROC_YIELD_ROUNDS.load(Ordering::Relaxed),
        park_timeout: Duration::from_nanos(INPROC_PARK_TIMEOUT_NANOS.load(Ordering::Relaxed)),
    }
}

/// The in-process transport: std mpsc channels with a cooperative
/// yield-to-peer fast path, semantics identical to the pre-transport
/// `Endpoint`.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProc;

impl InProc {
    /// [`Transport::pair`] with an explicit receive configuration
    /// instead of the process-wide one — lets tests exercise short
    /// deadlines without perturbing concurrent sessions.
    pub fn pair_with(&self, config: InProcRecvConfig) -> io::Result<(LinkBox, LinkBox)> {
        let (a_tx, a_rx) = std::sync::mpsc::channel();
        let (b_tx, b_rx) = std::sync::mpsc::channel();
        Ok((
            Box::new(InProcLink {
                tx: a_tx,
                rx: b_rx,
                config,
            }),
            Box::new(InProcLink {
                tx: b_tx,
                rx: a_rx,
                config,
            }),
        ))
    }
}

struct InProcLink {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    config: InProcRecvConfig,
}

impl Link for InProcLink {
    fn try_send(&mut self, msg: &Message) -> Result<(), TransportError> {
        // Messages are Arc-backed; this clone is a refcount bump.
        self.tx
            .send(msg.clone())
            .map_err(|_| TransportError::PeerGone("peer hung up before send".to_string()))
    }

    fn try_recv(&mut self) -> Result<Message, TransportError> {
        // Cooperative fast path: the peer is almost always runnable
        // and about to answer, so try a few yield-to-peer handoffs
        // before the blocking receive parks this thread. On many
        // cores the reply usually lands during the first yields.
        for _ in 0..self.config.yield_rounds {
            match self.rx.try_recv() {
                Ok(m) => return Ok(m),
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => {
                    return Err(TransportError::PeerGone(
                        "peer hung up before reply".to_string(),
                    ))
                }
            }
        }
        match self.rx.recv_timeout(self.config.park_timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::PeerGone(
                "peer hung up before reply".to_string(),
            )),
            Err(RecvTimeoutError::Timeout) => Err(TransportError::Timeout(format!(
                "peer sent nothing for {:?}",
                self.config.park_timeout
            ))),
        }
    }
}

impl Transport for InProc {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        self.pair_with(inproc_recv_config())
    }
}

// ---------------------------------------------------------------------------
// The frame codec shared by the byte-stream transports.
// ---------------------------------------------------------------------------

/// The IEEE CRC-32 lookup table (reflected 0xEDB88320 polynomial),
/// built at compile time — no dependencies, no lazy init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) over `parts` concatenated.
///
/// Detects all single-bit errors and all burst errors up to 32 bits —
/// exactly what the v2 frame format and the fault-injection layer
/// rely on to guarantee corruption is *detected*, never silently
/// delivered.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Writes one v2 frame — a little-endian `u32` *bit* length with
/// [`FRAME_V2_FLAG`] set, a little-endian CRC-32 of (bit length,
/// payload), then `ceil(bits / 8)` payload bytes — into `w` without
/// flushing, so a buffered writer coalesces header and payload into
/// one syscall.
///
/// # Errors
///
/// Propagates the underlying write failure; refuses messages above
/// [`MAX_FRAME_BITS`] as `InvalidInput`.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let bits = msg.len_bits();
    if bits > MAX_FRAME_BITS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {bits} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        ));
    }
    let bits_le = (bits as u32).to_le_bytes();
    let crc = crc32(&[&bits_le, msg.as_bytes()]);
    w.write_all(&((bits as u32) | FRAME_V2_FLAG).to_le_bytes())?;
    w.write_all(&crc.to_le_bytes())?;
    w.write_all(msg.as_bytes())
}

/// Writes one legacy v1 frame (bit length + payload, no checksum).
/// Kept for compatibility tests and tooling that must produce the
/// pre-checksum format; new code writes v2 via [`write_frame`].
///
/// # Errors
///
/// Same contract as [`write_frame`].
pub fn write_frame_v1(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let bits = msg.len_bits();
    if bits > MAX_FRAME_BITS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {bits} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        ));
    }
    w.write_all(&(bits as u32).to_le_bytes())?;
    w.write_all(msg.as_bytes())
}

/// Reads one frame from `r`, auto-detecting the version per frame:
/// headers with [`FRAME_V2_FLAG`] set are checksummed v2 frames,
/// headers without it are legacy v1 frames (so pre-checksum streams
/// still load).
///
/// # Errors
///
/// `UnexpectedEof` on a torn frame (stream ends inside the header or
/// payload); `InvalidData` on an oversized bit length (refused before
/// any allocation) or a v2 checksum mismatch (corruption is detected,
/// never silently delivered).
pub fn read_frame(r: &mut impl Read) -> io::Result<Message> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let raw = u32::from_le_bytes(header);
    let v2 = raw & FRAME_V2_FLAG != 0;
    let bits = (raw & !FRAME_V2_FLAG) as usize;
    if bits > MAX_FRAME_BITS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {bits} bits (cap {MAX_FRAME_BITS}); refusing"),
        ));
    }
    let mut want_crc = [0u8; 4];
    if v2 {
        r.read_exact(&mut want_crc)?;
    }
    let mut buf = vec![0u8; bits.div_ceil(8)];
    r.read_exact(&mut buf)?;
    if v2 {
        let got = crc32(&[&(bits as u32).to_le_bytes(), &buf]);
        if got != u32::from_le_bytes(want_crc) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame checksum mismatch (want {:08x}, got {got:08x}); refusing",
                    u32::from_le_bytes(want_crc)
                ),
            ));
        }
    }
    Ok(Message::from_raw_parts(buf, bits))
}

/// A [`Link`] over any byte stream: buffered frames, one flush (and
/// therefore one syscall on an OS-backed stream) per message.
pub(crate) struct FramedLink<R: Read, W: Write> {
    reader: BufReader<R>,
    writer: BufWriter<W>,
}

impl<R: Read, W: Write> FramedLink<R, W> {
    pub(crate) fn new(reader: R, writer: W) -> Self {
        FramedLink {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
        }
    }
}

impl<R: Read, W: Write> Link for FramedLink<R, W> {
    fn try_send(&mut self, msg: &Message) -> Result<(), TransportError> {
        write_frame(&mut self.writer, msg)
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_error("frame send", e))
    }

    fn try_recv(&mut self) -> Result<Message, TransportError> {
        read_frame(&mut self.reader).map_err(|e| io_error("frame recv", e))
    }
}

/// One direction of a raw byte stream, as the fault layer consumes it
/// (to interpose short-read/short-write adapters *below* the frame
/// codec).
pub(crate) type RawReader = Box<dyn Read + Send>;
/// See [`RawReader`].
pub(crate) type RawWriter = Box<dyn Write + Send>;

/// A connected raw duplex pair for the stream transports —
/// `Some(((a_read, a_write), (b_read, b_write)))` for [`Pipe`] /
/// [`Tcp`], `None` for [`InProc`] (which has no byte stream to
/// interpose on).
#[allow(clippy::type_complexity)]
pub(crate) fn raw_stream_pair(
    kind: TransportKind,
) -> io::Result<Option<((RawReader, RawWriter), (RawReader, RawWriter))>> {
    match kind {
        TransportKind::InProc => Ok(None),
        TransportKind::Pipe => Pipe::raw_pair().map(Some),
        TransportKind::Tcp => Tcp::raw_pair().map(Some),
    }
}

// ---------------------------------------------------------------------------
// Pipe: two OS pipes.
// ---------------------------------------------------------------------------

/// The OS-pipe transport: one anonymous pipe per direction
/// (`std::io::pipe`), frames crossing a real kernel byte boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pipe;

impl Pipe {
    #[allow(clippy::type_complexity)]
    fn raw_pair() -> io::Result<((RawReader, RawWriter), (RawReader, RawWriter))> {
        let (a_to_b_read, a_to_b_write) = io::pipe()?;
        let (b_to_a_read, b_to_a_write) = io::pipe()?;
        Ok((
            (Box::new(b_to_a_read), Box::new(a_to_b_write)),
            (Box::new(a_to_b_read), Box::new(b_to_a_write)),
        ))
    }
}

impl Transport for Pipe {
    fn name(&self) -> &'static str {
        "pipe"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        let ((a_read, a_write), (b_read, b_write)) = Pipe::raw_pair()?;
        Ok((
            Box::new(FramedLink::new(a_read, a_write)),
            Box::new(FramedLink::new(b_read, b_write)),
        ))
    }
}

// ---------------------------------------------------------------------------
// Tcp: loopback sockets.
// ---------------------------------------------------------------------------

/// The TCP transport: a loopback connection on an ephemeral port,
/// `TCP_NODELAY` on, length-prefixed frames batched so one round is
/// one `write` syscall per direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tcp;

impl Tcp {
    #[allow(clippy::type_complexity)]
    fn raw_pair() -> io::Result<((RawReader, RawWriter), (RawReader, RawWriter))> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let alice = TcpStream::connect(addr)?;
        let (bob, _) = listener.accept()?;
        // Rounds are latency-bound single frames; Nagle would add a
        // delayed-ACK stall to every exchange.
        alice.set_nodelay(true)?;
        bob.set_nodelay(true)?;
        Ok((
            (Box::new(alice.try_clone()?), Box::new(alice)),
            (Box::new(bob.try_clone()?), Box::new(bob)),
        ))
    }
}

impl Transport for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn pair(&self) -> io::Result<(LinkBox, LinkBox)> {
        let ((a_read, a_write), (b_read, b_write)) = Tcp::raw_pair()?;
        Ok((
            Box::new(FramedLink::new(a_read, a_write)),
            Box::new(FramedLink::new(b_read, b_write)),
        ))
    }
}

// ---------------------------------------------------------------------------
// TransportKind: the nameable axis value.
// ---------------------------------------------------------------------------

/// A nameable transport choice — the value a campaign's
/// `transport = "inproc" | "pipe" | "tcp"` axis parses into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// [`InProc`] (the default).
    #[default]
    InProc,
    /// [`Pipe`].
    Pipe,
    /// [`Tcp`].
    Tcp,
}

static INPROC: InProc = InProc;
static PIPE: Pipe = Pipe;
static TCP: Tcp = Tcp;

impl TransportKind {
    /// Every kind, in declaration order — handy for identity tests
    /// that sweep all transports.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::InProc,
        TransportKind::Pipe,
        TransportKind::Tcp,
    ];

    /// The canonical name (`"inproc"` / `"pipe"` / `"tcp"`).
    pub fn name(self) -> &'static str {
        self.transport().name()
    }

    /// The implementation behind this kind.
    pub fn transport(self) -> &'static dyn Transport {
        match self {
            TransportKind::InProc => &INPROC,
            TransportKind::Pipe => &PIPE,
            TransportKind::Tcp => &TCP,
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "inproc" => Ok(TransportKind::InProc),
            "pipe" => Ok(TransportKind::Pipe),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (inproc|pipe|tcp)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// The ambient (thread-local) session transport.
// ---------------------------------------------------------------------------

thread_local! {
    static SESSION_TRANSPORT: Cell<TransportKind> = const { Cell::new(TransportKind::InProc) };
}

/// The transport plain
/// [`run_two_party_ctx`](crate::session::run_two_party_ctx) sessions
/// started from this thread currently use ([`TransportKind::InProc`]
/// unless a [`with_session_transport`] scope is active).
pub fn session_transport() -> TransportKind {
    SESSION_TRANSPORT.with(Cell::get)
}

/// Runs `f` with `kind` as this thread's ambient session transport,
/// restoring the previous value afterwards (also on panic/unwind).
///
/// This is how a transport choice reaches protocol code that calls
/// `run_two_party_ctx` without a transport parameter: the campaign
/// executor wraps each trial in this scope.
pub fn with_session_transport<R>(kind: TransportKind, f: impl FnOnce() -> R) -> R {
    struct Restore(TransportKind);
    impl Drop for Restore {
        fn drop(&mut self) {
            SESSION_TRANSPORT.with(|cell| cell.set(self.0));
        }
    }
    let prev = SESSION_TRANSPORT.with(|cell| cell.replace(kind));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;
    use std::io::Cursor;

    fn msg(value: u64, width: usize) -> Message {
        let mut w = BitWriter::new();
        w.write_uint(value, width);
        w.finish()
    }

    #[test]
    fn kinds_parse_and_render_round_trip() {
        for kind in TransportKind::ALL {
            assert_eq!(kind.name().parse::<TransportKind>().expect("parses"), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(TransportKind::default(), TransportKind::InProc);
        let err = "smoke-signals".parse::<TransportKind>().expect_err("bad");
        assert!(err.contains("inproc|pipe|tcp"), "{err}");
    }

    #[test]
    fn every_transport_round_trips_messages_both_ways() {
        for kind in TransportKind::ALL {
            let (mut alice, mut bob) = kind.transport().pair().expect("pair");
            let handle = std::thread::spawn(move || {
                let got = bob.recv();
                assert_eq!(got.reader().read_uint(9), 257, "bob got alice's message");
                bob.send(&msg(42, 6));
                bob.send(&Message::empty());
            });
            alice.send(&msg(257, 9));
            assert_eq!(alice.recv().reader().read_uint(6), 42);
            assert!(alice.recv().is_empty(), "empty messages survive framing");
            handle.join().expect("bob ok");
        }
    }

    #[test]
    fn frame_codec_round_trips_exact_bit_lengths() {
        for bits in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let mut w = BitWriter::new();
            for i in 0..bits {
                w.write_bit(i % 3 == 0);
            }
            let original = w.finish();
            let mut buf = Vec::new();
            write_frame(&mut buf, &original).expect("encode");
            assert_eq!(
                buf.len(),
                4 + 4 + bits.div_ceil(8),
                "header + checksum + payload bytes"
            );
            let decoded = read_frame(&mut Cursor::new(&buf)).expect("decode");
            assert_eq!(decoded, original, "{bits} bits");
            assert_eq!(decoded.len_bits(), bits);
        }
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        for bits in [0usize, 1, 8, 13, 200] {
            let mut w = BitWriter::new();
            for i in 0..bits {
                w.write_bit(i % 2 == 0);
            }
            let original = w.finish();
            let mut buf = Vec::new();
            write_frame_v1(&mut buf, &original).expect("encode v1");
            assert_eq!(buf.len(), 4 + bits.div_ceil(8), "v1 has no checksum");
            let decoded = read_frame(&mut Cursor::new(&buf)).expect("decode v1");
            assert_eq!(decoded, original, "{bits} bits");
        }
    }

    #[test]
    fn corrupted_v2_frames_are_detected_never_delivered() {
        let original = msg(0xDEAD, 16);
        let mut clean = Vec::new();
        write_frame(&mut clean, &original).expect("encode");
        // Flip every single bit of the frame in turn: every corruption
        // must surface as an error. (The one exception is the version
        // flag bit itself, which downgrades the frame to the
        // checksum-free v1 parse — that flip is caught one layer up,
        // by the fault layer's per-message envelope checksum.)
        let flag_bit = 31;
        for bit in (0..clean.len() * 8).filter(|&b| b != flag_bit) {
            let mut corrupted = clean.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            match read_frame(&mut Cursor::new(&corrupted)) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "flipping bit {bit} was silently accepted (decoded {} bits)",
                    decoded.len_bits()
                ),
            }
        }
        assert_eq!(
            read_frame(&mut Cursor::new(&clean)).expect("clean decodes"),
            original
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926, "split input");
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn torn_frames_are_reported_not_misread() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg(77, 20)).expect("encode");
        // Every strict prefix is a torn frame: inside the header,
        // checksum, or payload, the decode must fail cleanly.
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).expect_err("torn");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
        // The full frame still decodes.
        assert_eq!(
            read_frame(&mut Cursor::new(&buf))
                .expect("whole")
                .reader()
                .read_uint(20),
            77
        );
    }

    #[test]
    fn oversized_frame_headers_are_refused_without_allocating() {
        for flag in [0, FRAME_V2_FLAG] {
            let mut buf = (((MAX_FRAME_BITS as u32) + 1) | flag)
                .to_le_bytes()
                .to_vec();
            buf.extend_from_slice(&[0u8; 16]);
            let err = read_frame(&mut Cursor::new(&buf)).expect_err("refused");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("refusing"), "{err}");
        }
        // The cap itself is still legal on the write side.
        let mut sink = Vec::new();
        let fit = Message::from_raw_parts(vec![0u8; MAX_FRAME_BITS / 8], MAX_FRAME_BITS);
        write_frame(&mut sink, &fit).expect("at-cap frame encodes");
    }

    #[test]
    fn dead_inproc_peer_is_a_typed_error_not_a_hang() {
        let (alice, mut bob) = InProc
            .pair_with(InProcRecvConfig {
                yield_rounds: 2,
                park_timeout: Duration::from_millis(50),
            })
            .expect("pair");
        drop(alice);
        match bob.try_recv() {
            Err(TransportError::PeerGone(_)) => {}
            other => panic!("expected PeerGone, got {other:?}"),
        }
        match bob.try_send(&msg(1, 1)) {
            Err(TransportError::PeerGone(_)) => {}
            other => panic!("expected PeerGone, got {other:?}"),
        }
    }

    #[test]
    fn silent_inproc_peer_times_out_with_a_typed_error() {
        let (_alice, mut bob) = InProc
            .pair_with(InProcRecvConfig {
                yield_rounds: 1,
                park_timeout: Duration::from_millis(20),
            })
            .expect("pair");
        // Alice is alive (her link half is still in scope) but silent:
        // the parked receive must surface Timeout at the deadline
        // instead of hanging forever.
        match bob.try_recv() {
            Err(TransportError::Timeout(_)) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn inproc_recv_configuration_round_trips() {
        let prev = inproc_recv_config();
        assert_eq!(prev, InProcRecvConfig::default());
        let custom = InProcRecvConfig {
            yield_rounds: 3,
            park_timeout: Duration::from_secs(7),
        };
        configure_inproc_recv(custom);
        assert_eq!(inproc_recv_config(), custom);
        configure_inproc_recv(prev);
        assert_eq!(inproc_recv_config(), prev);
    }

    #[test]
    fn ambient_transport_scopes_nest_and_restore() {
        assert_eq!(session_transport(), TransportKind::InProc);
        with_session_transport(TransportKind::Tcp, || {
            assert_eq!(session_transport(), TransportKind::Tcp);
            with_session_transport(TransportKind::Pipe, || {
                assert_eq!(session_transport(), TransportKind::Pipe);
            });
            assert_eq!(
                session_transport(),
                TransportKind::Tcp,
                "inner scope restored"
            );
        });
        assert_eq!(session_transport(), TransportKind::InProc);
        // A panicking scope must restore too.
        let caught = std::panic::catch_unwind(|| {
            with_session_transport(TransportKind::Pipe, || panic!("boom"))
        });
        assert!(caught.is_err());
        assert_eq!(session_transport(), TransportKind::InProc);
    }
}
