//! Two-party communication substrate for the `bichrome` workspace.
//!
//! This crate simulates Yao's two-party communication model (§3.1 of
//! the paper) faithfully enough to *measure* protocols, not just run
//! them:
//!
//! * [`wire`] — bit-level message encoding. Communication is counted
//!   in bits, exactly as in the model; no byte padding sneaks into the
//!   accounting.
//! * [`meter`] — shared accounting of bits per direction, rounds, and
//!   per-phase breakdowns.
//! * [`coin`] — public randomness both parties derive from a shared
//!   seed without communication (costless in the model; Newman's
//!   theorem \[New91\] converts it to private randomness with an
//!   additive `O(log n + log 1/δ)` bits, which we note but do not pay).
//! * [`channel`] — the round-synchronous duplex link: in one *round*
//!   Alice and Bob each send one message to the other simultaneously
//!   (footnote 1 of the paper).
//! * [`session`] — runs Alice's and Bob's protocol code on two OS
//!   threads joined by std mpsc channels.
//! * [`transport`] — pluggable wires under the session: the in-process
//!   exchange, OS pipes, or loopback TCP with length-prefixed,
//!   checksummed frames. The meter counts bits and rounds *above* the
//!   transport, so the recorded `CommStats` are identical whichever
//!   wire carries them.
//! * [`fault`] — deterministic fault injection below the meter:
//!   seed-reproducible severed connections, corrupted frames
//!   (detected, never delivered), delays, and short reads/writes,
//!   with transparent recovery — reports stay byte-identical to the
//!   fault-free run.
//! * [`machine`] — sans-io round machines plus a lock-step driver, so
//!   many per-vertex subprotocols can share each round's message, the
//!   way Algorithm 1 runs all `Color-Sample` instances "in parallel".
//!
//! Protocol code groups its costs with RAII phase labels
//! ([`meter::Meter::phase_scope`]), and the per-phase breakdown rides
//! along in every [`CommStats`]. To *run* whole protocols uniformly
//! (configure → execute → repeat → report), use the `bichrome-runner`
//! crate: its `Protocol` trait and `TrialPlan` builder wrap this
//! substrate, and its `json` module serializes [`CommStats`]
//! round-trippably.
//!
//! # Example
//!
//! ```
//! use bichrome_comm::session::run_two_party;
//! use bichrome_comm::wire::BitWriter;
//!
//! // Alice sends Bob a 7-bit number; Bob replies with its parity.
//! let ((), (x, odd), stats) = run_two_party(42, |ep| {
//!     let mut w = BitWriter::new();
//!     w.write_uint(97, 7);
//!     ep.send(w.finish());        // round 1: Alice talks
//!     let reply = ep.recv();      // round 2: Bob talks
//!     assert!(reply.reader().read_bit());
//! }, |ep| {
//!     let msg = ep.recv();
//!     let x = msg.reader().read_uint(7);
//!     let mut w = BitWriter::new();
//!     w.write_bit(x % 2 == 1);
//!     ep.send(w.finish());
//!     (x, x % 2 == 1)
//! });
//! assert_eq!((x, odd), (97, true));
//! assert_eq!(stats.total_bits(), 8);
//! assert_eq!(stats.rounds, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod channel;
pub mod coin;
pub mod fault;
pub mod machine;
pub mod meter;
pub mod newman;
pub mod session;
pub mod transport;
pub mod wire;

pub use budget::{intra_budget, with_intra_budget};
pub use channel::Endpoint;
pub use coin::PublicCoin;
pub use fault::{with_session_faults, FaultPlan};
pub use meter::CommStats;
pub use transport::{with_session_transport, Transport, TransportError, TransportKind};
pub use wire::{BitReader, BitWriter, Message};

/// Which party an endpoint belongs to.
///
/// Mirrors `bichrome_graph::partition::Party`; kept separate so this
/// crate has no graph dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first party (by convention the one that "speaks first" in
    /// sequential protocols).
    Alice,
    /// The second party.
    Bob,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Alice => Side::Bob,
            Side::Bob => Side::Alice,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Alice => write!(f, "Alice"),
            Side::Bob => write!(f, "Bob"),
        }
    }
}
