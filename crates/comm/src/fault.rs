//! Deterministic fault injection under the two-party link: the
//! [`FaultPlan`] axis value and the [`FaultyLink`] wrapper that
//! executes it.
//!
//! A fault plan is a campaign axis like any other — parsed from a
//! spec string (`fault = "sever@3,delay:1"`), rendered back
//! canonically, and threaded ambiently through
//! [`with_session_faults`] exactly like the session transport. The
//! injected faults live **below** the
//! [`Meter`](crate::meter::Meter): metering happens in
//! [`Endpoint::exchange`](crate::Endpoint) before the message reaches
//! the link, so `CommStats` — and therefore every campaign report —
//! are byte-identical with faults on or off. That invariant is the
//! headline guarantee, pinned by campaign-level proptests: *for any
//! fault plan that eventually lets traffic through, the final report
//! is byte-identical to the fault-free run.*
//!
//! # The fault grammar
//!
//! A spec is `"none"` (or empty) or comma-separated clauses:
//!
//! | clause       | effect                                                        |
//! |--------------|---------------------------------------------------------------|
//! | `sever@K`    | severs the connection just before the initiator's K-th send; a fresh link is established and the last message per direction retransmitted |
//! | `corrupt@K`  | delivers a copy of the initiator's K-th message with one seed-deterministically chosen bit flipped (then the good copy) |
//! | `delay:MS`   | sleeps `MS` milliseconds before every send                    |
//! | `short:N`    | caps every raw stream read/write at `N` bytes (stream transports only) |
//!
//! Frame indices are 1-based and count the initiator's (Alice's)
//! sends. Every plan expressible in this grammar eventually lets
//! traffic through: severed links reconnect, corrupted frames are
//! followed by their clean copy, delays end, and short I/O still
//! makes progress one byte at a time.
//!
//! # How recovery works
//!
//! [`FaultyLink`] wraps each message in a 12-byte envelope — a
//! sequence number, the payload bit length, and an IEEE CRC-32 over
//! all three — so the receiver *detects* corruption (the checksum
//! never lies about a flipped bit) and *deduplicates* retransmits
//! (sequence numbers already seen are dropped). On a sever, the
//! initiating half builds a fresh base link pair, parks the peer's
//! half in a shared slot, and retransmits its most recent envelope;
//! the responder half, on any link error, waits (bounded) for the
//! replacement link, retransmits *its* most recent envelope, and
//! resumes. Since the session protocol is round-synchronous, at most
//! one message per direction is ever in flight, so
//! retransmit-last-plus-dedup is a complete recovery protocol.
//!
//! # Quickstart
//!
//! ```
//! use bichrome_comm::fault::{with_session_faults, FaultPlan};
//! use bichrome_comm::session::run_two_party_ctx_on;
//! use bichrome_comm::transport::TransportKind;
//! use bichrome_comm::wire::BitWriter;
//!
//! // Sever the link before the 2nd frame and corrupt the 1st: the
//! // session heals and the exchange is unchanged.
//! let plan: FaultPlan = "sever@2,corrupt@1".parse().unwrap();
//! let (a, b, stats) = with_session_faults(&plan, || {
//!     run_two_party_ctx_on(
//!         TransportKind::Tcp,
//!         7,
//!         |ctx| {
//!             let mut w = BitWriter::new();
//!             w.write_uint(99, 7);
//!             ctx.endpoint.send(w.finish());
//!             ctx.endpoint.recv().reader().read_uint(8)
//!         },
//!         |ctx| {
//!             let x = ctx.endpoint.recv().reader().read_uint(7);
//!             let mut w = BitWriter::new();
//!             w.write_uint(x + 1, 8);
//!             ctx.endpoint.send(w.finish());
//!         },
//!     )
//! });
//! assert_eq!(a, 100);
//! assert_eq!((stats.rounds, stats.total_bits()), (2, 15));
//! assert_eq!(plan.to_string(), "sever@2,corrupt@1");
//! # let _ = b;
//! ```

use crate::coin::splitmix64;
use crate::transport::{self, FramedLink, Link, LinkBox, TransportError, TransportKind};
use crate::wire::Message;
use std::cell::RefCell;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a responder half waits for the initiator to offer a
/// replacement link after a sever before giving up and propagating
/// the original error (so a genuinely dead peer still surfaces).
const RECONNECT_WAIT: Duration = Duration::from_secs(5);

/// Envelope header: u32 sequence + u32 payload bit length + u32 CRC.
const ENVELOPE_BYTES: usize = 12;

// ---------------------------------------------------------------------------
// FaultPlan: the parseable axis value.
// ---------------------------------------------------------------------------

/// A deterministic schedule of link faults — the value a campaign's
/// `fault = "sever@3,delay:1"` axis parses into. See the
/// [module docs](self) for the grammar and semantics.
///
/// The default plan is empty ([`FaultPlan::is_noop`]); sessions under
/// a no-op plan use the unwrapped transport directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// Initiator send indices (1-based, sorted, deduped) severed just
    /// before transmission.
    severs: Vec<u64>,
    /// Initiator send indices (1-based, sorted, deduped) preceded by
    /// a one-bit-flipped copy.
    corrupts: Vec<u64>,
    /// Milliseconds slept before every send (0 = off).
    delay_ms: u64,
    /// Per-call byte cap on raw stream reads/writes (stream
    /// transports only).
    short_bytes: Option<usize>,
}

impl FaultPlan {
    /// The empty (no-op) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a sever just before the initiator's `k`-th send
    /// (1-based).
    #[must_use]
    pub fn sever_at(mut self, k: u64) -> FaultPlan {
        self.severs.push(k.max(1));
        self.severs.sort_unstable();
        self.severs.dedup();
        self
    }

    /// Adds a one-bit corruption of the initiator's `k`-th send
    /// (1-based).
    #[must_use]
    pub fn corrupt_at(mut self, k: u64) -> FaultPlan {
        self.corrupts.push(k.max(1));
        self.corrupts.sort_unstable();
        self.corrupts.dedup();
        self
    }

    /// Sleeps `ms` milliseconds before every send.
    #[must_use]
    pub fn delay_ms(mut self, ms: u64) -> FaultPlan {
        self.delay_ms = ms;
        self
    }

    /// Caps every raw stream read/write at `n` bytes (≥ 1).
    #[must_use]
    pub fn short(mut self, n: usize) -> FaultPlan {
        self.short_bytes = Some(n.max(1));
        self
    }

    /// Whether this plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.severs.is_empty()
            && self.corrupts.is_empty()
            && self.delay_ms == 0
            && self.short_bytes.is_none()
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let s = s.trim();
        let mut plan = FaultPlan::new();
        if s.is_empty() || s == "none" {
            return Ok(plan);
        }
        for clause in s.split(',') {
            let clause = clause.trim();
            let index = |rest: &str, what: &str| -> Result<u64, String> {
                let k: u64 = rest
                    .parse()
                    .map_err(|_| format!("{what} wants a frame index, got {rest:?}"))?;
                if k == 0 {
                    return Err(format!("{what} indices are 1-based; {clause:?} names 0"));
                }
                Ok(k)
            };
            if let Some(rest) = clause.strip_prefix("sever@") {
                plan = plan.sever_at(index(rest, "sever@K")?);
            } else if let Some(rest) = clause.strip_prefix("corrupt@") {
                plan = plan.corrupt_at(index(rest, "corrupt@K")?);
            } else if let Some(rest) = clause.strip_prefix("delay:") {
                plan.delay_ms = rest
                    .parse()
                    .map_err(|_| format!("delay:MS wants milliseconds, got {rest:?}"))?;
            } else if clause == "short" {
                plan = plan.short(1);
            } else if let Some(rest) = clause.strip_prefix("short:") {
                let n: usize = rest
                    .parse()
                    .map_err(|_| format!("short:N wants a byte cap, got {rest:?}"))?;
                if n == 0 {
                    return Err("short:N needs N ≥ 1 (a zero cap makes no progress)".to_string());
                }
                plan = plan.short(n);
            } else {
                return Err(format!(
                    "unknown fault clause {clause:?} (sever@K|corrupt@K|delay:MS|short[:N])"
                ));
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_noop() {
            return f.write_str("none");
        }
        let mut clauses = Vec::new();
        for k in &self.severs {
            clauses.push(format!("sever@{k}"));
        }
        for k in &self.corrupts {
            clauses.push(format!("corrupt@{k}"));
        }
        if self.delay_ms > 0 {
            clauses.push(format!("delay:{}", self.delay_ms));
        }
        if let Some(n) = self.short_bytes {
            clauses.push(format!("short:{n}"));
        }
        f.write_str(&clauses.join(","))
    }
}

// ---------------------------------------------------------------------------
// The ambient (thread-local) session fault plan.
// ---------------------------------------------------------------------------

thread_local! {
    static SESSION_FAULTS: RefCell<FaultPlan> = RefCell::new(FaultPlan::new());
}

/// The fault plan sessions started from this thread currently apply
/// (the no-op plan unless a [`with_session_faults`] scope is active).
pub fn session_faults() -> FaultPlan {
    SESSION_FAULTS.with(|cell| cell.borrow().clone())
}

/// Runs `f` with `plan` as this thread's ambient session fault plan,
/// restoring the previous plan afterwards (also on panic/unwind).
///
/// This mirrors
/// [`with_session_transport`](crate::transport::with_session_transport):
/// the campaign executor wraps each trial in this scope so a
/// `fault = "..."` campaign setting reaches protocol code that never
/// mentions faults.
pub fn with_session_faults<R>(plan: &FaultPlan, f: impl FnOnce() -> R) -> R {
    struct Restore(FaultPlan);
    impl Drop for Restore {
        fn drop(&mut self) {
            SESSION_FAULTS.with(|cell| *cell.borrow_mut() = std::mem::take(&mut self.0));
        }
    }
    let prev = SESSION_FAULTS.with(|cell| std::mem::replace(&mut *cell.borrow_mut(), plan.clone()));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// The envelope: sequence + checksum around every message.
// ---------------------------------------------------------------------------

/// Wraps `msg` in the sequenced, checksummed envelope.
fn seal(seq: u32, msg: &Message) -> Message {
    let payload = msg.as_bytes();
    let bits = msg.len_bits() as u32;
    let crc = transport::crc32(&[&seq.to_le_bytes(), &bits.to_le_bytes(), payload]);
    let mut buf = Vec::with_capacity(ENVELOPE_BYTES + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&bits.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    let total_bits = buf.len() * 8;
    Message::from_raw_parts(buf, total_bits)
}

/// Unwraps an envelope, verifying shape and checksum.
fn open(envelope: &Message) -> Result<(u32, Message), String> {
    let buf = envelope.as_bytes();
    if !envelope.len_bits().is_multiple_of(8) || buf.len() < ENVELOPE_BYTES {
        return Err(format!(
            "envelope of {} bits is not a whole ≥{ENVELOPE_BYTES}-byte header",
            envelope.len_bits()
        ));
    }
    let seq = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let bits = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let want_crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let payload = &buf[ENVELOPE_BYTES..];
    if payload.len() != (bits as usize).div_ceil(8) {
        return Err(format!(
            "envelope claims {bits} payload bits but carries {} bytes",
            payload.len()
        ));
    }
    let got = transport::crc32(&[&buf[0..4], &buf[4..8], payload]);
    if got != want_crc {
        return Err(format!(
            "envelope checksum mismatch (want {want_crc:08x}, got {got:08x})"
        ));
    }
    Ok((
        seq,
        Message::from_raw_parts(payload.to_vec(), bits as usize),
    ))
}

/// A copy of `msg` with bit `pos` flipped.
fn flip_bit(msg: &Message, pos: usize) -> Message {
    let mut buf = msg.as_bytes().to_vec();
    buf[pos / 8] ^= 1 << (pos % 8);
    Message::from_raw_parts(buf, msg.len_bits())
}

// ---------------------------------------------------------------------------
// Short I/O adapters (below the frame codec).
// ---------------------------------------------------------------------------

/// Caps every read at `cap` bytes, counting each truncation as an
/// injected `short` fault.
struct ShortReader {
    inner: Box<dyn Read + Send>,
    cap: usize,
    injected: bichrome_obs::Counter,
}

impl Read for ShortReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.len() > self.cap {
            self.injected.inc();
            self.inner.read(&mut buf[..self.cap])
        } else {
            self.inner.read(buf)
        }
    }
}

/// Caps every write at `cap` bytes, counting each truncation as an
/// injected `short` fault.
struct ShortWriter {
    inner: Box<dyn Write + Send>,
    cap: usize,
    injected: bichrome_obs::Counter,
}

impl Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.len() > self.cap {
            self.injected.inc();
            self.inner.write(&buf[..self.cap])
        } else {
            self.inner.write(buf)
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// FaultyLink: the wrapper that executes a plan.
// ---------------------------------------------------------------------------

/// Cached observability handles, one set per faulty pair.
#[derive(Clone)]
struct FaultMetrics {
    injected_sever: bichrome_obs::Counter,
    injected_delay: bichrome_obs::Counter,
    injected_corrupt: bichrome_obs::Counter,
    injected_short: bichrome_obs::Counter,
    detected_corrupt: bichrome_obs::Counter,
    detected_duplicate: bichrome_obs::Counter,
}

impl FaultMetrics {
    fn new() -> FaultMetrics {
        let injected = |kind| {
            bichrome_obs::counter_labeled("bichrome_comm_faults_injected_total", &[("kind", kind)])
        };
        let detected = |kind| {
            bichrome_obs::counter_labeled("bichrome_comm_faults_detected_total", &[("kind", kind)])
        };
        FaultMetrics {
            injected_sever: injected("sever"),
            injected_delay: injected("delay"),
            injected_corrupt: injected("corrupt"),
            injected_short: injected("short"),
            detected_corrupt: detected("corrupt"),
            detected_duplicate: detected("duplicate"),
        }
    }
}

/// The reconnect rendezvous both halves share: after a sever, the
/// initiator parks the responder's replacement link half here.
struct Shared {
    kind: TransportKind,
    short_bytes: Option<usize>,
    metrics: FaultMetrics,
    slot: Mutex<Slot>,
    cv: Condvar,
}

#[derive(Default)]
struct Slot {
    waiting: Option<LinkBox>,
}

/// A connected base link pair for `kind`, with short-I/O adapters
/// interposed when the plan asks for them (stream transports only —
/// the in-process transport has no byte stream to cap).
fn base_pair(
    kind: TransportKind,
    short_bytes: Option<usize>,
    metrics: &FaultMetrics,
) -> io::Result<(LinkBox, LinkBox)> {
    let cap = match short_bytes {
        Some(cap) => cap,
        None => return kind.transport().pair(),
    };
    match transport::raw_stream_pair(kind)? {
        None => kind.transport().pair(),
        Some(((a_read, a_write), (b_read, b_write))) => {
            let shorten = |read, write| {
                FramedLink::new(
                    ShortReader {
                        inner: read,
                        cap,
                        injected: metrics.injected_short.clone(),
                    },
                    ShortWriter {
                        inner: write,
                        cap,
                        injected: metrics.injected_short.clone(),
                    },
                )
            };
            Ok((
                Box::new(shorten(a_read, a_write)),
                Box::new(shorten(b_read, b_write)),
            ))
        }
    }
}

/// A [`Link`] that executes a [`FaultPlan`] against a wrapped base
/// link and transparently recovers: corruption is detected by the
/// envelope checksum, retransmits are deduplicated by sequence
/// number, and severed connections are re-established with the last
/// in-flight message per direction retransmitted. See the
/// [module docs](self).
pub struct FaultyLink {
    base: LinkBox,
    /// The initiator (Alice) half fires sever/corrupt faults; the
    /// responder half waits out severs on the shared slot.
    initiator: bool,
    plan: FaultPlan,
    seed: u64,
    /// Logical messages sent so far (the plan's 1-based frame index
    /// space, per direction).
    sends: u64,
    send_seq: u32,
    recv_expect: u32,
    /// The most recently sent envelope — retransmitted after any
    /// reconnect, since at most one message per direction is in
    /// flight in a round-synchronous session.
    last_sent: Option<Message>,
    shared: Arc<Shared>,
}

impl FaultyLink {
    /// Initiator only: severs the live link and offers the peer a
    /// replacement.
    fn sever(&mut self) -> Result<(), TransportError> {
        let (mine, theirs) = base_pair(
            self.shared.kind,
            self.shared.short_bytes,
            &self.shared.metrics,
        )
        .map_err(|e| TransportError::Io(format!("reconnect after sever: {e}")))?;
        {
            let mut slot = self.shared.slot.lock().expect("slot lock");
            slot.waiting = Some(theirs);
            self.shared.cv.notify_all();
        }
        // Dropping the old half is the sever: the responder's next
        // link operation fails and sends it to the slot.
        self.base = mine;
        self.shared.metrics.injected_sever.inc();
        if let Some(prev) = self.last_sent.clone() {
            self.base.try_send(&prev)?;
        }
        Ok(())
    }

    /// Responder only: waits (bounded) for the initiator's
    /// replacement link, then retransmits this side's last envelope.
    fn await_reconnect(&mut self, cause: TransportError) -> Result<(), TransportError> {
        let deadline = Instant::now() + RECONNECT_WAIT;
        let mut slot = self.shared.slot.lock().expect("slot lock");
        loop {
            if let Some(link) = slot.waiting.take() {
                drop(slot);
                self.base = link;
                if let Some(prev) = self.last_sent.clone() {
                    self.base.try_send(&prev)?;
                }
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                // No replacement came: the peer is genuinely gone.
                return Err(cause);
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(slot, deadline - now)
                .expect("slot lock");
            slot = guard;
        }
    }

    /// Sends one envelope, riding out a sever on the responder side.
    fn send_envelope(&mut self, envelope: &Message) -> Result<(), TransportError> {
        match self.base.try_send(envelope) {
            Ok(()) => Ok(()),
            Err(e) if !self.initiator => {
                self.await_reconnect(e)?;
                self.base.try_send(envelope)
            }
            Err(e) => Err(e),
        }
    }
}

impl Link for FaultyLink {
    fn try_send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let k = self.sends + 1;
        if self.initiator && self.plan.severs.binary_search(&k).is_ok() {
            self.sever()?;
        }
        if self.plan.delay_ms > 0 {
            self.shared.metrics.injected_delay.inc();
            std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
        }
        let sealed = seal(self.send_seq, msg);
        if self.initiator && self.plan.corrupts.binary_search(&k).is_ok() {
            // One deterministic bit flip: CRC-32 detects every
            // single-bit error, so the copy can never be accepted.
            let pos = (splitmix64(self.seed ^ k) as usize) % (sealed.len_bits().max(1));
            self.shared.metrics.injected_corrupt.inc();
            self.base.try_send(&flip_bit(&sealed, pos))?;
        }
        self.send_envelope(&sealed)?;
        self.sends = k;
        self.send_seq = self.send_seq.wrapping_add(1);
        self.last_sent = Some(sealed);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Message, TransportError> {
        loop {
            let envelope = match self.base.try_recv() {
                Ok(envelope) => envelope,
                Err(e) if !self.initiator => {
                    self.await_reconnect(e)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match open(&envelope) {
                Err(_) => {
                    // Detected corruption: drop the bad copy — the
                    // clean retransmit is right behind it.
                    self.shared.metrics.detected_corrupt.inc();
                    continue;
                }
                Ok((seq, msg)) => {
                    if seq < self.recv_expect {
                        // A retransmit of something already
                        // delivered: deduplicate.
                        self.shared.metrics.detected_duplicate.inc();
                        continue;
                    }
                    if seq > self.recv_expect {
                        // Cannot happen with at most one in-flight
                        // message per direction; guard anyway.
                        return Err(TransportError::Corrupt(format!(
                            "sequence desync: got {seq}, expected {}",
                            self.recv_expect
                        )));
                    }
                    self.recv_expect += 1;
                    return Ok(msg);
                }
            }
        }
    }
}

/// A connected pair of fault-injecting link halves `(alice, bob)`
/// over `kind`, executing `plan` with corruption positions derived
/// deterministically from `seed`. Alice's half is the initiator:
/// sever/corrupt indices count *her* sends.
///
/// # Errors
///
/// Propagates OS resource failures setting up the base transport.
pub fn faulty_pair(
    kind: TransportKind,
    plan: &FaultPlan,
    seed: u64,
) -> io::Result<(LinkBox, LinkBox)> {
    let metrics = FaultMetrics::new();
    let (a, b) = base_pair(kind, plan.short_bytes, &metrics)?;
    let shared = Arc::new(Shared {
        kind,
        short_bytes: plan.short_bytes,
        metrics,
        slot: Mutex::new(Slot::default()),
        cv: Condvar::new(),
    });
    let half = |base, initiator, shared| FaultyLink {
        base,
        initiator,
        plan: plan.clone(),
        seed,
        sends: 0,
        send_seq: 0,
        recv_expect: 0,
        last_sent: None,
        shared,
    };
    Ok((
        Box::new(half(a, true, shared.clone())),
        Box::new(half(b, false, shared)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;

    fn msg(value: u64, width: usize) -> Message {
        let mut w = BitWriter::new();
        w.write_uint(value, width);
        w.finish()
    }

    #[test]
    fn plans_parse_and_render_canonically() {
        for (spec, canonical) in [
            ("none", "none"),
            ("", "none"),
            ("sever@3", "sever@3"),
            ("delay:2,sever@3", "sever@3,delay:2"),
            ("sever@5,sever@2,sever@5", "sever@2,sever@5"),
            ("short", "short:1"),
            ("short:4,corrupt@1", "corrupt@1,short:4"),
            (
                "corrupt@2,sever@1,delay:1,short:3",
                "sever@1,corrupt@2,delay:1,short:3",
            ),
        ] {
            let plan: FaultPlan = spec.parse().expect(spec);
            assert_eq!(plan.to_string(), canonical, "{spec}");
            let reparsed: FaultPlan = plan.to_string().parse().expect("canonical reparses");
            assert_eq!(reparsed, plan, "{spec}");
        }
        assert!("none".parse::<FaultPlan>().unwrap().is_noop());
        assert!(!"sever@1".parse::<FaultPlan>().unwrap().is_noop());
    }

    #[test]
    fn malformed_plans_are_described() {
        for (spec, needle) in [
            ("sever@zero", "frame index"),
            ("sever@0", "1-based"),
            ("corrupt@0", "1-based"),
            ("delay:fast", "milliseconds"),
            ("short:0", "≥ 1"),
            ("explode", "unknown fault clause"),
            ("sever@1,,delay:1", "unknown fault clause"),
        ] {
            let err = spec.parse::<FaultPlan>().expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn envelopes_round_trip_and_detect_every_single_bit_flip() {
        for (value, width) in [(0u64, 0usize), (1, 1), (0xBEEF, 16), (12345, 60)] {
            let original = if width == 0 {
                Message::empty()
            } else {
                msg(value, width)
            };
            let sealed = seal(7, &original);
            let (seq, opened) = open(&sealed).expect("clean envelope opens");
            assert_eq!(seq, 7);
            assert_eq!(opened, original);
            for bit in 0..sealed.len_bits() {
                let corrupted = flip_bit(&sealed, bit);
                assert!(
                    open(&corrupted).is_err(),
                    "bit {bit} of {width}-bit envelope silently accepted"
                );
            }
        }
    }

    #[test]
    fn ambient_fault_scopes_nest_and_restore() {
        assert!(session_faults().is_noop());
        let outer: FaultPlan = "sever@1".parse().unwrap();
        let inner: FaultPlan = "delay:3".parse().unwrap();
        with_session_faults(&outer, || {
            assert_eq!(session_faults(), outer);
            with_session_faults(&inner, || assert_eq!(session_faults(), inner));
            assert_eq!(session_faults(), outer, "inner scope restored");
        });
        assert!(session_faults().is_noop());
        let caught = std::panic::catch_unwind(|| with_session_faults(&outer, || panic!("boom")));
        assert!(caught.is_err());
        assert!(session_faults().is_noop(), "panicking scope restored");
    }

    /// Drives a two-round exchange over a faulty pair and asserts the
    /// payloads are delivered intact.
    fn exchange_survives(kind: TransportKind, plan: &FaultPlan, seed: u64) {
        let (mut alice, mut bob) = faulty_pair(kind, plan, seed).expect("pair");
        let handle = std::thread::spawn(move || {
            let got = bob.recv();
            assert_eq!(got.reader().read_uint(11), 1027, "bob got round 1");
            bob.send(&msg(2054, 12));
            let got = bob.recv();
            assert_eq!(got.reader().read_uint(5), 19, "bob got round 2");
            bob.send(&Message::empty());
        });
        alice.send(&msg(1027, 11));
        assert_eq!(alice.recv().reader().read_uint(12), 2054, "alice round 1");
        alice.send(&msg(19, 5));
        assert!(alice.recv().is_empty(), "alice round 2");
        handle.join().expect("bob ok");
    }

    #[test]
    fn every_fault_clause_lets_traffic_through_on_every_transport() {
        let plans = [
            "sever@1",
            "sever@2",
            "corrupt@1",
            "corrupt@2",
            "sever@1,corrupt@1",
            "sever@1,sever@2,corrupt@1,corrupt@2",
            "delay:1",
            "short:1",
            "short:3,sever@2",
        ];
        for kind in TransportKind::ALL {
            for spec in plans {
                let plan: FaultPlan = spec.parse().expect(spec);
                for seed in [0u64, 1, 99] {
                    exchange_survives(kind, &plan, seed);
                }
            }
        }
    }

    #[test]
    fn corruption_is_counted_as_injected_and_detected() {
        let detected = bichrome_obs::counter_labeled(
            "bichrome_comm_faults_detected_total",
            &[("kind", "corrupt")],
        );
        let injected = bichrome_obs::counter_labeled(
            "bichrome_comm_faults_injected_total",
            &[("kind", "corrupt")],
        );
        let (d0, i0) = (detected.get(), injected.get());
        let plan: FaultPlan = "corrupt@1,corrupt@2".parse().unwrap();
        exchange_survives(TransportKind::InProc, &plan, 4);
        assert_eq!(injected.get() - i0, 2, "two corrupt frames injected");
        assert_eq!(
            detected.get() - d0,
            2,
            "both were detected, neither delivered"
        );
    }

    #[test]
    fn severs_are_counted_and_recovered_from() {
        let injected = bichrome_obs::counter_labeled(
            "bichrome_comm_faults_injected_total",
            &[("kind", "sever")],
        );
        let before = injected.get();
        let plan: FaultPlan = "sever@1,sever@2".parse().unwrap();
        exchange_survives(TransportKind::Tcp, &plan, 11);
        assert_eq!(injected.get() - before, 2, "both severs fired");
    }

    #[test]
    fn dead_peer_with_faults_still_surfaces_as_an_error() {
        // Bob vanishes for real (no sever in flight): Alice's recv
        // must fail rather than wait forever — the reconnect slot only
        // ever helps the responder half.
        let plan: FaultPlan = "delay:1".parse().unwrap();
        let (mut alice, bob) = faulty_pair(TransportKind::InProc, &plan, 0).expect("pair");
        drop(bob);
        assert!(alice.try_recv().is_err(), "initiator sees the dead peer");
    }
}
