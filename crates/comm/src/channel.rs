//! The round-synchronous duplex link between the parties.

use crate::meter::Meter;
use crate::wire::Message;
use crate::Side;
use std::sync::mpsc::{Receiver, Sender};

/// How many yield-and-retry attempts [`Endpoint::exchange`] makes
/// before parking on the blocking receive.
const YIELD_ROUNDS: usize = 16;

/// One party's end of the two-party link.
///
/// The fundamental operation is [`Endpoint::exchange`]: both parties
/// send one message simultaneously and receive the other's — exactly
/// one *round* of the model (footnote 1 of the paper). One-directional
/// messages are exchanges where the other side sends
/// [`Message::empty`].
///
/// Protocols must be written so both parties perform the same number
/// of exchanges; a mismatch deadlocks (and is a protocol bug, not a
/// substrate bug).
#[derive(Debug)]
pub struct Endpoint {
    side: Side,
    tx: Sender<Message>,
    rx: Receiver<Message>,
    meter: Meter,
}

impl Endpoint {
    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    /// The shared meter (e.g. to name phases from protocol code).
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Sends `msg` and receives the peer's message for this round.
    ///
    /// Counts `msg.len_bits()` toward this side's sent bits and one
    /// round (rounds are counted once per exchange, from Alice's side).
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected (its thread panicked).
    pub fn exchange(&self, msg: Message) -> Message {
        self.meter.on_message(self.side, msg.len_bits() as u64);
        if self.side == Side::Alice {
            self.meter.on_round();
        }
        self.tx.send(msg).expect("peer hung up before send");
        // Cooperative fast path: the peer is almost always runnable
        // and about to answer, so try a few yield-to-peer handoffs
        // before the blocking receive parks this thread. On a single
        // core `yield_now` runs the peer immediately, making one
        // round cost one scheduler handoff instead of a futex
        // park/wake pair; on many cores the reply usually lands
        // during the first yields.
        for _ in 0..YIELD_ROUNDS {
            match self.rx.try_recv() {
                Ok(m) => return m,
                Err(std::sync::mpsc::TryRecvError::Empty) => std::thread::yield_now(),
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    panic!("peer hung up before reply")
                }
            }
        }
        self.rx.recv().expect("peer hung up before reply")
    }

    /// Sends `msg` expecting no payload back: sugar for an exchange
    /// where this side talks and the peer must send an empty message
    /// (asserted).
    ///
    /// # Panics
    ///
    /// Panics if the peer's simultaneous message is nonempty, or if the
    /// peer disconnected.
    pub fn send(&self, msg: Message) {
        let reply = self.exchange(msg);
        assert!(
            reply.is_empty(),
            "peer sent {} unexpected bits",
            reply.len_bits()
        );
    }

    /// Receives the peer's message while sending nothing.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected.
    pub fn recv(&self) -> Message {
        self.exchange(Message::empty())
    }
}

/// Creates a connected pair of endpoints sharing `meter`.
pub fn endpoint_pair(meter: Meter) -> (Endpoint, Endpoint) {
    let (a_tx, a_rx) = std::sync::mpsc::channel();
    let (b_tx, b_rx) = std::sync::mpsc::channel();
    let alice = Endpoint {
        side: Side::Alice,
        tx: a_tx,
        rx: b_rx,
        meter: meter.clone(),
    };
    let bob = Endpoint {
        side: Side::Bob,
        tx: b_tx,
        rx: a_rx,
        meter,
    };
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;

    #[test]
    fn exchange_swaps_messages_and_meters() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || {
            let mut w = BitWriter::new();
            w.write_uint(9, 4);
            let got = bob.exchange(w.finish());
            got.reader().read_uint(3)
        });
        let mut w = BitWriter::new();
        w.write_uint(5, 3);
        let got = alice.exchange(w.finish());
        assert_eq!(got.reader().read_uint(4), 9);
        assert_eq!(handle.join().expect("bob ok"), 5);
        let s = meter.snapshot();
        assert_eq!(s.bits_alice_to_bob, 3);
        assert_eq!(s.bits_bob_to_alice, 4);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn send_and_recv_are_one_round() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || bob.recv());
        let mut w = BitWriter::new();
        w.write_uint(1, 1);
        alice.send(w.finish());
        let got = handle.join().expect("bob ok");
        assert_eq!(got.len_bits(), 1);
        assert_eq!(meter.snapshot().rounds, 1);
        assert_eq!(meter.snapshot().total_bits(), 1);
    }

    #[test]
    fn sides_are_labelled() {
        let (alice, bob) = endpoint_pair(Meter::new());
        assert_eq!(alice.side(), Side::Alice);
        assert_eq!(bob.side(), Side::Bob);
        assert_eq!(alice.side().other(), Side::Bob);
    }

    #[test]
    fn empty_exchanges_cost_rounds_but_no_bits() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || {
            for _ in 0..3 {
                bob.exchange(Message::empty());
            }
        });
        for _ in 0..3 {
            alice.exchange(Message::empty());
        }
        handle.join().expect("bob ok");
        let s = meter.snapshot();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.total_bits(), 0);
    }
}
