//! The round-synchronous duplex link between the parties.

use crate::meter::Meter;
use crate::transport::{LinkBox, TransportKind};
use crate::wire::Message;
use crate::Side;
use std::cell::RefCell;

/// One party's end of the two-party link.
///
/// The fundamental operation is [`Endpoint::exchange`]: both parties
/// send one message simultaneously and receive the other's — exactly
/// one *round* of the model (footnote 1 of the paper). One-directional
/// messages are exchanges where the other side sends
/// [`Message::empty`].
///
/// The bytes underneath travel over whichever
/// [`Transport`](crate::transport::Transport) built the endpoint pair
/// (in-process channels by default; OS pipes or loopback TCP via
/// [`endpoint_pair_on`]). Metering happens here, *before* the message
/// reaches the link, so the recorded bits and rounds are identical
/// across transports.
///
/// Protocols must be written so both parties perform the same number
/// of exchanges; a mismatch deadlocks (and is a protocol bug, not a
/// substrate bug).
pub struct Endpoint {
    side: Side,
    link: RefCell<LinkBox>,
    meter: Meter,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("side", &self.side)
            .finish_non_exhaustive()
    }
}

impl Endpoint {
    /// Which side this endpoint belongs to.
    pub fn side(&self) -> Side {
        self.side
    }

    /// The shared meter (e.g. to name phases from protocol code).
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Sends `msg` and receives the peer's message for this round.
    ///
    /// Counts `msg.len_bits()` toward this side's sent bits and one
    /// round (rounds are counted once per exchange, from Alice's side).
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected (its thread panicked).
    pub fn exchange(&self, msg: Message) -> Message {
        self.meter.on_message(self.side, msg.len_bits() as u64);
        if self.side == Side::Alice {
            self.meter.on_round();
        }
        let mut link = self.link.borrow_mut();
        link.send(&msg);
        link.recv()
    }

    /// Sends `msg` expecting no payload back: sugar for an exchange
    /// where this side talks and the peer must send an empty message
    /// (asserted).
    ///
    /// # Panics
    ///
    /// Panics if the peer's simultaneous message is nonempty, or if the
    /// peer disconnected.
    pub fn send(&self, msg: Message) {
        let reply = self.exchange(msg);
        assert!(
            reply.is_empty(),
            "peer sent {} unexpected bits",
            reply.len_bits()
        );
    }

    /// Receives the peer's message while sending nothing.
    ///
    /// # Panics
    ///
    /// Panics if the peer disconnected.
    pub fn recv(&self) -> Message {
        self.exchange(Message::empty())
    }
}

/// Creates a connected pair of endpoints sharing `meter` over the
/// default in-process transport.
pub fn endpoint_pair(meter: Meter) -> (Endpoint, Endpoint) {
    endpoint_pair_on(TransportKind::InProc, meter)
}

/// Creates a connected pair of endpoints sharing `meter` over the
/// given transport.
///
/// # Panics
///
/// Panics if the transport cannot be set up (OS pipe / socket
/// resource failure).
pub fn endpoint_pair_on(kind: TransportKind, meter: Meter) -> (Endpoint, Endpoint) {
    let (a_link, b_link) = kind
        .transport()
        .pair()
        .unwrap_or_else(|e| panic!("cannot set up {kind} transport: {e}"));
    endpoint_pair_from_links(a_link, b_link, meter)
}

/// Creates a connected pair of endpoints over pre-built link halves —
/// the constructor the fault-injection layer uses to slide a
/// [`FaultyLink`](crate::fault::FaultyLink) pair under a session.
/// Metering is unchanged: it happens in [`Endpoint::exchange`] above
/// whatever links are supplied.
pub fn endpoint_pair_from_links(
    a_link: LinkBox,
    b_link: LinkBox,
    meter: Meter,
) -> (Endpoint, Endpoint) {
    let alice = Endpoint {
        side: Side::Alice,
        link: RefCell::new(a_link),
        meter: meter.clone(),
    };
    let bob = Endpoint {
        side: Side::Bob,
        link: RefCell::new(b_link),
        meter,
    };
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;

    #[test]
    fn exchange_swaps_messages_and_meters() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || {
            let mut w = BitWriter::new();
            w.write_uint(9, 4);
            let got = bob.exchange(w.finish());
            got.reader().read_uint(3)
        });
        let mut w = BitWriter::new();
        w.write_uint(5, 3);
        let got = alice.exchange(w.finish());
        assert_eq!(got.reader().read_uint(4), 9);
        assert_eq!(handle.join().expect("bob ok"), 5);
        let s = meter.snapshot();
        assert_eq!(s.bits_alice_to_bob, 3);
        assert_eq!(s.bits_bob_to_alice, 4);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn send_and_recv_are_one_round() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || bob.recv());
        let mut w = BitWriter::new();
        w.write_uint(1, 1);
        alice.send(w.finish());
        let got = handle.join().expect("bob ok");
        assert_eq!(got.len_bits(), 1);
        assert_eq!(meter.snapshot().rounds, 1);
        assert_eq!(meter.snapshot().total_bits(), 1);
    }

    #[test]
    fn sides_are_labelled() {
        let (alice, bob) = endpoint_pair(Meter::new());
        assert_eq!(alice.side(), Side::Alice);
        assert_eq!(bob.side(), Side::Bob);
        assert_eq!(alice.side().other(), Side::Bob);
    }

    #[test]
    fn empty_exchanges_cost_rounds_but_no_bits() {
        let meter = Meter::new();
        let (alice, bob) = endpoint_pair(meter.clone());
        let handle = std::thread::spawn(move || {
            for _ in 0..3 {
                bob.exchange(Message::empty());
            }
        });
        for _ in 0..3 {
            alice.exchange(Message::empty());
        }
        handle.join().expect("bob ok");
        let s = meter.snapshot();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.total_bits(), 0);
    }

    #[test]
    fn metering_is_identical_across_transports() {
        // The same exchange script must produce the same CommStats on
        // every transport: bits and rounds are counted above the link.
        let mut snapshots = Vec::new();
        for kind in TransportKind::ALL {
            let meter = Meter::new();
            let (alice, bob) = endpoint_pair_on(kind, meter.clone());
            let handle = std::thread::spawn(move || {
                let got = bob.recv();
                let x = got.reader().read_uint(11);
                let mut w = BitWriter::new();
                w.write_uint(x * 2, 12);
                bob.send(w.finish());
                bob.exchange(Message::empty());
            });
            let mut w = BitWriter::new();
            w.write_uint(1027, 11);
            alice.send(w.finish());
            assert_eq!(alice.recv().reader().read_uint(12), 2054, "{kind}");
            alice.exchange(Message::empty());
            handle.join().expect("bob ok");
            snapshots.push(meter.snapshot());
        }
        assert_eq!(snapshots[0], snapshots[1], "inproc == pipe");
        assert_eq!(snapshots[0], snapshots[2], "inproc == tcp");
        assert_eq!(snapshots[0].rounds, 3);
        assert_eq!(snapshots[0].total_bits(), 23);
    }
}
