//! Bit-exact message encoding.
//!
//! The communication model counts *bits*. [`BitWriter`] packs bits into
//! a byte buffer and remembers the exact bit length; [`Message`] is the
//! immutable result shipped over the channel; [`BitReader`] unpacks.
//!
//! Protocol messages in this workspace are *self-synchronized*: both
//! parties can compute every field's width from shared public state
//! (the round number, public randomness, previously exchanged bits),
//! so no framing or length prefixes are needed beyond what the
//! protocol itself specifies — the meter counts exactly the paper's
//! bits.

use std::sync::Arc;

/// Number of bits needed to encode any value in `0..=max_value`.
///
/// `width_for(0) == 0`: a value known to be zero needs no bits.
///
/// # Example
///
/// ```
/// use bichrome_comm::wire::width_for;
/// assert_eq!(width_for(0), 0);
/// assert_eq!(width_for(1), 1);
/// assert_eq!(width_for(7), 3);
/// assert_eq!(width_for(8), 4);
/// ```
#[inline]
pub fn width_for(max_value: u64) -> usize {
    (64 - max_value.leading_zeros()) as usize
}

/// An append-only bit buffer.
///
/// # Example
///
/// ```
/// use bichrome_comm::wire::BitWriter;
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_uint(5, 3);
/// let msg = w.finish();
/// assert_eq!(msg.len_bits(), 4);
/// let mut r = msg.reader();
/// assert!(r.read_bit());
/// assert_eq!(r.read_uint(3), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        let byte = self.len_bits / 8;
        let off = self.len_bits % 8;
        if off == 0 {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 1 << off;
        }
        self.len_bits += 1;
    }

    /// Appends `width` bits of `value`, least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn write_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in 0..width {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends an Elias-gamma-style variable-length nonnegative
    /// integer: a unary length (`⌊log2(v+1)⌋` zeros then a one)
    /// followed by the remainder bits. Costs `2⌊log2(v+1)⌋ + 1` bits.
    ///
    /// Use when neither party can bound the value from public state
    /// (e.g. "how many colors follow"). The cost is part of the
    /// protocol and is metered.
    pub fn write_gamma(&mut self, value: u64) {
        let v = value + 1;
        let width = width_for(v) - 1;
        for _ in 0..width {
            self.write_bit(false);
        }
        self.write_bit(true);
        self.write_uint(v & !(1u64 << width), width);
    }

    /// Appends every bit of `bits` in order.
    pub fn write_bools(&mut self, bits: &[bool]) {
        for &b in bits {
            self.write_bit(b);
        }
    }

    /// Appends every bit of `other` in order — bit-level
    /// concatenation, so independently built per-chunk writers can be
    /// stitched into one round message whose bits are identical to a
    /// single sequential writer.
    pub fn append(&mut self, other: &BitWriter) {
        if self.len_bits.is_multiple_of(8) {
            // Byte-aligned fast path: splice the raw buffer.
            self.buf.extend_from_slice(&other.buf);
            self.len_bits += other.len_bits;
        } else {
            for i in 0..other.len_bits {
                self.write_bit((other.buf[i / 8] >> (i % 8)) & 1 == 1);
            }
        }
    }

    /// Freezes into an immutable [`Message`].
    pub fn finish(self) -> Message {
        Message {
            buf: Arc::from(self.buf),
            len_bits: self.len_bits,
        }
    }
}

/// An immutable bit message, cheap to clone (ref-counted buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    buf: Arc<[u8]>,
    len_bits: usize,
}

impl Default for Message {
    fn default() -> Self {
        Message {
            buf: Arc::from(Vec::new()),
            len_bits: 0,
        }
    }
}

impl Message {
    /// The empty message (zero bits).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Exact length in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Whether the message carries zero bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// A cursor for reading the message from the start.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader {
            buf: &self.buf,
            len_bits: self.len_bits,
            pos: 0,
        }
    }

    /// The packed payload bytes (LSB-first within each byte, spare
    /// high bits of the last byte zero). For byte-stream transports;
    /// protocol code reads bits via [`Message::reader`].
    pub(crate) fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuilds a message from framed payload bytes and its exact bit
    /// length — the decode half of a byte-stream transport.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not exactly `ceil(len_bits / 8)` bytes.
    pub(crate) fn from_raw_parts(buf: Vec<u8>, len_bits: usize) -> Message {
        assert_eq!(
            buf.len(),
            len_bits.div_ceil(8),
            "payload byte count must match the framed bit length"
        );
        Message {
            buf: Arc::from(buf),
            len_bits,
        }
    }
}

impl From<BitWriter> for Message {
    fn from(w: BitWriter) -> Self {
        w.finish()
    }
}

/// A cursor over a [`Message`].
///
/// Reads past the end panic — protocols in this workspace always know
/// exactly how many bits to expect, so an over-read is a bug.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    len_bits: usize,
    pos: usize,
}

impl BitReader<'_> {
    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics on reading past the end.
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.len_bits, "bit read past end of message");
        let bit = (self.buf[self.pos / 8] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        bit
    }

    /// Reads `width` bits as an unsigned integer (LSB first).
    ///
    /// # Panics
    ///
    /// Panics on reading past the end or `width > 64`.
    pub fn read_uint(&mut self, width: usize) -> u64 {
        assert!(width <= 64, "width {width} exceeds u64");
        let mut v = 0u64;
        for i in 0..width {
            if self.read_bit() {
                v |= 1 << i;
            }
        }
        v
    }

    /// Reads a [`BitWriter::write_gamma`]-encoded integer.
    ///
    /// # Panics
    ///
    /// Panics on malformed input or reading past the end.
    pub fn read_gamma(&mut self) -> u64 {
        let mut width = 0usize;
        while !self.read_bit() {
            width += 1;
            assert!(width <= 64, "malformed gamma code");
        }
        let rest = self.read_uint(width);
        ((1u64 << width) | rest) - 1
    }

    /// Reads `count` bits into a vector.
    pub fn read_bools(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.read_bit()).collect()
    }

    /// Reads `count` bits into `out` (cleared first) — the
    /// allocation-free sibling of [`BitReader::read_bools`].
    pub fn read_bools_into(&mut self, count: usize, out: &mut Vec<bool>) {
        out.clear();
        out.extend((0..count).map(|_| self.read_bit()));
    }

    /// Advances the cursor by `count` bits without decoding them.
    ///
    /// Lets per-chunk readers seek to their own region of a stitched
    /// round message (the chunk's offset is the sum of the earlier
    /// chunks' write lengths).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bits remain.
    pub fn skip(&mut self, count: usize) {
        assert!(count <= self.remaining(), "bit skip past end of message");
        self.pos += count;
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_boundaries() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 3);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_bits_and_uints() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_uint(0b1011, 4);
        w.write_uint(12345, 14);
        w.write_uint(0, 0); // zero-width write is a no-op
        let msg = w.finish();
        assert_eq!(msg.len_bits(), 20);
        let mut r = msg.reader();
        assert!(r.read_bit());
        assert!(!r.read_bit());
        assert_eq!(r.read_uint(4), 0b1011);
        assert_eq!(r.read_uint(14), 12345);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_gamma() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1023, 1024, 1_000_000] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let msg = w.finish();
            assert_eq!(msg.reader().read_gamma(), v, "gamma roundtrip of {v}");
        }
    }

    #[test]
    fn gamma_cost_is_logarithmic() {
        let mut w = BitWriter::new();
        w.write_gamma(0);
        assert_eq!(w.len_bits(), 1);
        let mut w = BitWriter::new();
        w.write_gamma(6); // v+1 = 7, width 2 -> 2+1+2 = 5 bits
        assert_eq!(w.len_bits(), 5);
    }

    #[test]
    fn roundtrip_bools() {
        let bits = vec![true, true, false, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        w.write_bools(&bits);
        let msg = w.finish();
        assert_eq!(msg.reader().read_bools(bits.len()), bits);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let msg = Message::empty();
        msg.reader().read_bit();
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_uint(8, 3);
    }

    #[test]
    fn empty_message() {
        let m = Message::empty();
        assert!(m.is_empty());
        assert_eq!(m.len_bits(), 0);
        assert!(BitWriter::new().is_empty());
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write_uint(u64::MAX, 64);
        let msg = w.finish();
        assert_eq!(msg.reader().read_uint(64), u64::MAX);
    }

    #[test]
    fn append_matches_sequential_writes() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xA44E17D);
        for _ in 0..200 {
            // Build one sequential writer and a chunked set of
            // writers over the same field script; stitching the
            // chunks must reproduce the sequential bits exactly,
            // whatever the alignment at each seam.
            let chunks = rng.gen_range(1..5usize);
            let mut seq = BitWriter::new();
            let mut parts: Vec<BitWriter> = Vec::new();
            for _ in 0..chunks {
                let mut part = BitWriter::new();
                for _ in 0..rng.gen_range(0..20usize) {
                    let width = rng.gen_range(0..=64usize);
                    let value = if width == 0 {
                        0
                    } else if width == 64 {
                        rng.gen()
                    } else {
                        rng.gen_range(0..(1u64 << width))
                    };
                    seq.write_uint(value, width);
                    part.write_uint(value, width);
                }
                parts.push(part);
            }
            let mut stitched = BitWriter::new();
            for part in &parts {
                stitched.append(part);
            }
            assert_eq!(stitched.len_bits(), seq.len_bits());
            assert_eq!(stitched.finish(), seq.finish());
        }
    }

    #[test]
    fn skip_positions_reader_at_chunk_offsets() {
        let mut w = BitWriter::new();
        w.write_uint(0b101, 3);
        w.write_uint(0xBEEF, 16);
        w.write_uint(7, 3);
        let msg = w.finish();
        let mut r = msg.reader();
        r.skip(3);
        assert_eq!(r.position(), 3);
        assert_eq!(r.read_uint(16), 0xBEEF);
        let mut r2 = msg.reader();
        r2.skip(19);
        assert_eq!(r2.read_uint(3), 7);
        assert_eq!(r2.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn skip_past_end_panics() {
        let mut w = BitWriter::new();
        w.write_uint(1, 2);
        let msg = w.finish();
        msg.reader().skip(3);
    }

    #[test]
    fn read_bools_into_reuses_buffer() {
        let bits = vec![true, false, true, true, false];
        let mut w = BitWriter::new();
        w.write_bools(&bits);
        let msg = w.finish();
        let mut out = vec![true; 64];
        msg.reader().read_bools_into(bits.len(), &mut out);
        assert_eq!(out, bits);
    }

    #[test]
    fn randomized_uint_width_roundtrips() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xB17_B17);
        for _ in 0..500 {
            let count = rng.gen_range(0..12usize);
            let fields: Vec<(u64, usize)> = (0..count)
                .map(|_| {
                    let width = rng.gen_range(0..=64usize);
                    let value = if width == 0 {
                        0
                    } else if width == 64 {
                        rng.gen()
                    } else {
                        rng.gen_range(0..(1u64 << width))
                    };
                    (value, width)
                })
                .collect();
            let mut w = BitWriter::new();
            for &(v, width) in &fields {
                w.write_uint(v, width);
            }
            let expected_bits: usize = fields.iter().map(|&(_, w)| w).sum();
            let msg = w.finish();
            assert_eq!(msg.len_bits(), expected_bits, "bit accounting is exact");
            let mut r = msg.reader();
            for &(v, width) in &fields {
                assert_eq!(r.read_uint(width), v, "width {width}");
            }
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn randomized_bit_sequence_roundtrips() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xB001);
        for _ in 0..200 {
            let len = rng.gen_range(0..300usize);
            let bits: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
            let mut w = BitWriter::new();
            w.write_bools(&bits);
            let msg = w.finish();
            assert_eq!(msg.len_bits(), bits.len());
            assert_eq!(msg.is_empty(), bits.is_empty());
            assert_eq!(msg.reader().read_bools(bits.len()), bits);
        }
    }

    #[test]
    fn randomized_mixed_fields_with_gamma() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0x6A77A);
        for _ in 0..200 {
            // Interleave bits, uints, and gamma codes; empty messages
            // occur when count == 0.
            let count = rng.gen_range(0..10usize);
            let mut script: Vec<(u8, u64, usize)> = Vec::new();
            for _ in 0..count {
                match rng.gen_range(0..3u8) {
                    0 => script.push((0, rng.gen::<u64>() & 1, 1)),
                    1 => {
                        let width = rng.gen_range(1..=32usize);
                        script.push((1, rng.gen_range(0..(1u64 << width)), width));
                    }
                    _ => script.push((2, rng.gen_range(0..1_000_000u64), 0)),
                }
            }
            let mut w = BitWriter::new();
            for &(kind, v, width) in &script {
                match kind {
                    0 => w.write_bit(v == 1),
                    1 => w.write_uint(v, width),
                    _ => w.write_gamma(v),
                }
            }
            let msg = w.finish();
            if script.is_empty() {
                assert!(msg.is_empty());
            }
            let mut r = msg.reader();
            for &(kind, v, width) in &script {
                match kind {
                    0 => assert_eq!(r.read_bit(), v == 1),
                    1 => assert_eq!(r.read_uint(width), v),
                    _ => assert_eq!(r.read_gamma(), v),
                }
            }
            assert_eq!(r.remaining(), 0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One field of a randomly composed message.
    #[derive(Debug, Clone)]
    enum Field {
        Bit(bool),
        Uint(u64, usize),
        Gamma(u64),
    }

    fn arb_field() -> impl Strategy<Value = Field> {
        prop_oneof![
            any::<bool>().prop_map(Field::Bit),
            (0usize..=64).prop_flat_map(|w| {
                let max = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                (0..=max).prop_map(move |v| Field::Uint(v, w))
            }),
            (0u64..1_000_000).prop_map(Field::Gamma),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn arbitrary_field_sequences_roundtrip(fields in proptest::collection::vec(arb_field(), 0..40)) {
            let mut w = BitWriter::new();
            for f in &fields {
                match f {
                    Field::Bit(b) => w.write_bit(*b),
                    Field::Uint(v, width) => w.write_uint(*v, *width),
                    Field::Gamma(v) => w.write_gamma(*v),
                }
            }
            let msg = w.finish();
            let mut r = msg.reader();
            for f in &fields {
                match f {
                    Field::Bit(b) => prop_assert_eq!(r.read_bit(), *b),
                    Field::Uint(v, width) => prop_assert_eq!(r.read_uint(*width), *v),
                    Field::Gamma(v) => prop_assert_eq!(r.read_gamma(), *v),
                }
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn bit_length_is_exact(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut w = BitWriter::new();
            w.write_bools(&bits);
            let msg = w.finish();
            prop_assert_eq!(msg.len_bits(), bits.len());
            prop_assert_eq!(msg.reader().read_bools(bits.len()), bits);
        }

        #[test]
        fn gamma_cost_formula(v in 0u64..u64::MAX / 4) {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let expected = 2 * (width_for(v + 1) - 1) + 1;
            prop_assert_eq!(w.len_bits(), expected);
        }

        #[test]
        fn width_for_is_minimal(v in 1u64..u64::MAX / 2) {
            let w = width_for(v);
            prop_assert!(v < (1u64 << w));
            prop_assert!(v >= (1u64 << (w - 1)));
        }
    }
}
