//! Public and private randomness.
//!
//! Both parties hold the same public seed and derive identical random
//! streams from it without communicating — this is the model's
//! public/shared randomness (§3.1). [`PublicCoin::stream`] namespaces
//! the randomness (per vertex, per iteration, ...) so Alice's and
//! Bob's threads sample identical values in whatever order their code
//! reaches them, with no cross-thread synchronization.
//!
//! Newman's theorem \[New91\] converts any public-coin protocol into a
//! private-coin one at an additive `O(log n + log(1/δ))` bits; we note
//! this in the docs and keep the public-coin accounting (cost 0), as
//! the paper does.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared public randomness.
///
/// Two `PublicCoin`s built from the same seed produce identical
/// streams for identical stream ids.
///
/// # Example
///
/// ```
/// use bichrome_comm::PublicCoin;
/// use rand::Rng;
///
/// let alice = PublicCoin::new(7);
/// let bob = PublicCoin::new(7);
/// let a: u64 = alice.stream(&[1, 2]).gen();
/// let b: u64 = bob.stream(&[1, 2]).gen();
/// assert_eq!(a, b);
/// let c: u64 = bob.stream(&[1, 3]).gen();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicCoin {
    seed: u64,
}

/// SplitMix64 finalizer — a high-quality 64-bit mixer used to fold
/// stream ids into the seed (and, in the fault layer, to derive
/// deterministic corruption positions and backoff jitter).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PublicCoin {
    /// A public coin from a shared seed.
    pub fn new(seed: u64) -> Self {
        PublicCoin { seed }
    }

    /// The shared seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for the given stream id path.
    ///
    /// Different paths give independent-looking streams; the same path
    /// always gives the same stream. Conventionally the first element
    /// identifies the protocol component and later elements identify
    /// iteration/vertex.
    pub fn stream(&self, ids: &[u64]) -> StdRng {
        let mut state = splitmix64(self.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        for (i, &id) in ids.iter().enumerate() {
            state = splitmix64(
                state
                    ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64 + 1),
            );
        }
        StdRng::seed_from_u64(state)
    }

    /// Derives a sub-coin: a public coin whose streams are independent
    /// of the parent's for distinct labels.
    pub fn subcoin(&self, label: u64) -> PublicCoin {
        PublicCoin {
            seed: splitmix64(self.seed ^ splitmix64(label)),
        }
    }
}

/// A private RNG for one party, seeded independently of the public
/// coin.
pub fn private_rng(seed: u64, side_salt: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(side_salt ^ 0x0DD_BA11)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_path_same_stream() {
        let a = PublicCoin::new(123);
        let b = PublicCoin::new(123);
        let xs: Vec<u32> = a
            .stream(&[4, 5, 6])
            .sample_iter(rand::distributions::Standard)
            .take(10)
            .collect();
        let ys: Vec<u32> = b
            .stream(&[4, 5, 6])
            .sample_iter(rand::distributions::Standard)
            .take(10)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_paths_differ() {
        let c = PublicCoin::new(123);
        let x: u64 = c.stream(&[1]).gen();
        let y: u64 = c.stream(&[2]).gen();
        let z: u64 = c.stream(&[1, 0]).gen();
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn different_seeds_differ() {
        let x: u64 = PublicCoin::new(1).stream(&[0]).gen();
        let y: u64 = PublicCoin::new(2).stream(&[0]).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn path_order_matters() {
        let c = PublicCoin::new(9);
        let x: u64 = c.stream(&[1, 2]).gen();
        let y: u64 = c.stream(&[2, 1]).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn subcoin_is_deterministic_and_distinct() {
        let c = PublicCoin::new(77);
        assert_eq!(c.subcoin(3), c.subcoin(3));
        assert_ne!(c.subcoin(3), c.subcoin(4));
        let x: u64 = c.subcoin(3).stream(&[0]).gen();
        let y: u64 = c.stream(&[0]).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn private_rngs_disagree_across_salts() {
        let x: u64 = private_rng(5, 1).gen();
        let y: u64 = private_rng(5, 2).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn empty_path_is_valid() {
        let c = PublicCoin::new(0);
        let x: u64 = c.stream(&[]).gen();
        let y: u64 = c.stream(&[]).gen();
        assert_eq!(x, y);
    }
}
