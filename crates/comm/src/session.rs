//! Running both parties on two OS threads.

use crate::channel::{endpoint_pair_from_links, endpoint_pair_on, Endpoint};
use crate::coin::PublicCoin;
use crate::fault;
use crate::meter::{CommStats, Meter};
use crate::transport::{self, TransportKind};

/// Everything a party's protocol code receives: its channel endpoint,
/// the shared public coin, and its intra-trial thread budget.
#[derive(Debug)]
pub struct PartyCtx {
    /// This party's end of the link.
    pub endpoint: Endpoint,
    /// The shared public randomness.
    pub coin: PublicCoin,
    /// How many OS threads this party may use for its own compute
    /// (≥ 1). Half the trial's ambient [`crate::budget`] — the two
    /// parties run concurrently, so each gets half. Purely advisory
    /// capacity: protocol output must be bit-identical at any value.
    pub threads: usize,
}

/// Runs Alice's and Bob's closures on two threads connected by a
/// round-synchronous channel, with shared public randomness derived
/// from `seed`.
///
/// The wire between the parties is this thread's ambient session
/// transport — in-process channels unless the caller is inside a
/// [`transport::with_session_transport`] scope. Use
/// [`run_two_party_ctx_on`] to name the transport explicitly.
///
/// Returns both outputs and the communication statistics.
///
/// # Panics
///
/// Propagates a panic from either party's thread.
///
/// # Example
///
/// ```
/// use bichrome_comm::session::run_two_party_ctx;
/// use rand::Rng;
///
/// // Both parties sample the same public random number for free.
/// let (a, b, stats) = run_two_party_ctx(9, |ctx| {
///     ctx.coin.stream(&[0]).gen::<u32>()
/// }, |ctx| {
///     ctx.coin.stream(&[0]).gen::<u32>()
/// });
/// assert_eq!(a, b);
/// assert_eq!(stats.total_bits(), 0);
/// ```
pub fn run_two_party_ctx<RA, RB>(
    seed: u64,
    alice: impl FnOnce(PartyCtx) -> RA + Send,
    bob: impl FnOnce(PartyCtx) -> RB + Send,
) -> (RA, RB, CommStats)
where
    RA: Send,
    RB: Send,
{
    run_two_party_ctx_on(transport::session_transport(), seed, alice, bob)
}

/// Like [`run_two_party_ctx`] but over an explicitly chosen
/// transport, ignoring the ambient default.
///
/// # Panics
///
/// Propagates a panic from either party's thread, and panics if the
/// transport cannot be set up (OS resource failure).
pub fn run_two_party_ctx_on<RA, RB>(
    kind: TransportKind,
    seed: u64,
    alice: impl FnOnce(PartyCtx) -> RA + Send,
    bob: impl FnOnce(PartyCtx) -> RB + Send,
) -> (RA, RB, CommStats)
where
    RA: Send,
    RB: Send,
{
    let meter = Meter::new();
    // An ambient fault plan slides a FaultyLink pair under the
    // endpoints; metering sits above either way, so CommStats (and
    // every report derived from them) are identical with faults on
    // or off. Corruption positions derive from the trial seed, so
    // the injected faults are as reproducible as the trial itself.
    let plan = fault::session_faults();
    let (a_ep, b_ep) = if plan.is_noop() {
        endpoint_pair_on(kind, meter.clone())
    } else {
        let (a_link, b_link) = fault::faulty_pair(kind, &plan, seed)
            .unwrap_or_else(|e| panic!("cannot set up faulty {kind} transport: {e}"));
        endpoint_pair_from_links(a_link, b_link, meter.clone())
    };
    let coin = PublicCoin::new(seed);
    // The trial's budget is read on the *calling* thread (thread-locals
    // don't cross into Bob's spawned thread) and split between the two
    // parties, which run concurrently.
    let per_party = (crate::budget::intra_budget() / 2).max(1);
    let a_ctx = PartyCtx {
        endpoint: a_ep,
        coin,
        threads: per_party,
    };
    let b_ctx = PartyCtx {
        endpoint: b_ep,
        coin,
        threads: per_party,
    };
    // Only Bob gets a fresh thread; Alice runs on the calling worker.
    // This halves the per-session spawn cost, which matters when the
    // executor runs thousands of short trials. If Alice panics, the
    // scope joins Bob (his next channel op sees the hangup and
    // panics too) and then propagates Alice's panic.
    let (ra, rb) = std::thread::scope(|s| {
        let hb = s.spawn(move || bob(b_ctx));
        let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || alice(a_ctx)));
        let rb = hb.join();
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(p), _) | (_, Err(p)) => std::panic::resume_unwind(p),
        }
    });
    (ra, rb, meter.snapshot())
}

/// Like [`run_two_party_ctx`] but hands each closure only the
/// [`Endpoint`], for protocols that need no randomness.
pub fn run_two_party<RA, RB>(
    seed: u64,
    alice: impl FnOnce(Endpoint) -> RA + Send,
    bob: impl FnOnce(Endpoint) -> RB + Send,
) -> (RA, RB, CommStats)
where
    RA: Send,
    RB: Send,
{
    run_two_party_ctx(seed, |ctx| alice(ctx.endpoint), |ctx| bob(ctx.endpoint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::BitWriter;

    #[test]
    fn two_party_ping_pong() {
        let (a, b, stats) = run_two_party(
            0,
            |ep| {
                let mut w = BitWriter::new();
                w.write_uint(42, 6);
                ep.send(w.finish()); // round 1: Alice talks
                let reply = ep.recv(); // round 2: Bob talks
                reply.reader().read_uint(7)
            },
            |ep| {
                let got = ep.recv();
                let x = got.reader().read_uint(6);
                let mut w = BitWriter::new();
                w.write_uint(x + 1, 7);
                ep.send(w.finish());
                x
            },
        );
        assert_eq!(a, 43);
        assert_eq!(b, 42);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.total_bits(), 13);
    }

    #[test]
    fn public_coin_agrees_across_threads() {
        use rand::Rng;
        let (a, b, stats) = run_two_party_ctx(
            7,
            |ctx| ctx.coin.stream(&[3, 1]).gen::<u64>(),
            |ctx| ctx.coin.stream(&[3, 1]).gen::<u64>(),
        );
        assert_eq!(a, b);
        assert_eq!(stats.total_bits(), 0);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    #[should_panic]
    fn party_panic_propagates() {
        let _ = run_two_party(0, |_ep| panic!("alice exploded"), |_ep| ());
    }

    #[test]
    fn outputs_can_differ_in_type() {
        let (a, b, _) = run_two_party(0, |_| "alice", |_| 5usize);
        assert_eq!(a, "alice");
        assert_eq!(b, 5);
    }

    #[test]
    fn sessions_report_identical_stats_on_every_transport() {
        fn ping_pong(kind: TransportKind) -> (u64, CommStats) {
            let (a, _, stats) = run_two_party_ctx_on(
                kind,
                11,
                |ctx| {
                    let mut w = BitWriter::new();
                    w.write_uint(99, 7);
                    ctx.endpoint.send(w.finish());
                    ctx.endpoint.recv().reader().read_uint(8)
                },
                |ctx| {
                    let x = ctx.endpoint.recv().reader().read_uint(7);
                    let mut w = BitWriter::new();
                    w.write_uint(x + 1, 8);
                    ctx.endpoint.send(w.finish());
                },
            );
            (a, stats)
        }
        let baseline = ping_pong(TransportKind::InProc);
        assert_eq!(baseline.0, 100);
        assert_eq!(baseline.1.rounds, 2);
        assert_eq!(baseline.1.total_bits(), 15);
        for kind in [TransportKind::Pipe, TransportKind::Tcp] {
            assert_eq!(ping_pong(kind), baseline, "{kind}");
        }
    }

    #[test]
    fn ambient_transport_scope_reaches_plain_sessions() {
        use crate::transport::with_session_transport;
        // A session started inside the scope uses the scoped
        // transport; the observable contract (outputs, stats) is
        // unchanged, which is exactly what the campaign runner relies
        // on when it wraps trials in this scope.
        let (a, b, stats) = with_session_transport(TransportKind::Tcp, || {
            run_two_party(
                3,
                |ep| {
                    let mut w = BitWriter::new();
                    w.write_uint(6, 3);
                    ep.send(w.finish());
                },
                |ep| ep.recv().reader().read_uint(3),
            )
        });
        assert_eq!((a, b), ((), 6));
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.total_bits(), 3);
    }
}
