//! Vertex and edge coloring containers and validators.
//!
//! Validators in this module are the ground truth the entire workspace
//! tests against: a protocol's output is correct exactly when the
//! corresponding `validate_*` function returns `Ok`.

use crate::graph::{Edge, EdgeId, Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A color index.
///
/// Palettes are sets of `ColorId`s; the paper's palette `[Δ+1]` maps to
/// `ColorId(0) ..= ColorId(Δ)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ColorId(pub u32);

impl ColorId {
    /// The color index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ColorId {
    fn from(i: u32) -> Self {
        ColorId(i)
    }
}

/// A (possibly partial) vertex coloring of an `n`-vertex graph.
///
/// # Example
///
/// ```
/// use bichrome_graph::coloring::{ColorId, VertexColoring};
/// use bichrome_graph::VertexId;
///
/// let mut c = VertexColoring::new(3);
/// c.set(VertexId(0), ColorId(2));
/// assert_eq!(c.get(VertexId(0)), Some(ColorId(2)));
/// assert_eq!(c.get(VertexId(1)), None);
/// assert_eq!(c.num_colored(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexColoring {
    colors: Vec<Option<ColorId>>,
}

impl VertexColoring {
    /// An all-uncolored coloring of `n` vertices.
    pub fn new(n: usize) -> Self {
        VertexColoring {
            colors: vec![None; n],
        }
    }

    /// Number of vertices the coloring is over.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of `v`, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<ColorId> {
        self.colors[v.index()]
    }

    /// Assigns color `c` to `v`, returning the previous color if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set(&mut self, v: VertexId, c: ColorId) -> Option<ColorId> {
        self.colors[v.index()].replace(c)
    }

    /// Removes the color of `v`, returning it.
    pub fn clear(&mut self, v: VertexId) -> Option<ColorId> {
        self.colors[v.index()].take()
    }

    /// Whether `v` has been assigned a color.
    #[inline]
    pub fn is_colored(&self, v: VertexId) -> bool {
        self.colors[v.index()].is_some()
    }

    /// Number of vertices with an assigned color.
    pub fn num_colored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every vertex is colored.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(|c| c.is_some())
    }

    /// The uncolored vertices, in increasing order.
    pub fn uncolored_vertices(&self) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Largest color index used, if any vertex is colored.
    pub fn max_color(&self) -> Option<ColorId> {
        self.colors.iter().flatten().copied().max()
    }

    /// Number of distinct colors used.
    pub fn num_distinct_colors(&self) -> usize {
        let mut used: Vec<ColorId> = self.colors.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }
}

/// The dense-slot sentinel for "no color assigned".
const UNCOLORED: u32 = u32::MAX;

/// The shared zero-length [`EdgeId`] index used by colorings created
/// without a graph, so `EdgeColoring::new()` never allocates.
fn empty_index() -> Arc<[Edge]> {
    static EMPTY: OnceLock<Arc<[Edge]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Vec::new().into()))
}

/// A (possibly partial) edge coloring.
///
/// Colors live in a *dense* `Vec` indexed by [`EdgeId`] over the edge
/// list of the graph the coloring was created for (see
/// [`EdgeColoring::dense_for`]), with sentinel slots for uncolored
/// edges — the trial hot path (protocol rounds, validators)
/// never hashes. Edges *outside* that index (e.g. another party's
/// edges merged in, or anything `set` on a [`EdgeColoring::new`]
/// coloring, which has an empty index) spill into a sorted side map,
/// so the [`Edge`]-keyed API keeps working unchanged for every
/// caller.
///
/// [`iter`](EdgeColoring::iter) yields pairs in **ascending edge
/// order** — deterministic, unlike the hash-keyed representation this
/// replaced.
///
/// # Example
///
/// ```
/// use bichrome_graph::coloring::{ColorId, EdgeColoring};
/// use bichrome_graph::{gen, Edge, EdgeId, VertexId};
///
/// // Edge-keyed, index-free usage (everything spills to the side map):
/// let mut c = EdgeColoring::new();
/// let e = Edge::new(VertexId(0), VertexId(1));
/// c.set(e, ColorId(0));
/// assert_eq!(c.get(e), Some(ColorId(0)));
///
/// // Dense, EdgeId-keyed usage over a graph's edge list:
/// let g = gen::cycle(4);
/// let mut c = EdgeColoring::dense_for(&g);
/// c.set_id(EdgeId(2), ColorId(7));
/// assert_eq!(c.get(g.edge(EdgeId(2))), Some(ColorId(7)));
/// ```
#[derive(Clone)]
pub struct EdgeColoring {
    /// The [`EdgeId`] space: a sorted edge list shared with the graph
    /// this coloring was created for (empty for `new()`).
    index: Arc<[Edge]>,
    /// `dense[i]` = color of `index[i]`, or [`UNCOLORED`].
    dense: Vec<u32>,
    /// Colors of edges outside `index`, sorted.
    extra: BTreeMap<Edge, ColorId>,
    /// Number of non-sentinel `dense` slots.
    dense_colored: usize,
}

impl EdgeColoring {
    /// An empty edge coloring with no [`EdgeId`] index: every edge
    /// goes through the sorted side map. Prefer
    /// [`dense_for`](EdgeColoring::dense_for) when the target graph is
    /// at hand.
    pub fn new() -> Self {
        EdgeColoring {
            index: empty_index(),
            dense: Vec::new(),
            extra: BTreeMap::new(),
            dense_colored: 0,
        }
    }

    /// An all-uncolored coloring indexed by `g`'s [`EdgeId`] space:
    /// one flat `Vec` slot per edge of `g` (shared edge list, no
    /// copy). All `Edge`- and `EdgeId`-keyed operations on `g`'s edges
    /// are hash-free.
    pub fn dense_for(g: &Graph) -> Self {
        EdgeColoring {
            index: g.edges_shared(),
            dense: vec![UNCOLORED; g.num_edges()],
            extra: BTreeMap::new(),
            dense_colored: 0,
        }
    }

    /// Whether this coloring's [`EdgeId`] index *is* `g`'s edge list
    /// (pointer identity) — the condition under which `EdgeId`-keyed
    /// calls and `g`'s edge ids agree and validators take the dense
    /// O(n+m) path.
    #[inline]
    pub fn is_indexed_for(&self, g: &Graph) -> bool {
        let edges = g.edges();
        self.index.as_ptr() == edges.as_ptr() && self.index.len() == edges.len()
    }

    /// The dense slot of `e`, if `e` is in the index.
    #[inline]
    fn slot(&self, e: Edge) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        self.index.binary_search(&e).ok()
    }

    /// The color of edge `e`, if assigned.
    pub fn get(&self, e: Edge) -> Option<ColorId> {
        match self.slot(e) {
            Some(i) => match self.dense[i] {
                UNCOLORED => None,
                c => Some(ColorId(c)),
            },
            None => self.extra.get(&e).copied(),
        }
    }

    /// Assigns color `c` to edge `e`, returning the previous color if any.
    ///
    /// # Panics
    ///
    /// Panics if `c` is `ColorId(u32::MAX)` — that value is the
    /// internal uncolored sentinel and can never be a real color.
    pub fn set(&mut self, e: Edge, c: ColorId) -> Option<ColorId> {
        assert_ne!(c.0, UNCOLORED, "u32::MAX is the uncolored sentinel");
        match self.slot(e) {
            Some(i) => {
                let prev = std::mem::replace(&mut self.dense[i], c.0);
                if prev == UNCOLORED {
                    self.dense_colored += 1;
                    None
                } else {
                    Some(ColorId(prev))
                }
            }
            None => self.extra.insert(e, c),
        }
    }

    /// Removes the color of `e`, returning it.
    pub fn clear(&mut self, e: Edge) -> Option<ColorId> {
        match self.slot(e) {
            Some(i) => match std::mem::replace(&mut self.dense[i], UNCOLORED) {
                UNCOLORED => None,
                c => {
                    self.dense_colored -= 1;
                    Some(ColorId(c))
                }
            },
            None => self.extra.remove(&e),
        }
    }

    /// The color of the edge with dense id `id`, if assigned. O(1).
    ///
    /// Ids are relative to the coloring's own index (the graph passed
    /// to [`dense_for`](EdgeColoring::dense_for)).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the index.
    #[inline]
    pub fn get_id(&self, id: EdgeId) -> Option<ColorId> {
        match self.dense[id.index()] {
            UNCOLORED => None,
            c => Some(ColorId(c)),
        }
    }

    /// Assigns color `c` to the edge with dense id `id`, returning the
    /// previous color if any. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the index, or if `c` is
    /// `ColorId(u32::MAX)` (the internal uncolored sentinel).
    #[inline]
    pub fn set_id(&mut self, id: EdgeId, c: ColorId) -> Option<ColorId> {
        assert_ne!(c.0, UNCOLORED, "u32::MAX is the uncolored sentinel");
        let prev = std::mem::replace(&mut self.dense[id.index()], c.0);
        if prev == UNCOLORED {
            self.dense_colored += 1;
            None
        } else {
            Some(ColorId(prev))
        }
    }

    /// Removes the color of the edge with dense id `id`, returning it.
    /// O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the index.
    #[inline]
    pub fn clear_id(&mut self, id: EdgeId) -> Option<ColorId> {
        match std::mem::replace(&mut self.dense[id.index()], UNCOLORED) {
            UNCOLORED => None,
            c => {
                self.dense_colored -= 1;
                Some(ColorId(c))
            }
        }
    }

    /// Number of colored edges.
    pub fn len(&self) -> usize {
        self.dense_colored + self.extra.len()
    }

    /// Whether no edge is colored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator over `(edge, color)` pairs in ascending edge order
    /// (deterministic: dense index entries and side-map entries are
    /// merged into one sorted stream).
    pub fn iter(&self) -> EdgeColoringIter<'_> {
        EdgeColoringIter {
            index: &self.index,
            dense: &self.dense,
            pos: 0,
            extra: self.extra.iter().peekable(),
        }
    }

    /// Largest color index used, if any.
    pub fn max_color(&self) -> Option<ColorId> {
        let dense_max = self.dense.iter().copied().filter(|&c| c != UNCOLORED).max();
        let extra_max = self.extra.values().map(|c| c.0).max();
        dense_max.into_iter().chain(extra_max).max().map(ColorId)
    }

    /// Number of distinct colors used — one bitmap pass, no sorting.
    /// The bitmap is bounded: colors too large for it (only buggy
    /// protocols produce them) are counted through a sorted side list
    /// instead of sizing the bitmap by the largest color value.
    pub fn num_distinct_colors(&self) -> usize {
        /// One `u64` word per 64 colors up to ~1M colors ≈ 16 KiB max.
        const BITMAP_COLOR_LIMIT: u32 = 1 << 20;
        let Some(max) = self.max_color() else {
            return 0;
        };
        let words_len = (max.0.min(BITMAP_COLOR_LIMIT - 1) / 64 + 1) as usize;
        let mut words = vec![0u64; words_len];
        let mut huge: Vec<u32> = Vec::new();
        let mut count = 0usize;
        let mut mark = |c: u32| {
            if c >= BITMAP_COLOR_LIMIT {
                huge.push(c);
                return;
            }
            let word = &mut words[(c / 64) as usize];
            let bit = 1u64 << (c % 64);
            if *word & bit == 0 {
                *word |= bit;
                count += 1;
            }
        };
        for &c in &self.dense {
            if c != UNCOLORED {
                mark(c);
            }
        }
        for c in self.extra.values() {
            mark(c.0);
        }
        huge.sort_unstable();
        huge.dedup();
        count + huge.len()
    }

    /// Merges `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns the conflicting edge if `other` assigns a *different*
    /// color to an edge already colored in `self`.
    pub fn merge(&mut self, other: &EdgeColoring) -> Result<(), Edge> {
        if Arc::ptr_eq(&self.index, &other.index) {
            // Same id space: elementwise, no edge lookups at all.
            for (i, &c) in other.dense.iter().enumerate() {
                if c == UNCOLORED {
                    continue;
                }
                match self.dense[i] {
                    UNCOLORED => {
                        self.dense[i] = c;
                        self.dense_colored += 1;
                    }
                    existing if existing != c => return Err(self.index[i]),
                    _ => {}
                }
            }
            for (&e, &c) in &other.extra {
                match self.get(e) {
                    Some(existing) if existing != c => return Err(e),
                    _ => {
                        self.set(e, c);
                    }
                }
            }
            return Ok(());
        }
        for (e, c) in other.iter() {
            match self.get(e) {
                Some(existing) if existing != c => return Err(e),
                _ => {
                    self.set(e, c);
                }
            }
        }
        Ok(())
    }

    /// A new coloring over the *same* edge index with every assigned
    /// color passed through `f` — the dense-preserving way to
    /// translate a local palette onto a global one.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns `ColorId(u32::MAX)` (the internal
    /// uncolored sentinel), like [`set`](EdgeColoring::set) would.
    pub fn remap(&self, mut f: impl FnMut(Edge, ColorId) -> ColorId) -> EdgeColoring {
        let mut out = self.clone();
        let mut apply = |e: Edge, c: ColorId| {
            let mapped = f(e, c);
            assert_ne!(mapped.0, UNCOLORED, "u32::MAX is the uncolored sentinel");
            mapped
        };
        for (i, slot) in out.dense.iter_mut().enumerate() {
            if *slot != UNCOLORED {
                *slot = apply(self.index[i], ColorId(*slot)).0;
            }
        }
        for (&e, c) in out.extra.iter_mut() {
            *c = apply(e, *c);
        }
        out
    }

    /// Colors in use at edges incident to `v`.
    pub fn colors_at(&self, g: &Graph, v: VertexId) -> Vec<ColorId> {
        let mut out = Vec::new();
        if self.is_indexed_for(g) {
            for (_, id) in g.incident_edges(v) {
                if let Some(c) = self.get_id(id) {
                    out.push(c);
                }
            }
        } else {
            for &u in g.neighbors(v) {
                if let Some(c) = self.get(Edge::new(u, v)) {
                    out.push(c);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Default for EdgeColoring {
    fn default() -> Self {
        EdgeColoring::new()
    }
}

impl fmt::Debug for EdgeColoring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl PartialEq for EdgeColoring {
    /// Representation-independent equality: the same `edge → color`
    /// mapping, whether a color sits in the dense index or the side
    /// map (both iterate in ascending edge order).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for EdgeColoring {}

impl FromIterator<(Edge, ColorId)> for EdgeColoring {
    fn from_iter<T: IntoIterator<Item = (Edge, ColorId)>>(iter: T) -> Self {
        let mut c = EdgeColoring::new();
        c.extend(iter);
        c
    }
}

impl Extend<(Edge, ColorId)> for EdgeColoring {
    fn extend<T: IntoIterator<Item = (Edge, ColorId)>>(&mut self, iter: T) {
        for (e, c) in iter {
            self.set(e, c);
        }
    }
}

/// Sorted-merge iterator over an [`EdgeColoring`]'s dense index and
/// side map; see [`EdgeColoring::iter`].
pub struct EdgeColoringIter<'a> {
    index: &'a [Edge],
    dense: &'a [u32],
    pos: usize,
    extra: std::iter::Peekable<std::collections::btree_map::Iter<'a, Edge, ColorId>>,
}

impl Iterator for EdgeColoringIter<'_> {
    type Item = (Edge, ColorId);

    fn next(&mut self) -> Option<(Edge, ColorId)> {
        while self.pos < self.dense.len() && self.dense[self.pos] == UNCOLORED {
            self.pos += 1;
        }
        match (self.dense.get(self.pos), self.extra.peek()) {
            (Some(&c), Some(&(&e, &ec))) => {
                if e < self.index[self.pos] {
                    self.extra.next();
                    Some((e, ec))
                } else {
                    let out = (self.index[self.pos], ColorId(c));
                    self.pos += 1;
                    Some(out)
                }
            }
            (Some(&c), None) => {
                let out = (self.index[self.pos], ColorId(c));
                self.pos += 1;
                Some(out)
            }
            (None, Some(_)) => self.extra.next().map(|(&e, &c)| (e, c)),
            (None, None) => None,
        }
    }
}

/// Why a coloring failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// A vertex has no assigned color.
    UncoloredVertex(VertexId),
    /// Two adjacent vertices share a color.
    AdjacentVertices(VertexId, VertexId, ColorId),
    /// A vertex color exceeds the allowed palette.
    VertexPaletteExceeded(VertexId, ColorId, usize),
    /// An edge has no assigned color.
    UncoloredEdge(Edge),
    /// Two incident edges share a color.
    IncidentEdges(Edge, Edge, ColorId),
    /// An edge color exceeds the allowed palette.
    EdgePaletteExceeded(Edge, ColorId, usize),
    /// A vertex color is outside its allowed list (D1LC).
    ColorNotInList(VertexId, ColorId),
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::UncoloredVertex(v) => write!(f, "vertex {v} is uncolored"),
            ColoringError::AdjacentVertices(u, v, c) => {
                write!(f, "adjacent vertices {u} and {v} both have color {c}")
            }
            ColoringError::VertexPaletteExceeded(v, c, k) => {
                write!(f, "vertex {v} has color {c} outside palette of size {k}")
            }
            ColoringError::UncoloredEdge(e) => write!(f, "edge {e} is uncolored"),
            ColoringError::IncidentEdges(e1, e2, c) => {
                write!(f, "incident edges {e1} and {e2} both have color {c}")
            }
            ColoringError::EdgePaletteExceeded(e, c, k) => {
                write!(f, "edge {e} has color {c} outside palette of size {k}")
            }
            ColoringError::ColorNotInList(v, c) => {
                write!(f, "vertex {v} has color {c} outside its allowed list")
            }
        }
    }
}

impl Error for ColoringError {}

/// Validates a *complete, proper* vertex coloring of `g`.
///
/// # Errors
///
/// Returns the first violation found: an uncolored vertex or two
/// adjacent vertices sharing a color.
pub fn validate_vertex_coloring(g: &Graph, c: &VertexColoring) -> Result<(), ColoringError> {
    for v in g.vertices() {
        if c.get(v).is_none() {
            return Err(ColoringError::UncoloredVertex(v));
        }
    }
    validate_partial_vertex_coloring(g, c)
}

/// Validates that the colored portion of a vertex coloring is proper
/// (uncolored vertices are allowed).
///
/// # Errors
///
/// Returns the first pair of adjacent vertices sharing a color.
pub fn validate_partial_vertex_coloring(
    g: &Graph,
    c: &VertexColoring,
) -> Result<(), ColoringError> {
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if let (Some(cu), Some(cv)) = (c.get(u), c.get(v)) {
            if cu == cv {
                return Err(ColoringError::AdjacentVertices(u, v, cu));
            }
        }
    }
    Ok(())
}

/// Validates a complete proper vertex coloring confined to the palette
/// `{0, ..., palette_size-1}` — e.g. `palette_size = Δ+1` for the
/// paper's main problem.
///
/// # Errors
///
/// Returns the first violation: uncolored vertex, adjacent conflict, or
/// out-of-palette color.
pub fn validate_vertex_coloring_with_palette(
    g: &Graph,
    c: &VertexColoring,
    palette_size: usize,
) -> Result<(), ColoringError> {
    validate_vertex_coloring(g, c)?;
    for v in g.vertices() {
        let col = c.get(v).expect("checked complete");
        if col.index() >= palette_size {
            return Err(ColoringError::VertexPaletteExceeded(v, col, palette_size));
        }
    }
    Ok(())
}

/// Reusable timestamp-marked scratch for the edge-coloring
/// validators: one "last seen at stamp" slot per color, so checking a
/// vertex's incident colors for duplicates costs O(deg) with **zero
/// allocation** — no per-vertex hash map. The buffers persist across
/// calls; reusing one `ColorMarks` across trials (as the runner's
/// per-worker scratch does) makes the whole validator pass
/// allocation-free once the palette has been seen.
///
/// # Example
///
/// ```
/// use bichrome_graph::coloring::ColorMarks;
/// use bichrome_graph::{gen, edge_color::misra_gries};
///
/// let mut marks = ColorMarks::new();
/// for seed in 0..3 {
///     let g = gen::gnp(30, 0.2, seed);
///     let c = misra_gries(&g);
///     // Same verdicts as the free `validate_*` functions, but the
///     // scratch is reused across all three trials.
///     assert!(marks
///         .check_edge_coloring_with_palette(&g, &c, g.max_degree() + 1)
///         .is_ok());
/// }
/// ```
#[derive(Debug, Default)]
pub struct ColorMarks {
    /// `seen_at[c]` = stamp of the vertex at which color `c` was last
    /// observed (0 = never; stamps start at 1).
    seen_at: Vec<u32>,
    /// `nbr[c]` = the neighbor endpoint of the edge that observed `c`
    /// at the current vertex, for conflict reporting.
    nbr: Vec<u32>,
    /// `(color, neighbor)` pairs of the current vertex whose color is
    /// `>= DENSE_COLOR_LIMIT` — only adversarial/buggy colorings land
    /// here, and a vertex has at most `deg` of them, so the linear
    /// scan is fine and scratch memory stays bounded by the limit
    /// rather than by the largest color value submitted.
    overflow: Vec<(u32, u32)>,
    /// Current vertex stamp.
    stamp: u32,
    /// Number of internal (re)allocations this scratch has made.
    allocs: u64,
}

/// Largest color the scratch tracks densely (one `u32` slot per
/// color). Real palettes are `O(Δ)`; anything at or above this bound
/// — which only a buggy protocol can produce — takes the per-vertex
/// overflow list instead, so validating an adversarial coloring with
/// `ColorId(u32::MAX - 1)` costs a few list entries, not gigabytes.
const DENSE_COLOR_LIMIT: usize = 1 << 20;

impl ColorMarks {
    /// A fresh scratch. Allocates nothing until a color is observed.
    pub fn new() -> Self {
        ColorMarks::default()
    }

    /// Number of internal (re)allocations this scratch has performed
    /// so far — a diagnostic counter for tests asserting that a warm
    /// scratch validates trial after trial with zero heap allocation.
    pub fn allocations(&self) -> u64 {
        self.allocs
    }

    /// Starts a new "distinct colors" group (one vertex).
    #[inline]
    fn begin_group(&mut self) {
        if self.stamp == u32::MAX {
            self.seen_at.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.overflow.clear();
    }

    /// Records `color` seen via neighbor `nbr` in the current group;
    /// returns the previous neighbor if the color was already seen.
    #[inline]
    fn observe(&mut self, color: usize, nbr: u32) -> Option<u32> {
        if color >= DENSE_COLOR_LIMIT {
            return self.observe_overflow(color as u32, nbr);
        }
        if color >= self.seen_at.len() {
            self.grow(color);
        }
        if self.seen_at[color] == self.stamp {
            return Some(self.nbr[color]);
        }
        self.seen_at[color] = self.stamp;
        self.nbr[color] = nbr;
        None
    }

    #[cold]
    fn observe_overflow(&mut self, color: u32, nbr: u32) -> Option<u32> {
        if let Some(&(_, prev)) = self.overflow.iter().find(|&&(c, _)| c == color) {
            return Some(prev);
        }
        self.overflow.push((color, nbr));
        None
    }

    #[cold]
    fn grow(&mut self, color: usize) {
        let len = (color + 1).next_power_of_two().max(64);
        self.seen_at.resize(len, 0);
        self.nbr.resize(len, 0);
        self.allocs += 1;
    }

    /// Validates that the colored portion of an edge coloring is
    /// proper, reusing this scratch. Same verdicts (including the
    /// first violation reported) as
    /// [`validate_partial_edge_coloring`].
    ///
    /// One O(n+m) pass: when `c` is dense over `g`'s edge index the
    /// inner loop is pure array traffic; otherwise each incident edge
    /// costs one O(log m) lookup.
    ///
    /// # Errors
    ///
    /// Returns the first pair of incident edges sharing a color.
    pub fn check_partial_edge_coloring(
        &mut self,
        g: &Graph,
        c: &EdgeColoring,
    ) -> Result<(), ColoringError> {
        let fast = c.is_indexed_for(g);
        for v in g.vertices() {
            self.begin_group();
            let nbrs = g.neighbors(v);
            let ids = g.neighbor_edge_ids(v);
            for (k, &u) in nbrs.iter().enumerate() {
                let col = if fast {
                    c.get_id(ids[k])
                } else {
                    c.get(Edge::new(u, v))
                };
                let Some(col) = col else { continue };
                if let Some(prev) = self.observe(col.index(), u.0) {
                    return Err(ColoringError::IncidentEdges(
                        Edge::new(VertexId(prev), v),
                        Edge::new(u, v),
                        col,
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validates a *complete, proper* edge coloring of `g`, reusing
    /// this scratch. Same verdicts as [`validate_edge_coloring`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found: an uncolored edge or two
    /// incident edges sharing a color.
    pub fn check_edge_coloring(
        &mut self,
        g: &Graph,
        c: &EdgeColoring,
    ) -> Result<(), ColoringError> {
        if c.is_indexed_for(g) {
            if let Some(i) = c.dense.iter().position(|&slot| slot == UNCOLORED) {
                return Err(ColoringError::UncoloredEdge(g.edge(EdgeId(i as u32))));
            }
        } else {
            for &e in g.edges() {
                if c.get(e).is_none() {
                    return Err(ColoringError::UncoloredEdge(e));
                }
            }
        }
        self.check_partial_edge_coloring(g, c)
    }

    /// Validates a complete proper edge coloring confined to the
    /// palette `{0, ..., palette_size-1}`, reusing this scratch. Same
    /// verdicts as [`validate_edge_coloring_with_palette`].
    ///
    /// # Errors
    ///
    /// Returns the first violation: uncolored edge, incident conflict,
    /// or out-of-palette color.
    pub fn check_edge_coloring_with_palette(
        &mut self,
        g: &Graph,
        c: &EdgeColoring,
        palette_size: usize,
    ) -> Result<(), ColoringError> {
        self.check_edge_coloring(g, c)?;
        if c.is_indexed_for(g) {
            for (i, &col) in c.dense.iter().enumerate() {
                if col != UNCOLORED && col as usize >= palette_size {
                    return Err(ColoringError::EdgePaletteExceeded(
                        g.edge(EdgeId(i as u32)),
                        ColorId(col),
                        palette_size,
                    ));
                }
            }
        } else {
            for &e in g.edges() {
                let col = c.get(e).expect("checked complete");
                if col.index() >= palette_size {
                    return Err(ColoringError::EdgePaletteExceeded(e, col, palette_size));
                }
            }
        }
        Ok(())
    }
}

/// Validates a *complete, proper* edge coloring of `g`.
///
/// Stateless wrapper over [`ColorMarks::check_edge_coloring`]; hot
/// paths that validate many colorings should hold a `ColorMarks` and
/// call the method to reuse its buffers.
///
/// # Errors
///
/// Returns the first violation found: an uncolored edge or two incident
/// edges sharing a color.
pub fn validate_edge_coloring(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    ColorMarks::new().check_edge_coloring(g, c)
}

/// Validates that the colored portion of an edge coloring is proper.
///
/// Stateless wrapper over
/// [`ColorMarks::check_partial_edge_coloring`].
///
/// # Errors
///
/// Returns the first pair of incident edges sharing a color.
pub fn validate_partial_edge_coloring(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    ColorMarks::new().check_partial_edge_coloring(g, c)
}

/// Validates a complete proper edge coloring confined to the palette
/// `{0, ..., palette_size-1}` — e.g. `palette_size = 2Δ−1` for the
/// paper's edge-coloring problem.
///
/// Stateless wrapper over
/// [`ColorMarks::check_edge_coloring_with_palette`].
///
/// # Errors
///
/// Returns the first violation: uncolored edge, incident conflict, or
/// out-of-palette color.
pub fn validate_edge_coloring_with_palette(
    g: &Graph,
    c: &EdgeColoring,
    palette_size: usize,
) -> Result<(), ColoringError> {
    ColorMarks::new().check_edge_coloring_with_palette(g, c, palette_size)
}

/// Validates a (degree+1)-list coloring: complete, proper, and every
/// vertex's color is inside its list.
///
/// # Errors
///
/// Returns the first violation. `lists[v]` must be sorted or not —
/// membership is checked by linear scan.
///
/// # Panics
///
/// Panics if `lists.len() != g.num_vertices()`.
pub fn validate_list_coloring(
    g: &Graph,
    c: &VertexColoring,
    lists: &[Vec<ColorId>],
) -> Result<(), ColoringError> {
    assert_eq!(lists.len(), g.num_vertices(), "one list per vertex");
    validate_vertex_coloring(g, c)?;
    for v in g.vertices() {
        let col = c.get(v).expect("checked complete");
        if !lists[v.index()].contains(&col) {
            return Err(ColoringError::ColorNotInList(v, col));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.build()
    }

    #[test]
    fn vertex_coloring_accessors() {
        let mut c = VertexColoring::new(3);
        assert!(!c.is_colored(VertexId(0)));
        assert_eq!(c.set(VertexId(0), ColorId(1)), None);
        assert_eq!(c.set(VertexId(0), ColorId(2)), Some(ColorId(1)));
        assert_eq!(c.num_colored(), 1);
        assert!(!c.is_complete());
        assert_eq!(c.uncolored_vertices(), vec![VertexId(1), VertexId(2)]);
        assert_eq!(c.max_color(), Some(ColorId(2)));
        assert_eq!(c.clear(VertexId(0)), Some(ColorId(2)));
        assert_eq!(c.num_colored(), 0);
    }

    #[test]
    fn valid_vertex_coloring_passes() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(1));
        c.set(VertexId(2), ColorId(0));
        assert!(validate_vertex_coloring(&g, &c).is_ok());
        assert!(validate_vertex_coloring_with_palette(&g, &c, 2).is_ok());
        assert_eq!(c.num_distinct_colors(), 2);
    }

    #[test]
    fn adjacent_conflict_detected() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(0));
        c.set(VertexId(2), ColorId(1));
        assert_eq!(
            validate_vertex_coloring(&g, &c),
            Err(ColoringError::AdjacentVertices(
                VertexId(0),
                VertexId(1),
                ColorId(0)
            ))
        );
    }

    #[test]
    fn uncolored_vertex_detected() {
        let g = path3();
        let c = VertexColoring::new(3);
        assert_eq!(
            validate_vertex_coloring(&g, &c),
            Err(ColoringError::UncoloredVertex(VertexId(0)))
        );
        // But the partial validator is fine with it.
        assert!(validate_partial_vertex_coloring(&g, &c).is_ok());
    }

    #[test]
    fn palette_violation_detected() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(5));
        c.set(VertexId(2), ColorId(0));
        assert!(matches!(
            validate_vertex_coloring_with_palette(&g, &c, 3),
            Err(ColoringError::VertexPaletteExceeded(_, ColorId(5), 3))
        ));
    }

    #[test]
    fn edge_coloring_roundtrip() {
        let g = path3();
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let mut c = EdgeColoring::new();
        c.set(e01, ColorId(0));
        c.set(e12, ColorId(1));
        assert!(validate_edge_coloring(&g, &c).is_ok());
        assert!(validate_edge_coloring_with_palette(&g, &c, 2).is_ok());
        assert_eq!(c.colors_at(&g, VertexId(1)), vec![ColorId(0), ColorId(1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max_color(), Some(ColorId(1)));
    }

    #[test]
    fn incident_edge_conflict_detected() {
        let g = path3();
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let mut c = EdgeColoring::new();
        c.set(e01, ColorId(0));
        c.set(e12, ColorId(0));
        assert!(matches!(
            validate_edge_coloring(&g, &c),
            Err(ColoringError::IncidentEdges(_, _, ColorId(0)))
        ));
    }

    #[test]
    fn uncolored_edge_detected() {
        let g = path3();
        let c = EdgeColoring::new();
        assert!(matches!(
            validate_edge_coloring(&g, &c),
            Err(ColoringError::UncoloredEdge(_))
        ));
        assert!(validate_partial_edge_coloring(&g, &c).is_ok());
    }

    #[test]
    fn merge_detects_conflicts() {
        let e = Edge::new(VertexId(0), VertexId(1));
        let mut a = EdgeColoring::new();
        a.set(e, ColorId(0));
        let mut b = EdgeColoring::new();
        b.set(e, ColorId(1));
        assert_eq!(a.clone().merge(&b), Err(e));
        let mut same = EdgeColoring::new();
        same.set(e, ColorId(0));
        assert!(a.merge(&same).is_ok());
    }

    #[test]
    fn list_coloring_validation() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(1));
        c.set(VertexId(2), ColorId(0));
        let lists = vec![
            vec![ColorId(0), ColorId(1)],
            vec![ColorId(1)],
            vec![ColorId(0)],
        ];
        assert!(validate_list_coloring(&g, &c, &lists).is_ok());
        let bad_lists = vec![vec![ColorId(1)], vec![ColorId(1)], vec![ColorId(0)]];
        assert_eq!(
            validate_list_coloring(&g, &c, &bad_lists),
            Err(ColoringError::ColorNotInList(VertexId(0), ColorId(0)))
        );
    }

    #[test]
    fn huge_colors_validate_without_huge_scratch() {
        // A buggy protocol may emit near-u32::MAX colors; the
        // validators must reject (or accept) them with bounded
        // memory, not size their scratch by the color value.
        let g = path3();
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let mut c = EdgeColoring::dense_for(&g);
        c.set(e01, ColorId(u32::MAX - 1));
        c.set(e12, ColorId(u32::MAX - 1));
        assert!(matches!(
            validate_partial_edge_coloring(&g, &c),
            Err(ColoringError::IncidentEdges(_, _, ColorId(c))) if c == u32::MAX - 1
        ));
        c.set(e12, ColorId(u32::MAX - 2));
        assert!(validate_edge_coloring(&g, &c).is_ok());
        assert!(matches!(
            validate_edge_coloring_with_palette(&g, &c, 3),
            Err(ColoringError::EdgePaletteExceeded(..))
        ));
        assert_eq!(c.num_distinct_colors(), 2);
    }

    #[test]
    #[should_panic(expected = "uncolored sentinel")]
    fn set_rejects_the_sentinel_color() {
        let mut c = EdgeColoring::new();
        c.set(Edge::new(VertexId(0), VertexId(1)), ColorId(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "uncolored sentinel")]
    fn remap_rejects_the_sentinel_color() {
        let g = path3();
        let mut c = EdgeColoring::dense_for(&g);
        c.set(Edge::new(VertexId(0), VertexId(1)), ColorId(0));
        let _ = c.remap(|_, _| ColorId(u32::MAX));
    }

    #[test]
    fn error_display_nonempty() {
        let msgs = [
            ColoringError::UncoloredVertex(VertexId(0)).to_string(),
            ColoringError::AdjacentVertices(VertexId(0), VertexId(1), ColorId(0)).to_string(),
            ColoringError::UncoloredEdge(Edge::new(VertexId(0), VertexId(1))).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
