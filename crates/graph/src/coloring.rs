//! Vertex and edge coloring containers and validators.
//!
//! Validators in this module are the ground truth the entire workspace
//! tests against: a protocol's output is correct exactly when the
//! corresponding `validate_*` function returns `Ok`.

use crate::graph::{Edge, Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A color index.
///
/// Palettes are sets of `ColorId`s; the paper's palette `[Δ+1]` maps to
/// `ColorId(0) ..= ColorId(Δ)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ColorId(pub u32);

impl ColorId {
    /// The color index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ColorId {
    fn from(i: u32) -> Self {
        ColorId(i)
    }
}

/// A (possibly partial) vertex coloring of an `n`-vertex graph.
///
/// # Example
///
/// ```
/// use bichrome_graph::coloring::{ColorId, VertexColoring};
/// use bichrome_graph::VertexId;
///
/// let mut c = VertexColoring::new(3);
/// c.set(VertexId(0), ColorId(2));
/// assert_eq!(c.get(VertexId(0)), Some(ColorId(2)));
/// assert_eq!(c.get(VertexId(1)), None);
/// assert_eq!(c.num_colored(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexColoring {
    colors: Vec<Option<ColorId>>,
}

impl VertexColoring {
    /// An all-uncolored coloring of `n` vertices.
    pub fn new(n: usize) -> Self {
        VertexColoring {
            colors: vec![None; n],
        }
    }

    /// Number of vertices the coloring is over.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of `v`, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<ColorId> {
        self.colors[v.index()]
    }

    /// Assigns color `c` to `v`, returning the previous color if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set(&mut self, v: VertexId, c: ColorId) -> Option<ColorId> {
        self.colors[v.index()].replace(c)
    }

    /// Removes the color of `v`, returning it.
    pub fn clear(&mut self, v: VertexId) -> Option<ColorId> {
        self.colors[v.index()].take()
    }

    /// Whether `v` has been assigned a color.
    #[inline]
    pub fn is_colored(&self, v: VertexId) -> bool {
        self.colors[v.index()].is_some()
    }

    /// Number of vertices with an assigned color.
    pub fn num_colored(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every vertex is colored.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(|c| c.is_some())
    }

    /// The uncolored vertices, in increasing order.
    pub fn uncolored_vertices(&self) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Largest color index used, if any vertex is colored.
    pub fn max_color(&self) -> Option<ColorId> {
        self.colors.iter().flatten().copied().max()
    }

    /// Number of distinct colors used.
    pub fn num_distinct_colors(&self) -> usize {
        let mut used: Vec<ColorId> = self.colors.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }
}

/// A (possibly partial) edge coloring, keyed by [`Edge`].
///
/// # Example
///
/// ```
/// use bichrome_graph::coloring::{ColorId, EdgeColoring};
/// use bichrome_graph::{Edge, VertexId};
///
/// let mut c = EdgeColoring::new();
/// let e = Edge::new(VertexId(0), VertexId(1));
/// c.set(e, ColorId(0));
/// assert_eq!(c.get(e), Some(ColorId(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeColoring {
    colors: HashMap<Edge, ColorId>,
}

impl EdgeColoring {
    /// An empty edge coloring.
    pub fn new() -> Self {
        Self::default()
    }

    /// The color of edge `e`, if assigned.
    pub fn get(&self, e: Edge) -> Option<ColorId> {
        self.colors.get(&e).copied()
    }

    /// Assigns color `c` to edge `e`, returning the previous color if any.
    pub fn set(&mut self, e: Edge, c: ColorId) -> Option<ColorId> {
        self.colors.insert(e, c)
    }

    /// Removes the color of `e`, returning it.
    pub fn clear(&mut self, e: Edge) -> Option<ColorId> {
        self.colors.remove(&e)
    }

    /// Number of colored edges.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether no edge is colored.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Iterator over `(edge, color)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Edge, ColorId)> + '_ {
        self.colors.iter().map(|(&e, &c)| (e, c))
    }

    /// Largest color index used, if any.
    pub fn max_color(&self) -> Option<ColorId> {
        self.colors.values().copied().max()
    }

    /// Number of distinct colors used.
    pub fn num_distinct_colors(&self) -> usize {
        let mut used: Vec<ColorId> = self.colors.values().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Merges `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns the conflicting edge if `other` assigns a *different*
    /// color to an edge already colored in `self`.
    pub fn merge(&mut self, other: &EdgeColoring) -> Result<(), Edge> {
        for (e, c) in other.iter() {
            match self.colors.get(&e) {
                Some(&existing) if existing != c => return Err(e),
                _ => {
                    self.colors.insert(e, c);
                }
            }
        }
        Ok(())
    }

    /// Colors in use at edges incident to `v`.
    pub fn colors_at(&self, g: &Graph, v: VertexId) -> Vec<ColorId> {
        let mut out = Vec::new();
        for &u in g.neighbors(v) {
            if let Some(c) = self.get(Edge::new(u, v)) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl FromIterator<(Edge, ColorId)> for EdgeColoring {
    fn from_iter<T: IntoIterator<Item = (Edge, ColorId)>>(iter: T) -> Self {
        EdgeColoring {
            colors: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Edge, ColorId)> for EdgeColoring {
    fn extend<T: IntoIterator<Item = (Edge, ColorId)>>(&mut self, iter: T) {
        self.colors.extend(iter);
    }
}

/// Why a coloring failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// A vertex has no assigned color.
    UncoloredVertex(VertexId),
    /// Two adjacent vertices share a color.
    AdjacentVertices(VertexId, VertexId, ColorId),
    /// A vertex color exceeds the allowed palette.
    VertexPaletteExceeded(VertexId, ColorId, usize),
    /// An edge has no assigned color.
    UncoloredEdge(Edge),
    /// Two incident edges share a color.
    IncidentEdges(Edge, Edge, ColorId),
    /// An edge color exceeds the allowed palette.
    EdgePaletteExceeded(Edge, ColorId, usize),
    /// A vertex color is outside its allowed list (D1LC).
    ColorNotInList(VertexId, ColorId),
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::UncoloredVertex(v) => write!(f, "vertex {v} is uncolored"),
            ColoringError::AdjacentVertices(u, v, c) => {
                write!(f, "adjacent vertices {u} and {v} both have color {c}")
            }
            ColoringError::VertexPaletteExceeded(v, c, k) => {
                write!(f, "vertex {v} has color {c} outside palette of size {k}")
            }
            ColoringError::UncoloredEdge(e) => write!(f, "edge {e} is uncolored"),
            ColoringError::IncidentEdges(e1, e2, c) => {
                write!(f, "incident edges {e1} and {e2} both have color {c}")
            }
            ColoringError::EdgePaletteExceeded(e, c, k) => {
                write!(f, "edge {e} has color {c} outside palette of size {k}")
            }
            ColoringError::ColorNotInList(v, c) => {
                write!(f, "vertex {v} has color {c} outside its allowed list")
            }
        }
    }
}

impl Error for ColoringError {}

/// Validates a *complete, proper* vertex coloring of `g`.
///
/// # Errors
///
/// Returns the first violation found: an uncolored vertex or two
/// adjacent vertices sharing a color.
pub fn validate_vertex_coloring(g: &Graph, c: &VertexColoring) -> Result<(), ColoringError> {
    for v in g.vertices() {
        if c.get(v).is_none() {
            return Err(ColoringError::UncoloredVertex(v));
        }
    }
    validate_partial_vertex_coloring(g, c)
}

/// Validates that the colored portion of a vertex coloring is proper
/// (uncolored vertices are allowed).
///
/// # Errors
///
/// Returns the first pair of adjacent vertices sharing a color.
pub fn validate_partial_vertex_coloring(
    g: &Graph,
    c: &VertexColoring,
) -> Result<(), ColoringError> {
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if let (Some(cu), Some(cv)) = (c.get(u), c.get(v)) {
            if cu == cv {
                return Err(ColoringError::AdjacentVertices(u, v, cu));
            }
        }
    }
    Ok(())
}

/// Validates a complete proper vertex coloring confined to the palette
/// `{0, ..., palette_size-1}` — e.g. `palette_size = Δ+1` for the
/// paper's main problem.
///
/// # Errors
///
/// Returns the first violation: uncolored vertex, adjacent conflict, or
/// out-of-palette color.
pub fn validate_vertex_coloring_with_palette(
    g: &Graph,
    c: &VertexColoring,
    palette_size: usize,
) -> Result<(), ColoringError> {
    validate_vertex_coloring(g, c)?;
    for v in g.vertices() {
        let col = c.get(v).expect("checked complete");
        if col.index() >= palette_size {
            return Err(ColoringError::VertexPaletteExceeded(v, col, palette_size));
        }
    }
    Ok(())
}

/// Validates a *complete, proper* edge coloring of `g`.
///
/// # Errors
///
/// Returns the first violation found: an uncolored edge or two incident
/// edges sharing a color.
pub fn validate_edge_coloring(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    for &e in g.edges() {
        if c.get(e).is_none() {
            return Err(ColoringError::UncoloredEdge(e));
        }
    }
    validate_partial_edge_coloring(g, c)
}

/// Validates that the colored portion of an edge coloring is proper.
///
/// # Errors
///
/// Returns the first pair of incident edges sharing a color.
pub fn validate_partial_edge_coloring(g: &Graph, c: &EdgeColoring) -> Result<(), ColoringError> {
    for v in g.vertices() {
        let mut seen: HashMap<ColorId, Edge> = HashMap::new();
        for &u in g.neighbors(v) {
            let e = Edge::new(u, v);
            if let Some(col) = c.get(e) {
                if let Some(&prev) = seen.get(&col) {
                    return Err(ColoringError::IncidentEdges(prev, e, col));
                }
                seen.insert(col, e);
            }
        }
    }
    Ok(())
}

/// Validates a complete proper edge coloring confined to the palette
/// `{0, ..., palette_size-1}` — e.g. `palette_size = 2Δ−1` for the
/// paper's edge-coloring problem.
///
/// # Errors
///
/// Returns the first violation: uncolored edge, incident conflict, or
/// out-of-palette color.
pub fn validate_edge_coloring_with_palette(
    g: &Graph,
    c: &EdgeColoring,
    palette_size: usize,
) -> Result<(), ColoringError> {
    validate_edge_coloring(g, c)?;
    for &e in g.edges() {
        let col = c.get(e).expect("checked complete");
        if col.index() >= palette_size {
            return Err(ColoringError::EdgePaletteExceeded(e, col, palette_size));
        }
    }
    Ok(())
}

/// Validates a (degree+1)-list coloring: complete, proper, and every
/// vertex's color is inside its list.
///
/// # Errors
///
/// Returns the first violation. `lists[v]` must be sorted or not —
/// membership is checked by linear scan.
///
/// # Panics
///
/// Panics if `lists.len() != g.num_vertices()`.
pub fn validate_list_coloring(
    g: &Graph,
    c: &VertexColoring,
    lists: &[Vec<ColorId>],
) -> Result<(), ColoringError> {
    assert_eq!(lists.len(), g.num_vertices(), "one list per vertex");
    validate_vertex_coloring(g, c)?;
    for v in g.vertices() {
        let col = c.get(v).expect("checked complete");
        if !lists[v.index()].contains(&col) {
            return Err(ColoringError::ColorNotInList(v, col));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.build()
    }

    #[test]
    fn vertex_coloring_accessors() {
        let mut c = VertexColoring::new(3);
        assert!(!c.is_colored(VertexId(0)));
        assert_eq!(c.set(VertexId(0), ColorId(1)), None);
        assert_eq!(c.set(VertexId(0), ColorId(2)), Some(ColorId(1)));
        assert_eq!(c.num_colored(), 1);
        assert!(!c.is_complete());
        assert_eq!(c.uncolored_vertices(), vec![VertexId(1), VertexId(2)]);
        assert_eq!(c.max_color(), Some(ColorId(2)));
        assert_eq!(c.clear(VertexId(0)), Some(ColorId(2)));
        assert_eq!(c.num_colored(), 0);
    }

    #[test]
    fn valid_vertex_coloring_passes() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(1));
        c.set(VertexId(2), ColorId(0));
        assert!(validate_vertex_coloring(&g, &c).is_ok());
        assert!(validate_vertex_coloring_with_palette(&g, &c, 2).is_ok());
        assert_eq!(c.num_distinct_colors(), 2);
    }

    #[test]
    fn adjacent_conflict_detected() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(0));
        c.set(VertexId(2), ColorId(1));
        assert_eq!(
            validate_vertex_coloring(&g, &c),
            Err(ColoringError::AdjacentVertices(
                VertexId(0),
                VertexId(1),
                ColorId(0)
            ))
        );
    }

    #[test]
    fn uncolored_vertex_detected() {
        let g = path3();
        let c = VertexColoring::new(3);
        assert_eq!(
            validate_vertex_coloring(&g, &c),
            Err(ColoringError::UncoloredVertex(VertexId(0)))
        );
        // But the partial validator is fine with it.
        assert!(validate_partial_vertex_coloring(&g, &c).is_ok());
    }

    #[test]
    fn palette_violation_detected() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(5));
        c.set(VertexId(2), ColorId(0));
        assert!(matches!(
            validate_vertex_coloring_with_palette(&g, &c, 3),
            Err(ColoringError::VertexPaletteExceeded(_, ColorId(5), 3))
        ));
    }

    #[test]
    fn edge_coloring_roundtrip() {
        let g = path3();
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let mut c = EdgeColoring::new();
        c.set(e01, ColorId(0));
        c.set(e12, ColorId(1));
        assert!(validate_edge_coloring(&g, &c).is_ok());
        assert!(validate_edge_coloring_with_palette(&g, &c, 2).is_ok());
        assert_eq!(c.colors_at(&g, VertexId(1)), vec![ColorId(0), ColorId(1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.max_color(), Some(ColorId(1)));
    }

    #[test]
    fn incident_edge_conflict_detected() {
        let g = path3();
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let e12 = Edge::new(VertexId(1), VertexId(2));
        let mut c = EdgeColoring::new();
        c.set(e01, ColorId(0));
        c.set(e12, ColorId(0));
        assert!(matches!(
            validate_edge_coloring(&g, &c),
            Err(ColoringError::IncidentEdges(_, _, ColorId(0)))
        ));
    }

    #[test]
    fn uncolored_edge_detected() {
        let g = path3();
        let c = EdgeColoring::new();
        assert!(matches!(
            validate_edge_coloring(&g, &c),
            Err(ColoringError::UncoloredEdge(_))
        ));
        assert!(validate_partial_edge_coloring(&g, &c).is_ok());
    }

    #[test]
    fn merge_detects_conflicts() {
        let e = Edge::new(VertexId(0), VertexId(1));
        let mut a = EdgeColoring::new();
        a.set(e, ColorId(0));
        let mut b = EdgeColoring::new();
        b.set(e, ColorId(1));
        assert_eq!(a.clone().merge(&b), Err(e));
        let mut same = EdgeColoring::new();
        same.set(e, ColorId(0));
        assert!(a.merge(&same).is_ok());
    }

    #[test]
    fn list_coloring_validation() {
        let g = path3();
        let mut c = VertexColoring::new(3);
        c.set(VertexId(0), ColorId(0));
        c.set(VertexId(1), ColorId(1));
        c.set(VertexId(2), ColorId(0));
        let lists = vec![
            vec![ColorId(0), ColorId(1)],
            vec![ColorId(1)],
            vec![ColorId(0)],
        ];
        assert!(validate_list_coloring(&g, &c, &lists).is_ok());
        let bad_lists = vec![vec![ColorId(1)], vec![ColorId(1)], vec![ColorId(0)]];
        assert_eq!(
            validate_list_coloring(&g, &c, &bad_lists),
            Err(ColoringError::ColorNotInList(VertexId(0), ColorId(0)))
        );
    }

    #[test]
    fn error_display_nonempty() {
        let msgs = [
            ColoringError::UncoloredVertex(VertexId(0)).to_string(),
            ColoringError::AdjacentVertices(VertexId(0), VertexId(1), ColorId(0)).to_string(),
            ColoringError::UncoloredEdge(Edge::new(VertexId(0), VertexId(1))).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
