//! Edge partitions between the two parties.
//!
//! In the paper's model (§3.1) the edges of the input graph are
//! partitioned *adversarially* between Alice and Bob. A true adaptive
//! adversary is not computable, so experiments quantify over the
//! [`Partitioner`] family below, which includes the structured splits
//! used in the paper's lower-bound constructions (e.g. "Alice gets
//! everything").

use crate::graph::{Edge, Graph, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which party holds an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// The first party.
    Alice,
    /// The second party.
    Bob,
}

impl Party {
    /// The opposite party.
    #[inline]
    pub fn other(self) -> Party {
        match self {
            Party::Alice => Party::Bob,
            Party::Bob => Party::Alice,
        }
    }
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Alice => write!(f, "Alice"),
            Party::Bob => write!(f, "Bob"),
        }
    }
}

/// A partition of a graph's edges into Alice's part `E_A` and Bob's
/// part `E_B`, each materialized as a subgraph on the full vertex set.
///
/// Invariant: `alice.union(&bob) == whole` and the two edge sets are
/// disjoint; [`EdgePartition::new`] checks this.
#[derive(Debug, Clone)]
pub struct EdgePartition {
    whole: Graph,
    alice: Graph,
    bob: Graph,
}

impl EdgePartition {
    /// Assembles a partition from the whole graph and Alice's edge set.
    ///
    /// Edges of `whole` not in `alice_edges` go to Bob.
    ///
    /// # Panics
    ///
    /// Panics if `alice_edges` contains an edge not in `whole`.
    pub fn new(whole: Graph, alice_edges: &[Edge]) -> Self {
        let mut is_alice = std::collections::HashSet::new();
        for &e in alice_edges {
            assert!(
                whole.edges().binary_search(&e).is_ok(),
                "edge {e} assigned to Alice is not in the graph"
            );
            is_alice.insert(e);
        }
        let alice = whole.edge_subgraph(|e| is_alice.contains(&e));
        let bob = whole.edge_subgraph(|e| !is_alice.contains(&e));
        EdgePartition { whole, alice, bob }
    }

    /// The full input graph `G`.
    pub fn whole(&self) -> &Graph {
        &self.whole
    }

    /// Alice's subgraph `G_A = (V, E_A)`.
    pub fn alice(&self) -> &Graph {
        &self.alice
    }

    /// Bob's subgraph `G_B = (V, E_B)`.
    pub fn bob(&self) -> &Graph {
        &self.bob
    }

    /// The subgraph of the given party.
    pub fn side(&self, p: Party) -> &Graph {
        match p {
            Party::Alice => &self.alice,
            Party::Bob => &self.bob,
        }
    }

    /// Which party holds edge `e`.
    ///
    /// Returns `None` if `e` is not an edge of the graph.
    pub fn owner(&self, e: Edge) -> Option<Party> {
        if self.alice.edges().binary_search(&e).is_ok() {
            Some(Party::Alice)
        } else if self.bob.edges().binary_search(&e).is_ok() {
            Some(Party::Bob)
        } else {
            None
        }
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.whole.num_vertices()
    }

    /// Maximum degree Δ of the *whole* graph — the parameter both
    /// parties are given in the model.
    pub fn max_degree(&self) -> usize {
        self.whole.max_degree()
    }

    /// Degree of `v` in the whole graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.whole.degree(v)
    }
}

/// Strategies for splitting edges between the parties.
///
/// `Hash` lets the runner's instance cache key materialized
/// partitions by `(spec, graph seed, partitioner)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Partitioner {
    /// Every edge goes to Alice (the split used in the paper's
    /// vertex-coloring lower bound, §2.3).
    AllToAlice,
    /// Every edge goes to Bob.
    AllToBob,
    /// Edge `i` (in sorted order) goes to Alice iff `i` is even.
    Alternating,
    /// Each edge goes to Alice independently with probability 1/2,
    /// derived from the given seed.
    Random(u64),
    /// Edge `{u, v}` goes to Alice iff `u + v` is even — a structured
    /// split that separates neighborhoods.
    ParitySum,
    /// Edges incident to low ids go to Alice: `{u,v}` (u<v) to Alice
    /// iff `u < n/2` — concentrates each vertex's edges on one side.
    LowHalf,
}

impl Partitioner {
    /// Applies the strategy to `g`.
    pub fn split(self, g: &Graph) -> EdgePartition {
        let n = g.num_vertices();
        let alice: Vec<Edge> = match self {
            Partitioner::AllToAlice => g.edges().to_vec(),
            Partitioner::AllToBob => Vec::new(),
            Partitioner::Alternating => g.edges().iter().copied().step_by(2).collect(),
            Partitioner::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                g.edges()
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(0.5))
                    .collect()
            }
            Partitioner::ParitySum => g
                .edges()
                .iter()
                .copied()
                .filter(|e| (e.u().0 + e.v().0) % 2 == 0)
                .collect(),
            Partitioner::LowHalf => g
                .edges()
                .iter()
                .copied()
                .filter(|e| (e.u().index()) < n / 2)
                .collect(),
        };
        EdgePartition::new(g.clone(), &alice)
    }

    /// The family of partitioners experiments sweep over, with `seed`
    /// feeding the randomized member.
    pub fn family(seed: u64) -> Vec<Partitioner> {
        vec![
            Partitioner::AllToAlice,
            Partitioner::AllToBob,
            Partitioner::Alternating,
            Partitioner::Random(seed),
            Partitioner::ParitySum,
            Partitioner::LowHalf,
        ]
    }
}

impl fmt::Display for Partitioner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioner::AllToAlice => write!(f, "all-to-alice"),
            Partitioner::AllToBob => write!(f, "all-to-bob"),
            Partitioner::Alternating => write!(f, "alternating"),
            Partitioner::Random(s) => write!(f, "random({s})"),
            Partitioner::ParitySum => write!(f, "parity-sum"),
            Partitioner::LowHalf => write!(f, "low-half"),
        }
    }
}

/// Why a partitioner string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePartitionerError {
    /// Not one of the known strategy names.
    UnknownStrategy(String),
    /// `random(...)` whose seed is not a `u64`.
    BadSeed(String),
}

impl fmt::Display for ParsePartitionerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePartitionerError::UnknownStrategy(s) => {
                write!(
                    f,
                    "unknown partitioner {s:?} (expected all-to-alice, all-to-bob, \
                     alternating, random(<seed>), parity-sum, or low-half)"
                )
            }
            ParsePartitionerError::BadSeed(s) => {
                write!(f, "partitioner seed {s:?} is not an unsigned integer")
            }
        }
    }
}

impl std::error::Error for ParsePartitionerError {}

impl std::str::FromStr for Partitioner {
    type Err = ParsePartitionerError;

    /// Parses the round-trip [`Display`](fmt::Display) form, e.g.
    /// `"alternating"` or `"random(7)"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "all-to-alice" => Ok(Partitioner::AllToAlice),
            "all-to-bob" => Ok(Partitioner::AllToBob),
            "alternating" => Ok(Partitioner::Alternating),
            "parity-sum" => Ok(Partitioner::ParitySum),
            "low-half" => Ok(Partitioner::LowHalf),
            other => match other
                .strip_prefix("random(")
                .and_then(|rest| rest.strip_suffix(')'))
            {
                Some(seed) => seed
                    .trim()
                    .parse()
                    .map(Partitioner::Random)
                    .map_err(|_| ParsePartitionerError::BadSeed(seed.trim().to_string())),
                None => Err(ParsePartitionerError::UnknownStrategy(other.to_string())),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_partition_invariants(p: &EdgePartition) {
        let merged = p.alice().union(p.bob());
        assert_eq!(&merged, p.whole(), "alice ∪ bob must equal the whole graph");
        assert_eq!(
            p.alice().num_edges() + p.bob().num_edges(),
            p.whole().num_edges(),
            "partition must be disjoint"
        );
        for &e in p.whole().edges() {
            assert!(p.owner(e).is_some());
        }
    }

    #[test]
    fn all_partitioners_are_valid_partitions() {
        let g = gen::gnp(40, 0.2, 11);
        for part in Partitioner::family(7) {
            let p = part.split(&g);
            check_partition_invariants(&p);
        }
    }

    #[test]
    fn all_to_alice_gives_bob_nothing() {
        let g = gen::cycle(10);
        let p = Partitioner::AllToAlice.split(&g);
        assert_eq!(p.alice().num_edges(), 10);
        assert_eq!(p.bob().num_edges(), 0);
        assert_eq!(p.owner(g.edges()[0]), Some(Party::Alice));
    }

    #[test]
    fn alternating_splits_roughly_in_half() {
        let g = gen::complete(8); // 28 edges
        let p = Partitioner::Alternating.split(&g);
        assert_eq!(p.alice().num_edges(), 14);
        assert_eq!(p.bob().num_edges(), 14);
    }

    #[test]
    fn random_split_deterministic_per_seed() {
        let g = gen::gnp(30, 0.3, 2);
        let p1 = Partitioner::Random(5).split(&g);
        let p2 = Partitioner::Random(5).split(&g);
        assert_eq!(p1.alice().edges(), p2.alice().edges());
    }

    #[test]
    fn degrees_add_up_per_vertex() {
        let g = gen::gnp(25, 0.4, 3);
        let p = Partitioner::Random(9).split(&g);
        for v in g.vertices() {
            assert_eq!(
                p.alice().degree(v) + p.bob().degree(v),
                g.degree(v),
                "N(v) = N_A(v) ⊔ N_B(v)"
            );
        }
    }

    #[test]
    fn owner_of_non_edge_is_none() {
        let g = gen::path(4);
        let p = Partitioner::Alternating.split(&g);
        assert_eq!(p.owner(Edge::new(VertexId(0), VertexId(3))), None);
    }

    #[test]
    fn party_other_flips() {
        assert_eq!(Party::Alice.other(), Party::Bob);
        assert_eq!(Party::Bob.other(), Party::Alice);
    }

    #[test]
    fn partitioner_display_round_trips() {
        for part in Partitioner::family(123_456_789) {
            let text = part.to_string();
            let back: Partitioner = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, part, "{text} must round-trip");
        }
        assert_eq!(
            " random( 7 ) ".parse::<Partitioner>(),
            Ok(Partitioner::Random(7))
        );
    }

    #[test]
    fn partitioner_parsing_rejects_malformed_input() {
        assert_eq!(
            "frobnicate".parse::<Partitioner>(),
            Err(ParsePartitionerError::UnknownStrategy("frobnicate".into()))
        );
        assert_eq!(
            "random(-1)".parse::<Partitioner>(),
            Err(ParsePartitionerError::BadSeed("-1".into()))
        );
        assert_eq!(
            "random(7".parse::<Partitioner>(),
            Err(ParsePartitionerError::UnknownStrategy("random(7".into()))
        );
    }
}
