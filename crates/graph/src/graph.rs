//! The immutable simple undirected graph type used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Index of a vertex in a [`Graph`].
///
/// Vertices of an `n`-vertex graph are `0..n`. The newtype prevents
/// accidentally mixing vertex indices with color indices or edge
/// indices (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use bichrome_graph::VertexId;
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the vertex index as a `usize`, for indexing into arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(i: u32) -> Self {
        VertexId(i)
    }
}

/// Index of an edge in a [`Graph`]'s sorted edge list.
///
/// Edges of an `m`-edge graph are `0..m`, in the lexicographic order
/// of [`Graph::edges`]. The id is the key of the *dense* hot-path
/// layer: [`Graph::edge`] recovers the endpoints in O(1),
/// [`Graph::edge_id`] resolves endpoints to the id in O(log deg), and
/// [`EdgeColoring`](crate::coloring::EdgeColoring) stores colors in a
/// flat `Vec` indexed by it — no hashing anywhere on the trial hot
/// path.
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, EdgeId};
/// let g = gen::cycle(5);
/// for i in 0..g.num_edges() {
///     let id = EdgeId(i as u32);
///     let e = g.edge(id);
///     assert_eq!(g.edge_id(e.u(), e.v()), Some(id)); // round-trips
/// }
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the edge index as a `usize`, for indexing into arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(i: u32) -> Self {
        EdgeId(i)
    }
}

/// An undirected edge `{u, v}` of a [`Graph`], stored with `u < v`.
///
/// Construct through [`Edge::new`], which normalizes endpoint order so
/// that `Edge::new(a, b) == Edge::new(b, a)`.
///
/// # Example
///
/// ```
/// use bichrome_graph::{Edge, VertexId};
/// let e = Edge::new(VertexId(5), VertexId(2));
/// assert_eq!(e.u(), VertexId(2));
/// assert_eq!(e.v(), VertexId(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not simple-graph edges).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not allowed in a simple graph");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints as a pair `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of {self}");
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn is_incident_to(self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }

    /// Whether this edge shares an endpoint with `other`.
    #[inline]
    pub fn is_adjacent_to(self, other: Edge) -> bool {
        self.is_incident_to(other.u) || self.is_incident_to(other.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

/// An immutable simple undirected graph.
///
/// Adjacency is stored in compressed-sparse-row form: one flat
/// neighbor array plus per-vertex offsets, so neighborhood iteration is
/// cache friendly and `deg(v)` is O(1). Build one with
/// [`GraphBuilder`](crate::GraphBuilder) or one of the generators in
/// [`gen`](crate::gen).
///
/// # Example
///
/// ```
/// use bichrome_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(VertexId(0), VertexId(1));
/// b.add_edge(VertexId(1), VertexId(2));
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(VertexId(1)), 2);
/// assert_eq!(g.max_degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: u32,
    /// CSR offsets, length n+1.
    offsets: Vec<u32>,
    /// Flat neighbor list, length 2m.
    neighbors: Vec<VertexId>,
    /// Companion to `neighbors`: `neighbor_edge_ids[k]` is the id of
    /// the edge joining the vertex to `neighbors[k]`, so iterating a
    /// vertex's incidence list yields `(VertexId, EdgeId)` pairs with
    /// zero lookups.
    neighbor_edge_ids: Vec<EdgeId>,
    /// Sorted edge list (u < v within each edge, lexicographic order),
    /// shared behind an `Arc` so dense edge-indexed structures
    /// (`EdgeColoring`) can borrow the id space without copying it.
    edges: Arc<[Edge]>,
    /// Maximum degree.
    max_degree: u32,
}

impl Graph {
    pub(crate) fn from_parts(n: u32, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges sorted+deduped"
        );
        let mut deg = vec![0u32; n as usize];
        for e in &edges {
            deg[e.u().index()] += 1;
            deg[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n as usize].to_vec();
        let mut neighbors = vec![VertexId(0); 2 * edges.len()];
        let mut neighbor_edge_ids = vec![EdgeId(0); 2 * edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let (u, v) = e.endpoints();
            let id = EdgeId(i as u32);
            neighbors[cursor[u.index()] as usize] = v;
            neighbor_edge_ids[cursor[u.index()] as usize] = id;
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()] as usize] = u;
            neighbor_edge_ids[cursor[v.index()] as usize] = id;
            cursor[v.index()] += 1;
        }
        // Filling in lexicographic edge order leaves every neighbor
        // list sorted already: w's incident edges are {a, w} with
        // a < w (ascending a) followed by {w, b} with b > w
        // (ascending b), and all a's precede all b's.
        debug_assert!((0..n as usize).all(|v| {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        let max_degree = deg.iter().copied().max().unwrap_or(0);
        Graph {
            n,
            offsets,
            neighbors,
            neighbor_edge_ids,
            edges: edges.into(),
            max_degree,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Maximum degree Δ of the graph (0 for an empty graph).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n).map(VertexId)
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The sorted, deduplicated edge list. [`EdgeId`]`(i)` names
    /// `edges()[i]`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The shared handle to the sorted edge list — the [`EdgeId`]
    /// space. Cloning is O(1); dense structures keep it so they can
    /// resolve [`Edge`]-keyed calls without touching the graph.
    #[inline]
    pub fn edges_shared(&self) -> Arc<[Edge]> {
        Arc::clone(&self.edges)
    }

    /// The endpoints of edge `id`, in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// The id of edge `{u, v}`, or `None` if it is not an edge.
    /// O(log deg) via binary search in the sorted neighbor slice of
    /// the lower-degree endpoint.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let k = self.neighbors(a).binary_search(&b).ok()?;
        Some(self.neighbor_edge_ids(a)[k])
    }

    /// The edge ids incident to `v`, aligned with
    /// [`neighbors`](Graph::neighbors): `neighbor_edge_ids(v)[k]` is
    /// the id of the edge `{v, neighbors(v)[k]}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbor_edge_ids[lo..hi]
    }

    /// Iterator over `(neighbor, edge id)` pairs incident to `v`, in
    /// ascending neighbor order, with zero per-edge lookups.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_edge_ids(v).iter().copied())
    }

    /// Whether `{u, v}` is an edge. O(log deg) via binary search.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Vertices of degree exactly `d`.
    pub fn vertices_of_degree(&self, d: usize) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.degree(v) == d).collect()
    }

    /// Whether the given vertex set is independent (no edge inside it).
    pub fn is_independent_set(&self, set: &[VertexId]) -> bool {
        let mut marked = vec![false; self.num_vertices()];
        for &v in set {
            marked[v.index()] = true;
        }
        self.edges
            .iter()
            .all(|e| !(marked[e.u().index()] && marked[e.v().index()]))
    }

    /// Returns the subgraph on the same vertex set containing exactly the
    /// edges for which `keep` returns `true`.
    pub fn edge_subgraph(&self, mut keep: impl FnMut(Edge) -> bool) -> Graph {
        self.edge_subgraph_where(|_, e| keep(e))
    }

    /// Like [`edge_subgraph`](Graph::edge_subgraph), but `keep` also
    /// receives each edge's [`EdgeId`] — the natural shape when the
    /// kept set is an id-indexed bitmap rather than an `Edge` set.
    pub fn edge_subgraph_where(&self, mut keep: impl FnMut(EdgeId, Edge) -> bool) -> Graph {
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .enumerate()
            .filter(|&(i, &e)| keep(EdgeId(i as u32), e))
            .map(|(_, &e)| e)
            .collect();
        Graph::from_parts(self.n, edges)
    }

    /// Union of this graph with another graph on the same vertex set.
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "union requires equal vertex sets");
        let mut edges: Vec<Edge> = self
            .edges
            .iter()
            .chain(other.edges.iter())
            .copied()
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Graph::from_parts(self.n, edges)
    }

    /// Sum of all vertex degrees, i.e. `2m`.
    pub fn total_degree(&self) -> usize {
        2 * self.num_edges()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={})",
            self.num_vertices(),
            self.num_edges(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(2));
        b.build()
    }

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(VertexId(7), VertexId(3));
        assert_eq!(e.u(), VertexId(3));
        assert_eq!(e.v(), VertexId(7));
        assert_eq!(e, Edge::new(VertexId(3), VertexId(7)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(VertexId(1), VertexId(1));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(4));
        assert_eq!(e.other(VertexId(1)), VertexId(4));
        assert_eq!(e.other(VertexId(4)), VertexId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(VertexId(1), VertexId(4)).other(VertexId(2));
    }

    #[test]
    fn edge_adjacency() {
        let e1 = Edge::new(VertexId(0), VertexId(1));
        let e2 = Edge::new(VertexId(1), VertexId(2));
        let e3 = Edge::new(VertexId(2), VertexId(3));
        assert!(e1.is_adjacent_to(e2));
        assert!(!e1.is_adjacent_to(e3));
    }

    #[test]
    fn triangle_basic_invariants() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(VertexId(2), VertexId(4));
        b.add_edge(VertexId(2), VertexId(0));
        b.add_edge(VertexId(2), VertexId(3));
        b.add_edge(VertexId(2), VertexId(1));
        let g = b.build();
        assert_eq!(
            g.neighbors(VertexId(2)),
            &[VertexId(0), VertexId(1), VertexId(3), VertexId(4)]
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.total_degree(), 0);
        for v in g.vertices() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn independent_set_detection() {
        let g = triangle();
        assert!(g.is_independent_set(&[VertexId(0)]));
        assert!(!g.is_independent_set(&[VertexId(0), VertexId(1)]));
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = triangle();
        let h = g.edge_subgraph(|e| e.is_incident_to(VertexId(0)));
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.degree(VertexId(0)), 2);
        assert_eq!(h.degree(VertexId(1)), 1);
    }

    #[test]
    fn union_merges_and_dedups() {
        let mut a = GraphBuilder::new(4);
        a.add_edge(VertexId(0), VertexId(1));
        a.add_edge(VertexId(1), VertexId(2));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(2), VertexId(3));
        let u = a.build().union(&b.build());
        assert_eq!(u.num_edges(), 3);
    }

    #[test]
    fn vertices_of_degree() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(0), VertexId(2));
        let g = b.build();
        assert_eq!(g.vertices_of_degree(2), vec![VertexId(0)]);
        assert_eq!(g.vertices_of_degree(1), vec![VertexId(1), VertexId(2)]);
        assert_eq!(g.vertices_of_degree(0), vec![VertexId(3)]);
    }

    #[test]
    fn edge_ids_round_trip() {
        let g = crate::gen::gnp(30, 0.2, 5);
        for i in 0..g.num_edges() {
            let id = EdgeId(i as u32);
            let e = g.edge(id);
            assert_eq!(g.edge_id(e.u(), e.v()), Some(id));
            assert_eq!(g.edge_id(e.v(), e.u()), Some(id));
        }
        assert_eq!(g.edge_id(VertexId(0), VertexId(0)), None);
    }

    #[test]
    fn incident_edge_ids_align_with_neighbors() {
        let g = crate::gen::gnm_max_degree(20, 40, 6, 3);
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).len(), g.neighbor_edge_ids(v).len());
            for (u, id) in g.incident_edges(v) {
                assert_eq!(g.edge(id), Edge::new(u, v));
            }
        }
    }

    #[test]
    fn edge_subgraph_where_passes_matching_ids() {
        let g = triangle();
        // Keep exactly the edge with id 1 — {0, 2} in sorted order.
        let h = g.edge_subgraph_where(|id, e| {
            assert_eq!(g.edge(id), e);
            id == EdgeId(1)
        });
        assert_eq!(h.edges(), &[Edge::new(VertexId(0), VertexId(2))]);
    }

    #[test]
    fn display_impls_nonempty() {
        let g = triangle();
        assert!(!format!("{g}").is_empty());
        assert!(!format!("{}", VertexId(3)).is_empty());
        assert!(!format!("{}", Edge::new(VertexId(0), VertexId(1))).is_empty());
    }
}
