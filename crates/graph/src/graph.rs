//! The immutable simple undirected graph type used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a vertex in a [`Graph`].
///
/// Vertices of an `n`-vertex graph are `0..n`. The newtype prevents
/// accidentally mixing vertex indices with color indices or edge
/// indices (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use bichrome_graph::VertexId;
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the vertex index as a `usize`, for indexing into arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(i: u32) -> Self {
        VertexId(i)
    }
}

/// An undirected edge `{u, v}` of a [`Graph`], stored with `u < v`.
///
/// Construct through [`Edge::new`], which normalizes endpoint order so
/// that `Edge::new(a, b) == Edge::new(b, a)`.
///
/// # Example
///
/// ```
/// use bichrome_graph::{Edge, VertexId};
/// let e = Edge::new(VertexId(5), VertexId(2));
/// assert_eq!(e.u(), VertexId(2));
/// assert_eq!(e.v(), VertexId(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not simple-graph edges).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not allowed in a simple graph");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints as a pair `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of {self}");
        }
    }

    /// Whether `x` is one of the two endpoints.
    #[inline]
    pub fn is_incident_to(self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }

    /// Whether this edge shares an endpoint with `other`.
    #[inline]
    pub fn is_adjacent_to(self, other: Edge) -> bool {
        self.is_incident_to(other.u) || self.is_incident_to(other.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

/// An immutable simple undirected graph.
///
/// Adjacency is stored in compressed-sparse-row form: one flat
/// neighbor array plus per-vertex offsets, so neighborhood iteration is
/// cache friendly and `deg(v)` is O(1). Build one with
/// [`GraphBuilder`](crate::GraphBuilder) or one of the generators in
/// [`gen`](crate::gen).
///
/// # Example
///
/// ```
/// use bichrome_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(VertexId(0), VertexId(1));
/// b.add_edge(VertexId(1), VertexId(2));
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(VertexId(1)), 2);
/// assert_eq!(g.max_degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: u32,
    /// CSR offsets, length n+1.
    offsets: Vec<u32>,
    /// Flat neighbor list, length 2m.
    neighbors: Vec<VertexId>,
    /// Sorted edge list (u < v within each edge, lexicographic order).
    edges: Vec<Edge>,
    /// Maximum degree.
    max_degree: u32,
}

impl Graph {
    pub(crate) fn from_parts(n: u32, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges sorted+deduped"
        );
        let mut deg = vec![0u32; n as usize];
        for e in &edges {
            deg[e.u().index()] += 1;
            deg[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n as usize].to_vec();
        let mut neighbors = vec![VertexId(0); 2 * edges.len()];
        for e in &edges {
            let (u, v) = e.endpoints();
            neighbors[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        // Neighbor lists come out sorted because the edge list is sorted
        // lexicographically only for the smaller endpoint; sort each list so
        // `neighbors()` has a deterministic, documented order.
        for v in 0..n as usize {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }
        let max_degree = deg.iter().copied().max().unwrap_or(0);
        Graph {
            n,
            offsets,
            neighbors,
            edges,
            max_degree,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Maximum degree Δ of the graph (0 for an empty graph).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n).map(VertexId)
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The sorted, deduplicated edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Whether `{u, v}` is an edge. O(log deg) via binary search.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Vertices of degree exactly `d`.
    pub fn vertices_of_degree(&self, d: usize) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.degree(v) == d).collect()
    }

    /// Whether the given vertex set is independent (no edge inside it).
    pub fn is_independent_set(&self, set: &[VertexId]) -> bool {
        let mut marked = vec![false; self.num_vertices()];
        for &v in set {
            marked[v.index()] = true;
        }
        self.edges
            .iter()
            .all(|e| !(marked[e.u().index()] && marked[e.v().index()]))
    }

    /// Returns the subgraph on the same vertex set containing exactly the
    /// edges for which `keep` returns `true`.
    pub fn edge_subgraph(&self, mut keep: impl FnMut(Edge) -> bool) -> Graph {
        let edges: Vec<Edge> = self.edges.iter().copied().filter(|&e| keep(e)).collect();
        Graph::from_parts(self.n, edges)
    }

    /// Union of this graph with another graph on the same vertex set.
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "union requires equal vertex sets");
        let mut edges: Vec<Edge> = self
            .edges
            .iter()
            .chain(other.edges.iter())
            .copied()
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Graph::from_parts(self.n, edges)
    }

    /// Sum of all vertex degrees, i.e. `2m`.
    pub fn total_degree(&self) -> usize {
        2 * self.num_edges()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={})",
            self.num_vertices(),
            self.num_edges(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(2));
        b.build()
    }

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(VertexId(7), VertexId(3));
        assert_eq!(e.u(), VertexId(3));
        assert_eq!(e.v(), VertexId(7));
        assert_eq!(e, Edge::new(VertexId(3), VertexId(7)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(VertexId(1), VertexId(1));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(4));
        assert_eq!(e.other(VertexId(1)), VertexId(4));
        assert_eq!(e.other(VertexId(4)), VertexId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(VertexId(1), VertexId(4)).other(VertexId(2));
    }

    #[test]
    fn edge_adjacency() {
        let e1 = Edge::new(VertexId(0), VertexId(1));
        let e2 = Edge::new(VertexId(1), VertexId(2));
        let e3 = Edge::new(VertexId(2), VertexId(3));
        assert!(e1.is_adjacent_to(e2));
        assert!(!e1.is_adjacent_to(e3));
    }

    #[test]
    fn triangle_basic_invariants() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    fn neighbors_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(VertexId(2), VertexId(4));
        b.add_edge(VertexId(2), VertexId(0));
        b.add_edge(VertexId(2), VertexId(3));
        b.add_edge(VertexId(2), VertexId(1));
        let g = b.build();
        assert_eq!(
            g.neighbors(VertexId(2)),
            &[VertexId(0), VertexId(1), VertexId(3), VertexId(4)]
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.total_degree(), 0);
        for v in g.vertices() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn independent_set_detection() {
        let g = triangle();
        assert!(g.is_independent_set(&[VertexId(0)]));
        assert!(!g.is_independent_set(&[VertexId(0), VertexId(1)]));
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = triangle();
        let h = g.edge_subgraph(|e| e.is_incident_to(VertexId(0)));
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.degree(VertexId(0)), 2);
        assert_eq!(h.degree(VertexId(1)), 1);
    }

    #[test]
    fn union_merges_and_dedups() {
        let mut a = GraphBuilder::new(4);
        a.add_edge(VertexId(0), VertexId(1));
        a.add_edge(VertexId(1), VertexId(2));
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(2), VertexId(3));
        let u = a.build().union(&b.build());
        assert_eq!(u.num_edges(), 3);
    }

    #[test]
    fn vertices_of_degree() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(0), VertexId(2));
        let g = b.build();
        assert_eq!(g.vertices_of_degree(2), vec![VertexId(0)]);
        assert_eq!(g.vertices_of_degree(1), vec![VertexId(1), VertexId(2)]);
        assert_eq!(g.vertices_of_degree(0), vec![VertexId(3)]);
    }

    #[test]
    fn display_impls_nonempty() {
        let g = triangle();
        assert!(!format!("{g}").is_empty());
        assert!(!format!("{}", VertexId(3)).is_empty());
        assert!(!format!("{}", Edge::new(VertexId(0), VertexId(1))).is_empty());
    }
}
