//! Bipartite maximum matching (Hopcroft–Karp) and the Δ-perfect
//! matching of Lemma 5.3.
//!
//! Lemma 5.3 states that in a graph with maximum degree Δ whose
//! degree-Δ vertices form an independent set, there is a matching
//! covering every degree-Δ vertex. The paper proves this with an LP
//! argument; here we *find* the matching with Hopcroft–Karp on the
//! bipartite graph (degree-Δ vertices vs. the rest) and the algorithms
//! in `bichrome-core::edge` consume it.

use crate::graph::{Edge, Graph, VertexId};

const NIL: usize = usize::MAX;

/// Maximum matching in a bipartite graph given by left-to-right
/// adjacency lists.
///
/// `adj[l]` lists the right-vertices adjacent to left-vertex `l`;
/// right vertices are `0..n_right`. Returns `pair_left` where
/// `pair_left[l]` is the matched right vertex of `l`, or `None`.
///
/// Runs in `O(E sqrt(V))` (Hopcroft–Karp).
///
/// # Panics
///
/// Panics if an adjacency entry is `>= n_right`.
pub fn hopcroft_karp(adj: &[Vec<usize>], n_right: usize) -> Vec<Option<usize>> {
    let n_left = adj.len();
    for nbrs in adj {
        for &r in nbrs {
            assert!(r < n_right, "right vertex {r} out of range {n_right}");
        }
    }
    let mut pair_l = vec![NIL; n_left];
    let mut pair_r = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];

    // BFS builds layered distances from free left vertices.
    let bfs = |pair_l: &[usize], pair_r: &[usize], dist: &mut [usize]| -> bool {
        let mut queue = std::collections::VecDeque::new();
        for l in 0..n_left {
            if pair_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = usize::MAX;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = pair_r[r];
                if next == NIL {
                    found = true;
                } else if dist[next] == usize::MAX {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        found
    };

    // DFS augments along the layered structure.
    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        pair_l: &mut [usize],
        pair_r: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let next = pair_r[r];
            if next == NIL || (dist[next] == dist[l] + 1 && dfs(next, adj, pair_l, pair_r, dist)) {
                pair_l[l] = r;
                pair_r[r] = l;
                return true;
            }
        }
        dist[l] = usize::MAX;
        false
    }

    while bfs(&pair_l, &pair_r, &mut dist) {
        for l in 0..n_left {
            if pair_l[l] == NIL {
                let _ = dfs(l, adj, &mut pair_l, &mut pair_r, &mut dist);
            }
        }
    }

    pair_l
        .into_iter()
        .map(|r| if r == NIL { None } else { Some(r) })
        .collect()
}

/// Finds a matching in `g` covering every vertex in `targets`, using
/// only edges with exactly one endpoint in `targets`.
///
/// Returns `None` if no such matching exists. By Lemma 5.3 a matching
/// always exists when `targets` is the set of maximum-degree vertices,
/// every target has degree Δ, and `targets` is independent.
///
/// # Panics
///
/// Panics if `targets` contains duplicate vertices.
pub fn matching_covering(g: &Graph, targets: &[VertexId]) -> Option<Vec<Edge>> {
    let mut is_target = vec![false; g.num_vertices()];
    for &t in targets {
        assert!(!is_target[t.index()], "duplicate target {t}");
        is_target[t.index()] = true;
    }
    // Right side: all non-target vertices, compacted.
    let mut right_id = vec![usize::MAX; g.num_vertices()];
    let mut right_vertices = Vec::new();
    for v in g.vertices() {
        if !is_target[v.index()] {
            right_id[v.index()] = right_vertices.len();
            right_vertices.push(v);
        }
    }
    let adj: Vec<Vec<usize>> = targets
        .iter()
        .map(|&t| {
            g.neighbors(t)
                .iter()
                .filter(|&&u| !is_target[u.index()])
                .map(|&u| right_id[u.index()])
                .collect()
        })
        .collect();
    let pairs = hopcroft_karp(&adj, right_vertices.len());
    let mut out = Vec::with_capacity(targets.len());
    for (i, p) in pairs.iter().enumerate() {
        let r = (*p)?;
        out.push(Edge::new(targets[i], right_vertices[r]));
    }
    Some(out)
}

/// The Δ-perfect matching of Lemma 5.3: a matching covering all
/// maximum-degree vertices of `g`.
///
/// Returns an empty matching for an edgeless graph.
///
/// # Errors
///
/// Returns [`DeltaMatchingError`] if the maximum-degree vertices do not
/// form an independent set (precondition of the lemma), or if — against
/// the lemma — no covering matching exists (impossible for valid
/// inputs; kept as a checked error rather than a panic so the protocol
/// layer can surface violated assumptions).
pub fn delta_perfect_matching(g: &Graph) -> Result<Vec<Edge>, DeltaMatchingError> {
    let d = g.max_degree();
    if d == 0 {
        return Ok(Vec::new());
    }
    let targets = g.vertices_of_degree(d);
    if !g.is_independent_set(&targets) {
        return Err(DeltaMatchingError::MaxDegreeNotIndependent);
    }
    matching_covering(g, &targets).ok_or(DeltaMatchingError::NoCoveringMatching)
}

/// Failure of [`delta_perfect_matching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMatchingError {
    /// The degree-Δ vertices are not an independent set.
    MaxDegreeNotIndependent,
    /// No matching covers all degree-Δ vertices (cannot happen for
    /// inputs satisfying Lemma 5.3's precondition).
    NoCoveringMatching,
}

impl std::fmt::Display for DeltaMatchingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaMatchingError::MaxDegreeNotIndependent => {
                write!(f, "maximum-degree vertices are not an independent set")
            }
            DeltaMatchingError::NoCoveringMatching => {
                write!(f, "no matching covers all maximum-degree vertices")
            }
        }
    }
}

impl std::error::Error for DeltaMatchingError {}

/// Checks that `edges` form a matching (pairwise non-adjacent edges).
///
/// Uses a dense mark vector over the endpoint range (bounded by the
/// largest vertex id present) instead of hashing — O(k + max_id) for
/// `k` edges.
pub fn is_matching(edges: &[Edge]) -> bool {
    let max_id = match edges.iter().map(|e| e.v().index()).max() {
        Some(m) => m,
        None => return true,
    };
    let mut seen = vec![false; max_id + 1];
    for e in edges {
        if seen[e.u().index()] || seen[e.v().index()] {
            return false;
        }
        seen[e.u().index()] = true;
        seen[e.v().index()] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn hk_perfect_on_complete_bipartite() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let pairs = hopcroft_karp(&adj, 4);
        assert!(pairs.iter().all(|p| p.is_some()));
        let mut rs: Vec<usize> = pairs.into_iter().flatten().collect();
        rs.sort_unstable();
        assert_eq!(rs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hk_respects_structure() {
        // Left 0 -> {0}, Left 1 -> {0, 1}: maximum matching has size 2.
        let adj = vec![vec![0], vec![0, 1]];
        let pairs = hopcroft_karp(&adj, 2);
        assert_eq!(pairs[0], Some(0));
        assert_eq!(pairs[1], Some(1));
    }

    #[test]
    fn hk_handles_unmatchable() {
        // Two left vertices compete for one right vertex.
        let adj = vec![vec![0], vec![0]];
        let pairs = hopcroft_karp(&adj, 1);
        let matched = pairs.iter().filter(|p| p.is_some()).count();
        assert_eq!(matched, 1);
    }

    #[test]
    fn hk_empty() {
        assert!(hopcroft_karp(&[], 0).is_empty());
        assert_eq!(hopcroft_karp(&[vec![]], 3), vec![None]);
    }

    #[test]
    fn delta_matching_on_star_union() {
        // Two disjoint stars: centers are the max-degree vertices.
        let mut b = GraphBuilder::new(8);
        for i in 1..4 {
            b.add_edge(VertexId(0), VertexId(i));
        }
        for i in 5..8 {
            b.add_edge(VertexId(4), VertexId(i));
        }
        let g = b.build();
        let m = delta_perfect_matching(&g).expect("matching exists");
        assert!(is_matching(&m));
        assert_eq!(m.len(), 2);
        let covered: Vec<VertexId> = m.iter().flat_map(|e| [e.u(), e.v()]).collect();
        assert!(covered.contains(&VertexId(0)));
        assert!(covered.contains(&VertexId(4)));
    }

    #[test]
    fn delta_matching_rejects_adjacent_hubs() {
        // Path of 3: the two degree-... K2: both endpoints are max degree
        // and adjacent.
        let g = gen::complete(2);
        assert_eq!(
            delta_perfect_matching(&g),
            Err(DeltaMatchingError::MaxDegreeNotIndependent)
        );
    }

    #[test]
    fn delta_matching_on_generated_instances() {
        for seed in 0..10 {
            let g = gen::independent_max_degree(80, 7, 9, seed);
            let m = delta_perfect_matching(&g).expect("Lemma 5.3 guarantees a matching");
            assert!(is_matching(&m));
            let d = g.max_degree();
            let mut covered = vec![false; g.num_vertices()];
            for e in &m {
                covered[e.u().index()] = true;
                covered[e.v().index()] = true;
            }
            for v in g.vertices_of_degree(d) {
                assert!(covered[v.index()], "degree-Δ vertex {v} uncovered");
            }
        }
    }

    #[test]
    fn delta_matching_empty_graph() {
        assert_eq!(delta_perfect_matching(&gen::empty(5)), Ok(Vec::new()));
    }

    #[test]
    fn is_matching_detects_shared_endpoint() {
        let e1 = Edge::new(VertexId(0), VertexId(1));
        let e2 = Edge::new(VertexId(1), VertexId(2));
        let e3 = Edge::new(VertexId(2), VertexId(3));
        assert!(is_matching(&[e1, e3]));
        assert!(!is_matching(&[e1, e2]));
        assert!(is_matching(&[]));
    }
}
