//! Structural graph analysis helpers: traversal, connectivity,
//! bipartiteness, and degree statistics.
//!
//! These back the generators' own tests, the experiment harness's
//! workload descriptions, and the examples; none of the protocols
//! depend on them.

use crate::graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Breadth-first search from `start`; returns the distance of every
/// vertex (`None` for unreachable ones).
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn bfs_distances(g: &Graph, start: VertexId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_vertices()];
    dist[start.index()] = Some(0);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("enqueued with a distance");
        for &u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components: returns `(component_id per vertex, count)`.
/// Isolated vertices form their own components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for s in g.vertices() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        let mut queue = VecDeque::from([s]);
        comp[s.index()] = id;
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = id;
                    queue.push_back(u);
                }
            }
        }
    }
    (comp, count)
}

/// Whether `g` is connected (the empty graph and a single vertex count
/// as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() <= 1 || connected_components(g).1 == 1
}

/// Checks bipartiteness; returns a two-coloring (`false`/`true` side
/// per vertex) or `None` if an odd cycle exists.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let n = g.num_vertices();
    let mut side: Vec<Option<bool>> = vec![None; n];
    for s in g.vertices() {
        if side[s.index()].is_some() {
            continue;
        }
        side[s.index()] = Some(false);
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            let sv = side[v.index()].expect("enqueued with a side");
            for &u in g.neighbors(v) {
                match side[u.index()] {
                    None => {
                        side[u.index()] = Some(!sv);
                        queue.push_back(u);
                    }
                    Some(su) if su == sv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(side.into_iter().map(|s| s.expect("all assigned")).collect())
}

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree (Δ).
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Number of vertices attaining Δ.
    pub num_max: usize,
}

/// Computes [`DegreeStats`]; all-zero for the empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.num_vertices() == 0 {
        return DegreeStats::default();
    }
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    DegreeStats {
        min: degrees.iter().copied().min().unwrap_or(0),
        max,
        mean: g.total_degree() as f64 / g.num_vertices() as f64,
        num_max: degrees.iter().filter(|&&d| d == max).count(),
    }
}

/// Histogram of degrees: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// The diameter of a connected graph (longest shortest path), or
/// `None` if disconnected or empty. `O(n·m)` — intended for test-sized
/// graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_vertices() == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in g.vertices() {
        let far = bfs_distances(g, v)
            .into_iter()
            .map(|d| d.expect("connected"))
            .max()
            .unwrap_or(0);
        best = best.max(far);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_path() {
        let g = gen::path(5);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = gen::empty(3);
        let d = bfs_distances(&g, VertexId(1));
        assert_eq!(d, vec![None, Some(0), None]);
    }

    #[test]
    fn components_count() {
        let g = gen::disjoint_copies(&gen::cycle(4), 3);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
        assert!(!is_connected(&g));
        assert!(is_connected(&gen::cycle(5)));
        assert!(is_connected(&gen::empty(1)));
        assert!(is_connected(&gen::empty(0)));
    }

    #[test]
    fn bipartite_detection() {
        assert!(bipartition(&gen::cycle(6)).is_some());
        assert!(bipartition(&gen::cycle(7)).is_none());
        assert!(bipartition(&gen::complete_bipartite(3, 4)).is_some());
        assert!(bipartition(&gen::complete(3)).is_none());
        let sides = bipartition(&gen::path(4)).expect("paths are bipartite");
        assert_eq!(sides, vec![false, true, false, true]);
    }

    #[test]
    fn stats_and_histogram() {
        let g = gen::star(5);
        let s = degree_stats(&g);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.num_max, 1);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(degree_stats(&gen::empty(0)), DegreeStats::default());
    }

    #[test]
    fn diameter_cases() {
        assert_eq!(diameter(&gen::path(5)), Some(4));
        assert_eq!(diameter(&gen::cycle(6)), Some(3));
        assert_eq!(diameter(&gen::complete(4)), Some(1));
        assert_eq!(diameter(&gen::disjoint_copies(&gen::path(2), 2)), None);
        assert_eq!(diameter(&gen::empty(0)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn components_partition_vertices(n in 1usize..40, seed in 0u64..500) {
            let g = gen::gnp(n, 0.08, seed);
            let (comp, count) = connected_components(&g);
            prop_assert!(count >= 1);
            prop_assert!(comp.iter().all(|&c| c < count));
            // Every edge stays within one component.
            for e in g.edges() {
                prop_assert_eq!(comp[e.u().index()], comp[e.v().index()]);
            }
        }

        #[test]
        fn bipartition_is_proper_when_it_exists(n in 2usize..30, seed in 0u64..500) {
            let g = gen::gnp(n, 0.1, seed);
            if let Some(sides) = bipartition(&g) {
                for e in g.edges() {
                    prop_assert_ne!(sides[e.u().index()], sides[e.v().index()]);
                }
            } else {
                // Non-bipartite graphs contain an odd closed walk; at
                // minimum they have an edge.
                prop_assert!(g.num_edges() >= 3);
            }
        }

        #[test]
        fn degree_stats_consistent(n in 1usize..40, seed in 0u64..500) {
            let g = gen::gnp(n, 0.2, seed);
            let s = degree_stats(&g);
            prop_assert_eq!(s.max, g.max_degree());
            prop_assert!(s.min <= s.max);
            let hist = degree_histogram(&g);
            prop_assert_eq!(hist.iter().sum::<usize>(), n);
            prop_assert_eq!(hist[s.max], s.num_max);
        }

        #[test]
        fn bfs_distances_are_metric(n in 2usize..25, seed in 0u64..200) {
            let g = gen::gnp(n, 0.25, seed);
            let d0 = bfs_distances(&g, VertexId(0));
            // Distances along edges differ by at most one.
            for e in g.edges() {
                if let (Some(du), Some(dv)) = (d0[e.u().index()], d0[e.v().index()]) {
                    prop_assert!(du.abs_diff(dv) <= 1);
                }
            }
        }
    }
}
