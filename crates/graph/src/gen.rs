//! Graph generators for every family used in the paper and the
//! experiments.
//!
//! All randomized generators take an explicit `seed` and are fully
//! deterministic given it.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The edgeless graph on `n` vertices.
pub fn empty(n: usize) -> Graph {
    GraphBuilder::new(n).build()
}

/// The path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(VertexId(i as u32 - 1), VertexId(i as u32));
    }
    b.build()
}

/// The cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(VertexId(i as u32), VertexId(((i + 1) % n) as u32));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(VertexId(i as u32), VertexId(j as u32));
        }
    }
    b.build()
}

/// The star `K_{1,n-1}` with center `0`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(VertexId(0), VertexId(i as u32));
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` on vertices `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(VertexId(i as u32), VertexId((a + j) as u32));
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges is
/// present independently with probability `p`.
///
/// Implemented with geometric skipping (Batagelj–Brandes): instead of
/// flipping one coin per candidate pair (`O(n²)` draws), the
/// generator samples the gap to the next present edge directly, so
/// the expected work is `O(n + m)`. Still fully deterministic per
/// seed.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n < 2 || p == 0.0 {
        return GraphBuilder::new(n).build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Candidate pairs (i, j), i < j, linearized row-major; `k` walks
    // that index space, jumping Geometric(p)-distributed gaps.
    // ln_1p keeps ln(1-p) accurately negative even for p < 2^-53,
    // where `(1.0 - p).ln()` would round to 0 and turn every skip
    // into 0 (i.e. the complete graph instead of an empty one).
    let ln_q = (-p).ln_1p(); // finite and < 0 since 0 < p < 1
    let total = (n as u64) * (n as u64 - 1) / 2;
    let mut k: u64 = 0;
    let mut row = 0usize; // row of candidate k
    let mut row_start: u64 = 0; // linear index of (row, row+1)
    loop {
        let u: f64 = rng.gen();
        // Geometric skip: floor(ln(1-u) / ln(1-p)); 1-u > 0 since
        // u ∈ [0,1), and the `as` cast saturates huge values.
        let skip = ((1.0 - u).ln() / ln_q) as u64;
        k = k.saturating_add(skip);
        if k >= total {
            break;
        }
        // Rows only ever advance, so decoding is amortized O(n).
        while k >= row_start + (n - 1 - row) as u64 {
            row_start += (n - 1 - row) as u64;
            row += 1;
        }
        let col = row + 1 + (k - row_start) as usize;
        b.add_edge(VertexId(row as u32), VertexId(col as u32));
        k += 1;
    }
    b.build()
}

/// Random graph with **exactly** `m` edges chosen without
/// replacement, subject to a maximum-degree cap `dmax`.
///
/// Three phases, all deterministic per seed: plain rejection sampling
/// (`O(m)` expected on sparse inputs); if that stalls near
/// saturation, uniform draws from an explicit pool of the remaining
/// feasible candidate edges; and finally local edge swaps to free any
/// capacity a greedy draw stranded. The result always has exactly `m`
/// edges and `max_degree() <= dmax` — the old generator silently
/// returned *fewer* than `m` edges when its rejection cap tripped on
/// feasible dense inputs, systematically sparsifying near-saturated
/// graph families.
///
/// # Panics
///
/// Panics if `m > 0` while `n < 2` or `dmax == 0`, and on infeasible
/// parameters: `m > min(n·dmax/2, n·(n−1)/2)`.
pub fn gnm_max_degree(n: usize, m: usize, dmax: usize, seed: u64) -> Graph {
    if m == 0 {
        return GraphBuilder::new(n).build();
    }
    assert!(n >= 2, "need at least two vertices to place an edge");
    assert!(dmax >= 1, "dmax must be positive to place edges");
    let max_pairs = n * (n - 1) / 2;
    let capacity = n * dmax / 2;
    assert!(
        m <= max_pairs && m <= capacity,
        "infeasible: m = {m} exceeds min(n*dmax/2, n*(n-1)/2) = {} for n = {n}, dmax = {dmax}",
        capacity.min(max_pairs)
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    // `edges` (insertion-ordered) is the source of truth for scans
    // and the final build, so results never depend on hash-set
    // iteration order; `present` mirrors it for O(1) membership.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut present: std::collections::HashSet<(u32, u32)> =
        std::collections::HashSet::with_capacity(m);
    let ordered = |u: usize, v: usize| -> (u32, u32) {
        if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        }
    };

    // Phase 1: rejection sampling — the fast path while most draws
    // land.
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 20 * m + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || deg[u] >= dmax || deg[v] >= dmax {
            continue;
        }
        let key = ordered(u, v);
        if present.insert(key) {
            edges.push(key);
            deg[u] += 1;
            deg[v] += 1;
        }
    }

    // Phase 2: near saturation, draw uniformly from the pool of
    // still-feasible candidate edges, pruning entries invalidated by
    // later saturation as they surface.
    if edges.len() < m {
        let open: Vec<usize> = (0..n).filter(|&v| deg[v] < dmax).collect();
        let mut pool: Vec<(u32, u32)> = Vec::new();
        for (i, &u) in open.iter().enumerate() {
            for &v in &open[i + 1..] {
                if !present.contains(&(u as u32, v as u32)) {
                    pool.push((u as u32, v as u32));
                }
            }
        }
        while edges.len() < m && !pool.is_empty() {
            let key = pool.swap_remove(rng.gen_range(0..pool.len()));
            let (u, v) = (key.0 as usize, key.1 as usize);
            if deg[u] < dmax && deg[v] < dmax {
                present.insert(key);
                edges.push(key);
                deg[u] += 1;
                deg[v] += 1;
            }
        }
    }

    // Phase 3: a greedy draw can strand capacity (every remaining
    // open pair already adjacent); edge swaps — remove (x,y), add
    // (u,x) and (w,y), which keeps deg(x), deg(y) and gains one edge
    // — free it without breaching the cap.
    let mut repairs = 0usize;
    while edges.len() < m {
        repairs += 1;
        assert!(
            repairs <= 50 * m + 1000,
            "gnm_max_degree: failed to reach the feasible m = {m} edges \
             (n = {n}, dmax = {dmax}) — repair stalled; this is a bug"
        );
        let mut open: Vec<usize> = (0..n).filter(|&v| deg[v] < dmax).collect();
        open.shuffle(&mut rng);

        // (a) A non-adjacent open pair can simply be added.
        let direct = open.iter().enumerate().find_map(|(i, &u)| {
            open[i + 1..]
                .iter()
                .map(|&v| ordered(u, v))
                .find(|key| !present.contains(key))
        });
        if let Some(key) = direct {
            present.insert(key);
            edges.push(key);
            deg[key.0 as usize] += 1;
            deg[key.1 as usize] += 1;
            continue;
        }
        if edges.is_empty() {
            continue; // unreachable for feasible inputs; trips the assert
        }

        // (b) Swap against an existing edge. `u == w` (one open
        // vertex with ≥ 2 spare slots) is the single-deficit case.
        let mut slots: Vec<(usize, usize)> = Vec::new();
        for (i, &u) in open.iter().enumerate() {
            if deg[u] + 2 <= dmax {
                slots.push((u, u));
            }
            for &w in &open[i + 1..] {
                slots.push((u, w));
            }
        }
        let offset = rng.gen_range(0..edges.len());
        let mut swapped = false;
        'swap: for &(u, w) in &slots {
            for ei in 0..edges.len() {
                let idx = (offset + ei) % edges.len();
                let (x, y) = edges[idx];
                for (x, y) in [(x as usize, y as usize), (y as usize, x as usize)] {
                    if x == u || x == w || y == u || y == w {
                        continue;
                    }
                    let k1 = ordered(u, x);
                    let k2 = ordered(w, y);
                    if k1 == k2 || present.contains(&k1) || present.contains(&k2) {
                        continue;
                    }
                    let removed = edges.swap_remove(idx);
                    present.remove(&removed);
                    for key in [k1, k2] {
                        present.insert(key);
                        edges.push(key);
                    }
                    deg[u] += 1;
                    deg[w] += 1;
                    swapped = true;
                    break 'swap;
                }
            }
        }
        if swapped {
            continue;
        }

        // (c) No single swap applies: perturb by dropping a random
        // edge and retry from a different configuration.
        let removed = edges.swap_remove(rng.gen_range(0..edges.len()));
        present.remove(&removed);
        deg[removed.0 as usize] -= 1;
        deg[removed.1 as usize] -= 1;
    }

    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(VertexId(u), VertexId(v));
    }
    b.build()
}

/// Random near-`d`-regular graph: exactly `⌊n·d/2⌋` edges under the
/// degree cap `d`, so the average degree is within one of `d` and
/// `max_degree() <= d` always holds.
///
/// # Panics
///
/// Panics if the parameters are infeasible (`d > n - 1` on a graph
/// that would need more than `n(n-1)/2` edges) — see
/// [`gnm_max_degree`].
pub fn near_regular(n: usize, d: usize, seed: u64) -> Graph {
    gnm_max_degree(n, n * d / 2, d, seed)
}

/// The union-of-`C4` "learning problem" gadget from Section 2.3 of the
/// paper.
///
/// For each bit `x_i` of `bits`, four vertices `a_i, b_i, c_i, d_i`
/// (ids `4i .. 4i+3`) carry edges `{a,b}` and `{c,d}` always, plus
/// `{a,c}, {b,d}` if `x_i = 0` or `{a,d}, {b,c}` if `x_i = 1`. The
/// resulting graph is a disjoint union of 4-cycles with Δ = 2, and any
/// proper 3-vertex-coloring lets Bob reconstruct `bits` (see
/// `bichrome-lb::learning`).
pub fn c4_gadget_union(bits: &[bool]) -> Graph {
    let n = 4 * bits.len();
    let mut b = GraphBuilder::new(n);
    for (i, &x) in bits.iter().enumerate() {
        let base = (4 * i) as u32;
        let (a, bb, c, d) = (
            VertexId(base),
            VertexId(base + 1),
            VertexId(base + 2),
            VertexId(base + 3),
        );
        b.add_edge(a, bb);
        b.add_edge(c, d);
        if x {
            b.add_edge(a, d);
            b.add_edge(bb, c);
        } else {
            b.add_edge(a, c);
            b.add_edge(bb, d);
        }
    }
    b.build()
}

/// Random graph whose maximum-degree vertices form an independent set —
/// the precondition of Fournier's theorem (Proposition 3.5).
///
/// Construction: `hubs` designated hub vertices each receive exactly
/// `d` edges to non-hub vertices; non-hub vertices additionally get a
/// sprinkling of random edges among themselves while staying strictly
/// below degree `d`. The returned graph satisfies `max_degree() == d`
/// (for feasible parameters) with the degree-`d` vertices independent.
///
/// # Panics
///
/// Panics if the parameters are infeasible: requires
/// `hubs * d <= (n - hubs) * (d - 1)` and `hubs + d <= n` and `d >= 2`.
pub fn independent_max_degree(n: usize, d: usize, hubs: usize, seed: u64) -> Graph {
    assert!(d >= 2, "need d >= 2");
    assert!(
        hubs >= 1 && hubs + d <= n,
        "need hubs >= 1 and hubs + d <= n"
    );
    assert!(
        hubs * d <= (n - hubs) * (d - 1),
        "non-hub capacity too small: {hubs} hubs of degree {d} need ≤ {} slots",
        (n - hubs) * (d - 1)
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Non-hub vertices are hubs..n; keep their degree <= d-1.
    let mut deg = vec![0usize; n];
    let non_hubs: Vec<usize> = (hubs..n).collect();
    for h in 0..hubs {
        let mut chosen = std::collections::HashSet::new();
        let mut guard = 0usize;
        while chosen.len() < d {
            guard += 1;
            assert!(
                guard < 100_000,
                "failed to wire hub {h}; parameters too tight"
            );
            let &t = non_hubs.choose(&mut rng).expect("non-empty");
            if deg[t] >= d - 1 || !chosen.insert(t) {
                chosen.remove(&t);
                // Fall back to a linear scan when random probing stalls.
                if guard.is_multiple_of(1000) {
                    if let Some(&s) = non_hubs
                        .iter()
                        .find(|&&s| deg[s] < d - 1 && !chosen.contains(&s))
                    {
                        chosen.insert(s);
                    }
                }
                continue;
            }
        }
        for &t in &chosen {
            deg[t] += 1;
            b.add_edge(VertexId(h as u32), VertexId(t as u32));
        }
        deg[h] = d;
    }
    // Sprinkle non-hub/non-hub edges, staying strictly below d.
    let extra = n;
    for _ in 0..extra {
        let &u = non_hubs.choose(&mut rng).expect("non-empty");
        let &v = non_hubs.choose(&mut rng).expect("non-empty");
        if u != v && deg[u] < d - 1 && deg[v] < d - 1 {
            deg[u] += 1;
            deg[v] += 1;
            b.add_edge(VertexId(u as u32), VertexId(v as u32));
        }
    }
    b.build()
}

/// Disjoint union of `k` copies of `g`, vertex ids offset by
/// `i * g.num_vertices()` for copy `i`.
pub fn disjoint_copies(g: &Graph, k: usize) -> Graph {
    let n = g.num_vertices();
    let mut b = GraphBuilder::new(n * k);
    for i in 0..k {
        let off = (i * n) as u32;
        for e in g.edges() {
            b.add_edge(VertexId(e.u().0 + off), VertexId(e.v().0 + off));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_families_have_expected_shape() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(5).max_degree(), 2);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(complete(6).max_degree(), 5);
        assert_eq!(star(7).max_degree(), 6);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
        assert_eq!(complete_bipartite(3, 4).max_degree(), 4);
        assert_eq!(empty(9).num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_tiny_p_is_almost_surely_empty() {
        // Regression: with p < 2^-53, a naive (1.0 - p).ln() is 0 and
        // the geometric skip degenerates to "every pair", silently
        // producing K_n. Expected edges here are ~1e-15.
        assert_eq!(gnp(50, 1e-18, 7).num_edges(), 0);
        assert_eq!(gnp(200, f64::MIN_POSITIVE, 3).num_edges(), 0);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(50, 0.3, 42);
        let b = gnp(50, 0.3, 42);
        let c = gnp(50, 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_respects_degree_cap() {
        let g = gnm_max_degree(100, 300, 9, 5);
        assert!(g.max_degree() <= 9);
        assert!(g.num_edges() <= 300);
        // With generous capacity the target is reached.
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_reaches_m_exactly_near_saturation() {
        // The old rejection-only generator silently under-delivered
        // here once its attempt cap tripped. Feasible m must now be
        // hit exactly, at every seed, right up to saturation.
        for seed in 0..20 {
            // Full 3-regular on 8 vertices: m = n*dmax/2 exactly.
            let g = gnm_max_degree(8, 12, 3, seed);
            assert_eq!(g.num_edges(), 12, "seed {seed}");
            assert!(g.max_degree() <= 3, "seed {seed}");

            // Odd n*dmax: m = floor(27/2) = 13 is the saturation point.
            let g = gnm_max_degree(9, 13, 3, seed);
            assert_eq!(g.num_edges(), 13, "seed {seed}");
            assert!(g.max_degree() <= 3, "seed {seed}");

            // The complete graph as a gnm corner.
            let g = gnm_max_degree(10, 45, 9, seed);
            assert_eq!(g.num_edges(), 45, "seed {seed}");

            // near_regular at full saturation inherits exactness.
            let g = near_regular(20, 7, seed);
            assert_eq!(g.num_edges(), 70, "seed {seed}");
            assert!(g.max_degree() <= 7, "seed {seed}");
        }
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm_max_degree(30, 43, 3, 7);
        let b = gnm_max_degree(30, 43, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn gnm_rejects_m_beyond_degree_capacity() {
        // n*dmax/2 = 25 < 30: no such graph exists — the old
        // generator silently returned something sparser.
        let _ = gnm_max_degree(10, 30, 5, 0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn gnm_rejects_m_beyond_complete_graph() {
        // Degree capacity is fine (12), but K_4 only has 6 edges.
        let _ = gnm_max_degree(4, 7, 6, 0);
    }

    #[test]
    fn gnp_density_tracks_p() {
        // Geometric skipping must preserve the G(n,p) edge density:
        // E[m] = p · n(n-1)/2 = 1990 here; 5 sigma ≈ 212.
        let m = gnp(200, 0.1, 7).num_edges();
        assert!((1700..2300).contains(&m), "got {m} edges");
    }

    #[test]
    fn near_regular_is_mostly_regular() {
        let g = near_regular(200, 8, 3);
        assert!(g.max_degree() <= 8);
        let low = g.vertices().filter(|&v| g.degree(v) < 7).count();
        assert!(low < 20, "too many low-degree vertices: {low}");
    }

    #[test]
    fn c4_gadget_shape() {
        let bits = [true, false, true];
        let g = c4_gadget_union(&bits);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.max_degree(), 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2, "every gadget vertex lies on a C4");
        }
    }

    #[test]
    fn c4_gadget_encodes_bits() {
        let g0 = c4_gadget_union(&[false]);
        let g1 = c4_gadget_union(&[true]);
        assert!(g0.has_edge(VertexId(0), VertexId(2)));
        assert!(!g0.has_edge(VertexId(0), VertexId(3)));
        assert!(g1.has_edge(VertexId(0), VertexId(3)));
        assert!(!g1.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn independent_max_degree_precondition_holds() {
        for seed in 0..5 {
            let g = independent_max_degree(60, 6, 8, seed);
            let d = g.max_degree();
            assert_eq!(d, 6);
            let top = g.vertices_of_degree(d);
            assert!(
                g.is_independent_set(&top),
                "max-degree vertices must be independent"
            );
        }
    }

    #[test]
    fn disjoint_copies_scales() {
        let g = disjoint_copies(&cycle(4), 3);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.max_degree(), 2);
        assert!(!g.has_edge(VertexId(3), VertexId(4)));
    }
}

/// The w × h king-move interference grid used by the frequency
/// assignment example: vertices on a grid, edges to the right, down,
/// and both diagonals (Δ ≤ 8) — a standard wireless interference
/// model.
pub fn grid_king(w: usize, h: usize) -> Graph {
    let idx = |x: usize, y: usize| VertexId((y * w + x) as u32);
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(idx(x, y), idx(x, y + 1));
            }
            if x + 1 < w && y + 1 < h {
                b.add_edge(idx(x, y), idx(x + 1, y + 1));
            }
            if x >= 1 && y + 1 < h {
                b.add_edge(idx(x, y), idx(x - 1, y + 1));
            }
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each carrying
/// `legs` pendant leaves. Trees with very skewed degree sequences —
/// useful to stress the high/low-degree case split of §4.3.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "need a spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(VertexId(s as u32 - 1), VertexId(s as u32));
    }
    for s in 0..spine {
        for l in 0..legs {
            let leaf = (spine + s * legs + l) as u32;
            b.add_edge(VertexId(s as u32), VertexId(leaf));
        }
    }
    b.build()
}

#[cfg(test)]
mod extra_gen_tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn grid_king_shape() {
        let g = grid_king(5, 4);
        assert_eq!(g.num_vertices(), 20);
        assert!(g.max_degree() <= 8);
        assert!(analysis::is_connected(&g));
        // Interior vertices have all 8 neighbors.
        let stats = analysis::degree_stats(&g);
        assert_eq!(stats.max, 8);
        assert_eq!(stats.min, 3, "corners have 3 neighbors");
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 + 15);
        assert!(analysis::is_connected(&g));
        assert!(analysis::bipartition(&g).is_some(), "trees are bipartite");
        // Interior spine vertices: 2 spine + 3 legs.
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn caterpillar_single_spine_is_star() {
        let g = caterpillar(1, 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.num_edges(), 6);
    }
}
