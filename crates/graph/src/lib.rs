//! Graph substrate for the `bichrome` workspace.
//!
//! This crate provides everything the two-party coloring protocols of
//! Chang, Mishra, Nguyen, and Salim (PODC 2025) need from "classical"
//! graph theory, implemented from scratch:
//!
//! * [`Graph`] — an immutable simple undirected graph with CSR-style
//!   adjacency, built through [`GraphBuilder`].
//! * [`gen`] — generators for every graph family used in the paper's
//!   analysis and in our experiments (G(n,p), cycles, unions of C4
//!   learning gadgets, ZEC instances, graphs whose maximum-degree
//!   vertices form an independent set, ...).
//! * [`partition`] — edge partitioners splitting a graph between Alice
//!   and Bob, including adversarial-flavored splits.
//! * [`coloring`] — vertex/edge coloring containers and *validators*;
//!   the validators are the ground truth every protocol is tested
//!   against.
//! * [`matching`] — Hopcroft–Karp bipartite maximum matching, used to
//!   realize the Δ-perfect matching of Lemma 5.3.
//! * [`edge_color`] — constructive proofs of Vizing's theorem
//!   (Misra–Gries, Δ+1 colors) and Fournier's theorem (Δ colors when
//!   the maximum-degree vertices form an independent set), the two
//!   existential results (Propositions 3.4 and 3.5) that Algorithm 2
//!   relies on.
//! * [`greedy`] — greedy vertex and edge colorings used by baselines.
//!
//! # Example
//!
//! ```
//! use bichrome_graph::{gen, coloring::validate_vertex_coloring, greedy};
//!
//! let g = gen::gnp(100, 0.05, 7);
//! let coloring = greedy::greedy_vertex_coloring(&g);
//! assert!(validate_vertex_coloring(&g, &coloring).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod coloring;
pub mod edge_color;
pub mod gen;
pub mod graph;
pub mod greedy;
pub mod matching;
pub mod partition;

pub use builder::GraphBuilder;
pub use graph::{Edge, EdgeId, Graph, VertexId};
