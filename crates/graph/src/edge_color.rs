//! Constructive edge-coloring theorems.
//!
//! The paper's edge-coloring protocol (Algorithm 2) leans on two
//! classical existential results:
//!
//! * **Proposition 3.4 (Vizing).** Every simple graph is edge colorable
//!   with `Δ+1` colors — here realized by the Misra–Gries fan/Kempe
//!   algorithm, [`misra_gries`].
//! * **Proposition 3.5 (Fournier).** If the maximum-degree vertices
//!   form an independent set, `Δ` colors suffice — here realized
//!   constructively by [`fournier`] with an *ordered* fan insertion:
//!   first all edges not touching a degree-Δ vertex (a max-degree-`Δ−1`
//!   instance, so the Vizing fan argument with `Δ` colors applies),
//!   then each edge incident to a degree-Δ vertex with the fan centered
//!   on that vertex, whose neighbors all have degree `≤ Δ−1` by
//!   independence and therefore always have a free color among `Δ`.
//!
//! Both run in `O(m · (n + Δ))` time and are validated by property
//! tests against the checkers in [`crate::coloring`].

use crate::coloring::{ColorId, EdgeColoring};
use crate::graph::{Edge, EdgeId, Graph, VertexId};

/// Failure of [`fournier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FournierError {
    /// The maximum-degree vertices are not an independent set, so
    /// Proposition 3.5 does not apply.
    MaxDegreeNotIndependent,
    /// Internal invariant violation: the fan argument got stuck on the
    /// reported edge. Cannot happen for inputs satisfying the
    /// precondition; surfaced as an error so callers can assert on it.
    FanStuck(Edge),
}

impl std::fmt::Display for FournierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FournierError::MaxDegreeNotIndependent => {
                write!(f, "maximum-degree vertices are not an independent set")
            }
            FournierError::FanStuck(e) => write!(f, "fan argument stuck while coloring {e}"),
        }
    }
}

impl std::error::Error for FournierError {}

/// The "no neighbor" sentinel of [`FanState::tbl`].
const NO_VERTEX: u32 = u32::MAX;

/// Mutable edge-coloring state with O(1) "which neighbor is joined to
/// `v` by color `c`" lookups, the workhorse of the fan algorithm.
///
/// All bookkeeping is dense and edge-id-indexed: the color table is
/// one flat `n × k` array, the coloring is a dense vector over the
/// graph's [`EdgeId`] space, and the fan / Kempe-path buffers are
/// reused across edges (stamp-marked membership instead of a fresh
/// `Vec<bool>` per edge).
struct FanState<'a> {
    g: &'a Graph,
    k: usize,
    /// `tbl[v·k + c]` = neighbor joined to `v` by an edge colored `c`,
    /// or [`NO_VERTEX`].
    tbl: Vec<u32>,
    coloring: EdgeColoring,
    /// Reusable fan buffer (taken out while a fan is processed).
    fan: Vec<VertexId>,
    /// Stamp-marked "vertex is in the current fan" scratch.
    in_fan: Vec<u32>,
    fan_stamp: u32,
    /// Reusable Kempe-path segment buffer.
    segments: Vec<(VertexId, VertexId, ColorId)>,
}

impl<'a> FanState<'a> {
    fn new(g: &'a Graph, k: usize) -> Self {
        FanState {
            g,
            k,
            tbl: vec![NO_VERTEX; k * g.num_vertices()],
            coloring: EdgeColoring::dense_for(g),
            fan: Vec::new(),
            in_fan: vec![0; g.num_vertices()],
            fan_stamp: 0,
            segments: Vec::new(),
        }
    }

    #[inline]
    fn tbl_at(&self, v: VertexId, c: ColorId) -> u32 {
        self.tbl[v.index() * self.k + c.index()]
    }

    #[inline]
    fn is_free(&self, v: VertexId, c: ColorId) -> bool {
        self.tbl_at(v, c) == NO_VERTEX
    }

    fn some_free(&self, v: VertexId) -> Option<ColorId> {
        let row = &self.tbl[v.index() * self.k..(v.index() + 1) * self.k];
        row.iter()
            .position(|&slot| slot == NO_VERTEX)
            .map(|c| ColorId(c as u32))
    }

    #[inline]
    fn id_of(&self, a: VertexId, b: VertexId) -> EdgeId {
        self.g.edge_id(a, b).expect("fan edges are graph edges")
    }

    fn set(&mut self, a: VertexId, b: VertexId, c: ColorId) {
        debug_assert!(
            self.is_free(a, c) && self.is_free(b, c),
            "color {c} not free"
        );
        self.tbl[a.index() * self.k + c.index()] = b.0;
        self.tbl[b.index() * self.k + c.index()] = a.0;
        self.coloring.set_id(self.id_of(a, b), c);
    }

    fn unset(&mut self, a: VertexId, b: VertexId) -> ColorId {
        let c = self
            .coloring
            .clear_id(self.id_of(a, b))
            .expect("edge was colored");
        self.tbl[a.index() * self.k + c.index()] = NO_VERTEX;
        self.tbl[b.index() * self.k + c.index()] = NO_VERTEX;
        c
    }

    fn color_of(&self, a: VertexId, b: VertexId) -> Option<ColorId> {
        self.coloring.get_id(self.id_of(a, b))
    }

    /// Inverts the maximal alternating `c/d` path starting at `u`.
    ///
    /// Precondition: `c` is free at `u`. The path (if nonempty) starts
    /// with the `d`-edge at `u` and alternates; since each vertex has
    /// at most one edge of each color and `u` has no `c`-edge, the path
    /// is simple.
    fn invert_cd_path(&mut self, u: VertexId, c: ColorId, d: ColorId) {
        debug_assert!(self.is_free(u, c));
        let mut segments = std::mem::take(&mut self.segments);
        segments.clear();
        let mut cur = u;
        let mut want = d;
        loop {
            let next = self.tbl_at(cur, want);
            if next == NO_VERTEX {
                break;
            }
            segments.push((cur, VertexId(next), want));
            cur = VertexId(next);
            want = if want == c { d } else { c };
        }
        for &(a, b, _) in &segments {
            self.unset(a, b);
        }
        for &(a, b, col) in &segments {
            let flipped = if col == c { d } else { c };
            self.set(a, b, flipped);
        }
        self.segments = segments;
    }

    /// Builds the maximal fan of `u` starting at `v` into the reused
    /// fan buffer and hands it out: distinct neighbors
    /// `f_0 = v, f_1, ...` where edge `(u, f_{i+1})` is colored with a
    /// color free at `f_i`. Return the buffer via `self.fan` when
    /// done.
    fn take_maximal_fan(&mut self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        if self.fan_stamp == u32::MAX {
            self.in_fan.fill(0);
            self.fan_stamp = 0;
        }
        self.fan_stamp += 1;
        let mut fan = std::mem::take(&mut self.fan);
        fan.clear();
        fan.push(v);
        self.in_fan[v.index()] = self.fan_stamp;
        'grow: loop {
            let last = *fan.last().expect("fan nonempty");
            for c in 0..self.k as u32 {
                let c = ColorId(c);
                if !self.is_free(last, c) {
                    continue;
                }
                let w = self.tbl_at(u, c);
                if w != NO_VERTEX && self.in_fan[w as usize] != self.fan_stamp {
                    self.in_fan[w as usize] = self.fan_stamp;
                    fan.push(VertexId(w));
                    continue 'grow;
                }
            }
            return fan;
        }
    }

    /// Checks the fan property of `fan[0..=j]` under current colors.
    fn prefix_is_fan(&self, u: VertexId, fan: &[VertexId], j: usize) -> bool {
        (0..j).all(|i| match self.color_of(u, fan[i + 1]) {
            Some(c) => self.is_free(fan[i], c),
            None => false,
        })
    }

    /// Colors the uncolored edge `(u, v)` by the Misra–Gries fan /
    /// Kempe-chain procedure with palette `[k]`, centering the fan at
    /// `u`.
    ///
    /// Requires that `u` and every neighbor of `u` reachable as a fan
    /// vertex have a free color; callers establish this via the
    /// preconditions documented on [`misra_gries`] and [`fournier`].
    fn color_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), FournierError> {
        debug_assert!(self.color_of(u, v).is_none());
        let fan = self.take_maximal_fan(u, v);
        let result = self.color_edge_with_fan(u, &fan);
        self.fan = fan; // hand the buffer back for the next edge
        result
    }

    fn color_edge_with_fan(&mut self, u: VertexId, fan: &[VertexId]) -> Result<(), FournierError> {
        let v = fan[0];
        let stuck = || FournierError::FanStuck(Edge::new(u, v));
        let c = self.some_free(u).ok_or_else(stuck)?;
        let last = *fan.last().expect("fan nonempty");
        let d = self.some_free(last).ok_or_else(stuck)?;
        if !self.is_free(u, d) {
            self.invert_cd_path(u, c, d);
        }
        debug_assert!(self.is_free(u, d), "d must be free at u after inversion");
        // Find a rotation point: smallest j with d free at fan[j] and a
        // valid fan prefix under post-inversion colors. Misra–Gries
        // guarantees one exists.
        let j = (0..fan.len())
            .find(|&j| self.is_free(fan[j], d) && self.prefix_is_fan(u, fan, j))
            .ok_or_else(stuck)?;
        // Rotate the prefix: shift each fan edge's color one step down.
        for i in 0..j {
            let col = self.unset(u, fan[i + 1]);
            self.set(u, fan[i], col);
        }
        self.set(u, fan[j], d);
        Ok(())
    }
}

/// Misra–Gries edge coloring: a proper edge coloring of `g` with the
/// palette `{0, ..., Δ}` (`Δ+1` colors), constructively realizing
/// Vizing's theorem (Proposition 3.4).
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, edge_color::misra_gries};
/// use bichrome_graph::coloring::validate_edge_coloring_with_palette;
///
/// let g = gen::gnp(40, 0.15, 3);
/// let c = misra_gries(&g);
/// assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
/// ```
pub fn misra_gries(g: &Graph) -> EdgeColoring {
    let k = g.max_degree() + 1;
    if g.num_edges() == 0 {
        return EdgeColoring::new();
    }
    let mut st = FanState::new(g, k);
    for &e in g.edges() {
        // With k = Δ+1 every vertex always has a free color, so the fan
        // procedure cannot get stuck.
        st.color_edge(e.u(), e.v())
            .expect("Vizing: Δ+1 colors never get stuck");
    }
    st.coloring
}

/// Constructive Fournier coloring: a proper edge coloring of `g` with
/// exactly `Δ` colors `{0, ..., Δ−1}`, valid whenever the
/// maximum-degree vertices of `g` form an independent set
/// (Proposition 3.5).
///
/// # Errors
///
/// Returns [`FournierError::MaxDegreeNotIndependent`] if the
/// precondition fails. (`FanStuck` is unreachable for valid inputs.)
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, edge_color::fournier};
/// use bichrome_graph::coloring::validate_edge_coloring_with_palette;
///
/// let g = gen::independent_max_degree(40, 5, 6, 1);
/// let c = fournier(&g).expect("precondition holds");
/// assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree()).is_ok());
/// ```
pub fn fournier(g: &Graph) -> Result<EdgeColoring, FournierError> {
    let d = g.max_degree();
    if g.num_edges() == 0 {
        return Ok(EdgeColoring::new());
    }
    let top = g.vertices_of_degree(d);
    if !g.is_independent_set(&top) {
        return Err(FournierError::MaxDegreeNotIndependent);
    }
    let mut is_top = vec![false; g.num_vertices()];
    for &v in &top {
        is_top[v.index()] = true;
    }
    let mut st = FanState::new(g, d);
    // Phase 1: edges avoiding all degree-Δ vertices. Every vertex seen
    // by the fan has degree ≤ Δ−1, hence a free color among Δ.
    for &e in g.edges() {
        if !is_top[e.u().index()] && !is_top[e.v().index()] {
            st.color_edge(e.u(), e.v())?;
        }
    }
    // Phase 2: edges incident to a degree-Δ vertex; center the fan
    // there. Independence makes all fan vertices degree ≤ Δ−1.
    for &e in g.edges() {
        let (u, v) = e.endpoints();
        if is_top[u.index()] {
            st.color_edge(u, v)?;
        } else if is_top[v.index()] {
            st.color_edge(v, u)?;
        }
    }
    Ok(st.coloring)
}

/// Remaps the colors of `coloring` through `palette`: color `i`
/// becomes `palette[i]`.
///
/// Used by the protocols to express "color your subgraph with *your*
/// palette": the fan algorithms emit colors `0..k`, and the caller maps
/// them onto its assigned slice of the global `2Δ−1` palette.
///
/// # Panics
///
/// Panics if some color index is `>= palette.len()`.
pub fn remap_colors(coloring: &EdgeColoring, palette: &[ColorId]) -> EdgeColoring {
    // `remap` preserves the dense edge index, so the translated
    // coloring stays on the hash-free hot path.
    coloring.remap(|_, c| {
        *palette
            .get(c.index())
            .unwrap_or_else(|| panic!("color {c} outside palette of {}", palette.len()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{validate_edge_coloring_with_palette, ColoringError};
    use crate::gen;

    #[test]
    fn misra_gries_on_classics() {
        for g in [
            gen::path(10),
            gen::cycle(9),
            gen::complete(7),
            gen::star(12),
        ] {
            let c = misra_gries(&g);
            let k = g.max_degree() + 1;
            assert!(
                validate_edge_coloring_with_palette(&g, &c, k).is_ok(),
                "failed on {g}"
            );
        }
    }

    #[test]
    fn misra_gries_even_cycle_could_use_two_but_three_allowed() {
        let g = gen::cycle(8);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, 3).is_ok());
    }

    #[test]
    fn misra_gries_on_random_graphs() {
        for seed in 0..20 {
            let g = gen::gnp(40, 0.2, seed);
            let c = misra_gries(&g);
            assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        }
    }

    #[test]
    fn misra_gries_on_dense_and_bipartite() {
        let g = gen::complete_bipartite(6, 9);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        let g = gen::complete(10);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, 10).is_ok());
    }

    #[test]
    fn misra_gries_empty() {
        assert!(misra_gries(&gen::empty(5)).is_empty());
    }

    #[test]
    fn fournier_on_generated_instances() {
        for seed in 0..20 {
            let g = gen::independent_max_degree(70, 6, 9, seed);
            let d = g.max_degree();
            let c = fournier(&g).expect("precondition holds by construction");
            assert!(
                validate_edge_coloring_with_palette(&g, &c, d).is_ok(),
                "Fournier must use exactly Δ = {d} colors (seed {seed})"
            );
        }
    }

    #[test]
    fn fournier_beats_greedy_color_count() {
        // Sanity: Δ colors is fewer than what greedy may need.
        let g = gen::independent_max_degree(50, 5, 8, 3);
        let c = fournier(&g).expect("valid");
        assert!(c.max_color().expect("nonempty").index() < g.max_degree());
    }

    #[test]
    fn fournier_rejects_adjacent_max_degree() {
        // K2: both endpoints have max degree and are adjacent.
        let g = gen::complete(2);
        assert_eq!(fournier(&g), Err(FournierError::MaxDegreeNotIndependent));
        // Even cycle: all vertices have max degree 2 and are adjacent.
        let g = gen::cycle(6);
        assert_eq!(fournier(&g), Err(FournierError::MaxDegreeNotIndependent));
    }

    #[test]
    fn fournier_on_star_uses_delta() {
        // A star has one hub; leaves have degree 1 < Δ.
        let g = gen::star(9);
        let c = fournier(&g).expect("hub is trivially independent");
        assert!(validate_edge_coloring_with_palette(&g, &c, 8).is_ok());
        assert_eq!(c.num_distinct_colors(), 8);
    }

    #[test]
    fn fournier_empty() {
        assert_eq!(fournier(&gen::empty(3)), Ok(EdgeColoring::new()));
    }

    #[test]
    fn remap_colors_translates() {
        let g = gen::path(3);
        let c = misra_gries(&g);
        let palette = [ColorId(10), ColorId(20), ColorId(30)];
        let r = remap_colors(&c, &palette);
        for (_, col) in r.iter() {
            assert!(col.0 >= 10 && col.0 % 10 == 0);
        }
        assert!(crate::coloring::validate_edge_coloring(&g, &r).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside palette")]
    fn remap_colors_panics_on_short_palette() {
        let g = gen::complete(4); // needs ≥ 3 colors
        let c = misra_gries(&g);
        let _ = remap_colors(&c, &[ColorId(0)]);
    }

    #[test]
    fn validators_catch_tampering() {
        let g = gen::complete(5);
        let mut c = misra_gries(&g);
        let e = g.edges()[0];
        let other = g.edges()[1];
        let col = c.get(other).expect("colored");
        c.set(e, col);
        // Either an incident conflict or (if not incident) still fine;
        // pick edges that share vertex 0 to force the conflict.
        assert!(e.is_adjacent_to(other));
        assert!(matches!(
            validate_edge_coloring_with_palette(&g, &c, 5),
            Err(ColoringError::IncidentEdges(..))
        ));
    }
}
