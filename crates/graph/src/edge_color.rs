//! Constructive edge-coloring theorems.
//!
//! The paper's edge-coloring protocol (Algorithm 2) leans on two
//! classical existential results:
//!
//! * **Proposition 3.4 (Vizing).** Every simple graph is edge colorable
//!   with `Δ+1` colors — here realized by the Misra–Gries fan/Kempe
//!   algorithm, [`misra_gries`].
//! * **Proposition 3.5 (Fournier).** If the maximum-degree vertices
//!   form an independent set, `Δ` colors suffice — here realized
//!   constructively by [`fournier`] with an *ordered* fan insertion:
//!   first all edges not touching a degree-Δ vertex (a max-degree-`Δ−1`
//!   instance, so the Vizing fan argument with `Δ` colors applies),
//!   then each edge incident to a degree-Δ vertex with the fan centered
//!   on that vertex, whose neighbors all have degree `≤ Δ−1` by
//!   independence and therefore always have a free color among `Δ`.
//!
//! The fan/Kempe procedure is written once, generically over a
//! `ColorOps` state; it runs either directly against the mutable
//! `FanState` (the serial path) or against a read-only snapshot plus
//! a speculative write overlay (the parallel path of
//! [`misra_gries_with_budget`], which plans batches of fans/Kempe
//! paths concurrently and commits them serially in edge order,
//! falling back to the serial procedure whenever a speculation read a
//! vertex that an earlier commit in the same window wrote). Both paths
//! produce *bit-identical* colorings.
//!
//! Both algorithms run in `O(m · (n + Δ))` time and are validated by
//! property tests against the checkers in [`crate::coloring`].

use crate::coloring::{ColorId, EdgeColoring};
use crate::graph::{Edge, EdgeId, Graph, VertexId};
use std::collections::HashMap;
use std::ops::Range;

/// Failure of [`fournier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FournierError {
    /// The maximum-degree vertices are not an independent set, so
    /// Proposition 3.5 does not apply.
    MaxDegreeNotIndependent,
    /// Internal invariant violation: the fan argument got stuck on the
    /// reported edge. Cannot happen for inputs satisfying the
    /// precondition; surfaced as an error so callers can assert on it.
    FanStuck(Edge),
}

impl std::fmt::Display for FournierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FournierError::MaxDegreeNotIndependent => {
                write!(f, "maximum-degree vertices are not an independent set")
            }
            FournierError::FanStuck(e) => write!(f, "fan argument stuck while coloring {e}"),
        }
    }
}

impl std::error::Error for FournierError {}

/// The "no neighbor" sentinel of [`FanState::tbl`].
const NO_VERTEX: u32 = u32::MAX;

/// The state one fan/Kempe step reads and writes, abstracted so the
/// identical procedure drives both the live [`FanState`] and a
/// speculative overlay ([`SpecState`]).
///
/// Read methods take `&mut self` so the speculative implementation can
/// record its read set (for commit-time conflict detection); the live
/// state simply ignores the mutability.
trait ColorOps {
    /// Palette size `k`; colors are `0..k`.
    fn palette(&self) -> usize;
    /// Neighbor joined to `v` by an edge colored `c`, or [`NO_VERTEX`].
    fn joined(&mut self, v: VertexId, c: ColorId) -> u32;
    /// Current color of edge `(a, b)`.
    fn edge_color(&mut self, a: VertexId, b: VertexId) -> Option<ColorId>;
    /// Colors the edge `(a, b)` with `c` (must be free at both ends).
    fn assign(&mut self, a: VertexId, b: VertexId, c: ColorId);
    /// Uncolors the edge `(a, b)`, returning its color.
    fn clear(&mut self, a: VertexId, b: VertexId) -> ColorId;

    /// Is `c` unused at `v`?
    fn free(&mut self, v: VertexId, c: ColorId) -> bool {
        self.joined(v, c) == NO_VERTEX
    }

    /// Smallest color unused at `v`.
    fn first_free(&mut self, v: VertexId) -> Option<ColorId> {
        (0..self.palette() as u32)
            .map(ColorId)
            .find(|&c| self.free(v, c))
    }
}

/// Reusable fan / Kempe-path buffers, independent of the state they
/// operate on (stamp-marked membership instead of a fresh `Vec<bool>`
/// per edge).
struct FanScratch {
    /// Reusable fan buffer (taken out while a fan is processed).
    fan: Vec<VertexId>,
    /// Stamp-marked "vertex is in the current fan" scratch.
    in_fan: Vec<u32>,
    fan_stamp: u32,
    /// Reusable Kempe-path segment buffer.
    segments: Vec<(VertexId, VertexId, ColorId)>,
}

impl FanScratch {
    fn new(num_vertices: usize) -> Self {
        FanScratch {
            fan: Vec::new(),
            in_fan: vec![0; num_vertices],
            fan_stamp: 0,
            segments: Vec::new(),
        }
    }
}

/// Inverts the maximal alternating `c/d` path starting at `u`.
///
/// Precondition: `c` is free at `u`. The path (if nonempty) starts
/// with the `d`-edge at `u` and alternates; since each vertex has
/// at most one edge of each color and `u` has no `c`-edge, the path
/// is simple.
fn invert_cd_path<S: ColorOps>(
    st: &mut S,
    scratch: &mut FanScratch,
    u: VertexId,
    c: ColorId,
    d: ColorId,
) {
    debug_assert!(st.free(u, c));
    let mut segments = std::mem::take(&mut scratch.segments);
    segments.clear();
    let mut cur = u;
    let mut want = d;
    loop {
        let next = st.joined(cur, want);
        if next == NO_VERTEX {
            break;
        }
        segments.push((cur, VertexId(next), want));
        cur = VertexId(next);
        want = if want == c { d } else { c };
    }
    for &(a, b, _) in &segments {
        st.clear(a, b);
    }
    for &(a, b, col) in &segments {
        let flipped = if col == c { d } else { c };
        st.assign(a, b, flipped);
    }
    scratch.segments = segments;
}

/// Builds the maximal fan of `u` starting at `v` into the reused
/// fan buffer and hands it out: distinct neighbors
/// `f_0 = v, f_1, ...` where edge `(u, f_{i+1})` is colored with a
/// color free at `f_i`. Return the buffer via `scratch.fan` when
/// done.
fn take_maximal_fan<S: ColorOps>(
    st: &mut S,
    scratch: &mut FanScratch,
    u: VertexId,
    v: VertexId,
) -> Vec<VertexId> {
    if scratch.fan_stamp == u32::MAX {
        scratch.in_fan.fill(0);
        scratch.fan_stamp = 0;
    }
    scratch.fan_stamp += 1;
    let mut fan = std::mem::take(&mut scratch.fan);
    fan.clear();
    fan.push(v);
    scratch.in_fan[v.index()] = scratch.fan_stamp;
    'grow: loop {
        let last = *fan.last().expect("fan nonempty");
        for c in 0..st.palette() as u32 {
            let c = ColorId(c);
            if !st.free(last, c) {
                continue;
            }
            let w = st.joined(u, c);
            if w != NO_VERTEX && scratch.in_fan[w as usize] != scratch.fan_stamp {
                scratch.in_fan[w as usize] = scratch.fan_stamp;
                fan.push(VertexId(w));
                continue 'grow;
            }
        }
        return fan;
    }
}

/// Checks the fan property of `fan[0..=j]` under current colors.
fn prefix_is_fan<S: ColorOps>(st: &mut S, u: VertexId, fan: &[VertexId], j: usize) -> bool {
    (0..j).all(|i| match st.edge_color(u, fan[i + 1]) {
        Some(c) => st.free(fan[i], c),
        None => false,
    })
}

/// Colors the uncolored edge `(u, v)` by the Misra–Gries fan /
/// Kempe-chain procedure with palette `[k]`, centering the fan at
/// `u`.
///
/// Requires that `u` and every neighbor of `u` reachable as a fan
/// vertex have a free color; callers establish this via the
/// preconditions documented on [`misra_gries`] and [`fournier`].
fn color_edge<S: ColorOps>(
    st: &mut S,
    scratch: &mut FanScratch,
    u: VertexId,
    v: VertexId,
) -> Result<(), FournierError> {
    let fan = take_maximal_fan(st, scratch, u, v);
    let result = color_edge_with_fan(st, scratch, u, &fan);
    scratch.fan = fan; // hand the buffer back for the next edge
    result
}

fn color_edge_with_fan<S: ColorOps>(
    st: &mut S,
    scratch: &mut FanScratch,
    u: VertexId,
    fan: &[VertexId],
) -> Result<(), FournierError> {
    let v = fan[0];
    let stuck = || FournierError::FanStuck(Edge::new(u, v));
    let c = st.first_free(u).ok_or_else(stuck)?;
    let last = *fan.last().expect("fan nonempty");
    let d = st.first_free(last).ok_or_else(stuck)?;
    if !st.free(u, d) {
        invert_cd_path(st, scratch, u, c, d);
    }
    debug_assert!(st.free(u, d), "d must be free at u after inversion");
    // Find a rotation point: smallest j with d free at fan[j] and a
    // valid fan prefix under post-inversion colors. Misra–Gries
    // guarantees one exists.
    let j = (0..fan.len())
        .find(|&j| st.free(fan[j], d) && prefix_is_fan(st, u, fan, j))
        .ok_or_else(stuck)?;
    // Rotate the prefix: shift each fan edge's color one step down.
    for i in 0..j {
        let col = st.clear(u, fan[i + 1]);
        st.assign(u, fan[i], col);
    }
    st.assign(u, fan[j], d);
    Ok(())
}

/// Mutable edge-coloring state with O(1) "which neighbor is joined to
/// `v` by color `c`" lookups, the workhorse of the fan algorithm.
///
/// All bookkeeping is dense and edge-id-indexed: the color table is
/// one flat `n × k` array and the coloring is a dense vector over the
/// graph's [`EdgeId`] space.
struct FanState<'a> {
    g: &'a Graph,
    k: usize,
    /// `tbl[v·k + c]` = neighbor joined to `v` by an edge colored `c`,
    /// or [`NO_VERTEX`].
    tbl: Vec<u32>,
    coloring: EdgeColoring,
    /// When `log_touches`, every vertex written by `set`/`unset` is
    /// appended here — how the serial fallback of the parallel path
    /// reports its write set for conflict stamping.
    touched: Vec<u32>,
    log_touches: bool,
}

impl<'a> FanState<'a> {
    fn new(g: &'a Graph, k: usize) -> Self {
        FanState {
            g,
            k,
            tbl: vec![NO_VERTEX; k * g.num_vertices()],
            coloring: EdgeColoring::dense_for(g),
            touched: Vec::new(),
            log_touches: false,
        }
    }

    #[inline]
    fn tbl_at(&self, v: VertexId, c: ColorId) -> u32 {
        self.tbl[v.index() * self.k + c.index()]
    }

    #[inline]
    fn is_free(&self, v: VertexId, c: ColorId) -> bool {
        self.tbl_at(v, c) == NO_VERTEX
    }

    fn some_free(&self, v: VertexId) -> Option<ColorId> {
        let row = &self.tbl[v.index() * self.k..(v.index() + 1) * self.k];
        row.iter()
            .position(|&slot| slot == NO_VERTEX)
            .map(|c| ColorId(c as u32))
    }

    #[inline]
    fn id_of(&self, a: VertexId, b: VertexId) -> EdgeId {
        self.g.edge_id(a, b).expect("fan edges are graph edges")
    }

    fn set(&mut self, a: VertexId, b: VertexId, c: ColorId) {
        debug_assert!(
            self.is_free(a, c) && self.is_free(b, c),
            "color {c} not free"
        );
        self.tbl[a.index() * self.k + c.index()] = b.0;
        self.tbl[b.index() * self.k + c.index()] = a.0;
        self.coloring.set_id(self.id_of(a, b), c);
        if self.log_touches {
            self.touched.push(a.0);
            self.touched.push(b.0);
        }
    }

    fn unset(&mut self, a: VertexId, b: VertexId) -> ColorId {
        let c = self
            .coloring
            .clear_id(self.id_of(a, b))
            .expect("edge was colored");
        self.tbl[a.index() * self.k + c.index()] = NO_VERTEX;
        self.tbl[b.index() * self.k + c.index()] = NO_VERTEX;
        if self.log_touches {
            self.touched.push(a.0);
            self.touched.push(b.0);
        }
        c
    }

    fn color_of(&self, a: VertexId, b: VertexId) -> Option<ColorId> {
        self.coloring.get_id(self.id_of(a, b))
    }
}

impl ColorOps for FanState<'_> {
    fn palette(&self) -> usize {
        self.k
    }

    fn joined(&mut self, v: VertexId, c: ColorId) -> u32 {
        self.tbl_at(v, c)
    }

    fn edge_color(&mut self, a: VertexId, b: VertexId) -> Option<ColorId> {
        self.color_of(a, b)
    }

    fn assign(&mut self, a: VertexId, b: VertexId, c: ColorId) {
        self.set(a, b, c);
    }

    fn clear(&mut self, a: VertexId, b: VertexId) -> ColorId {
        self.unset(a, b)
    }

    fn first_free(&mut self, v: VertexId) -> Option<ColorId> {
        self.some_free(v)
    }
}

/// One table/coloring write planned by a speculation, replayed at
/// commit time if the plan's read set is still current.
#[derive(Clone, Copy)]
enum Op {
    Assign(VertexId, VertexId, ColorId),
    Clear(VertexId, VertexId),
}

/// One planned edge: sub-ranges of the owning [`Planner`]'s arenas.
struct PlanMeta {
    reads: Range<usize>,
    ops: Range<usize>,
    ok: bool,
}

/// Per-worker speculation state, persistent across windows so the
/// `n`-sized fan scratch and the arenas are allocated once.
struct Planner {
    scratch: FanScratch,
    /// Overlay of `tbl` writes: key `v·k + c` → neighbor/[`NO_VERTEX`].
    tbl_over: HashMap<u64, u32>,
    /// Overlay of edge-color writes, by dense edge id.
    color_over: HashMap<u32, Option<ColorId>>,
    /// Arena of read vertices, sorted + deduped per plan.
    reads: Vec<u32>,
    /// Arena of planned writes.
    ops: Vec<Op>,
    plans: Vec<PlanMeta>,
}

impl Planner {
    fn new(num_vertices: usize) -> Self {
        Planner {
            scratch: FanScratch::new(num_vertices),
            tbl_over: HashMap::new(),
            color_over: HashMap::new(),
            reads: Vec::new(),
            ops: Vec::new(),
            plans: Vec::new(),
        }
    }

    fn begin_window(&mut self) {
        self.reads.clear();
        self.ops.clear();
        self.plans.clear();
    }

    /// Speculatively colors `e` against the frozen `base` state,
    /// recording reads and planned writes instead of mutating.
    fn plan(&mut self, base: &FanState<'_>, e: Edge) {
        self.tbl_over.clear();
        self.color_over.clear();
        let reads_start = self.reads.len();
        let ops_start = self.ops.len();
        // The endpoints are always semantically read (the edge must
        // still be uncolored at commit); record them explicitly so the
        // read set does not depend on debug assertions.
        self.reads.push(e.u().0);
        self.reads.push(e.v().0);
        let ok = {
            let mut st = SpecState {
                base,
                tbl_over: &mut self.tbl_over,
                color_over: &mut self.color_over,
                reads: &mut self.reads,
                ops: &mut self.ops,
            };
            color_edge(&mut st, &mut self.scratch, e.u(), e.v()).is_ok()
        };
        // Sort + dedup this plan's reads in place.
        self.reads[reads_start..].sort_unstable();
        let mut write = reads_start;
        for r in reads_start..self.reads.len() {
            if write == reads_start || self.reads[r] != self.reads[write - 1] {
                self.reads[write] = self.reads[r];
                write += 1;
            }
        }
        self.reads.truncate(write);
        self.plans.push(PlanMeta {
            reads: reads_start..self.reads.len(),
            ops: ops_start..self.ops.len(),
            ok,
        });
    }
}

/// [`ColorOps`] over a frozen [`FanState`] plus a write overlay:
/// reads record the touched vertices, writes go to the overlay and the
/// op log. Replaying the op log against the live state reproduces the
/// speculation exactly — provided no recorded read vertex was written
/// in between, which is exactly the commit-time check (a vertex's
/// table row determines the colors of all its incident edges, so
/// unchanged read rows imply unchanged edge colors too).
struct SpecState<'a, 'g> {
    base: &'a FanState<'g>,
    tbl_over: &'a mut HashMap<u64, u32>,
    color_over: &'a mut HashMap<u32, Option<ColorId>>,
    reads: &'a mut Vec<u32>,
    ops: &'a mut Vec<Op>,
}

impl SpecState<'_, '_> {
    #[inline]
    fn tbl_key(&self, v: VertexId, c: ColorId) -> u64 {
        v.index() as u64 * self.base.k as u64 + c.index() as u64
    }

    #[inline]
    fn record(&mut self, v: VertexId) {
        // Cheap common-case dedup; the planner fully dedups per plan.
        if self.reads.last() != Some(&v.0) {
            self.reads.push(v.0);
        }
    }
}

impl ColorOps for SpecState<'_, '_> {
    fn palette(&self) -> usize {
        self.base.k
    }

    fn joined(&mut self, v: VertexId, c: ColorId) -> u32 {
        self.record(v);
        match self.tbl_over.get(&self.tbl_key(v, c)) {
            Some(&w) => w,
            None => self.base.tbl_at(v, c),
        }
    }

    fn edge_color(&mut self, a: VertexId, b: VertexId) -> Option<ColorId> {
        self.record(a);
        self.record(b);
        let id = self.base.id_of(a, b);
        match self.color_over.get(&id.0) {
            Some(&c) => c,
            None => self.base.color_of(a, b),
        }
    }

    fn assign(&mut self, a: VertexId, b: VertexId, c: ColorId) {
        let id = self.base.id_of(a, b);
        let ka = self.tbl_key(a, c);
        let kb = self.tbl_key(b, c);
        self.tbl_over.insert(ka, b.0);
        self.tbl_over.insert(kb, a.0);
        self.color_over.insert(id.0, Some(c));
        self.ops.push(Op::Assign(a, b, c));
    }

    fn clear(&mut self, a: VertexId, b: VertexId) -> ColorId {
        let c = self.edge_color(a, b).expect("edge was colored");
        let ka = self.tbl_key(a, c);
        let kb = self.tbl_key(b, c);
        self.tbl_over.insert(ka, NO_VERTEX);
        self.tbl_over.insert(kb, NO_VERTEX);
        self.color_over.insert(self.base.id_of(a, b).0, None);
        self.ops.push(Op::Clear(a, b));
        c
    }
}

/// Misra–Gries edge coloring: a proper edge coloring of `g` with the
/// palette `{0, ..., Δ}` (`Δ+1` colors), constructively realizing
/// Vizing's theorem (Proposition 3.4).
///
/// Equivalent to [`misra_gries_with_budget`] with a budget of 1.
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, edge_color::misra_gries};
/// use bichrome_graph::coloring::validate_edge_coloring_with_palette;
///
/// let g = gen::gnp(40, 0.15, 3);
/// let c = misra_gries(&g);
/// assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
/// ```
pub fn misra_gries(g: &Graph) -> EdgeColoring {
    misra_gries_with_budget(g, 1)
}

/// [`misra_gries`] with an advisory thread budget: independent
/// fans/Kempe paths are planned in parallel batches and committed
/// serially in edge order.
///
/// The output is **bit-identical to the serial algorithm at every
/// budget**: each window of `8·threads` edges is speculatively planned
/// against a frozen snapshot (deterministic fixed-range chunks, one
/// worker each), then committed in edge order — a plan whose read set
/// intersects the write set of an earlier commit in the same window is
/// discarded and that edge is recolored serially against the live
/// state, so every committed step equals the step the serial sweep
/// would have taken.
///
/// `threads <= 1` runs the plain serial sweep with zero speculation
/// overhead.
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, edge_color::{misra_gries, misra_gries_with_budget}};
///
/// let g = gen::gnp(60, 0.2, 9);
/// assert_eq!(misra_gries_with_budget(&g, 4), misra_gries(&g));
/// ```
pub fn misra_gries_with_budget(g: &Graph, threads: usize) -> EdgeColoring {
    let k = g.max_degree() + 1;
    if g.num_edges() == 0 {
        return EdgeColoring::new();
    }
    let mut st = FanState::new(g, k);
    let mut scratch = FanScratch::new(g.num_vertices());
    if threads <= 1 {
        for &e in g.edges() {
            // With k = Δ+1 every vertex always has a free color, so the
            // fan procedure cannot get stuck.
            color_edge(&mut st, &mut scratch, e.u(), e.v())
                .expect("Vizing: Δ+1 colors never get stuck");
        }
        return st.coloring;
    }

    let edges = g.edges();
    let window = threads * 8;
    let mut planners: Vec<Planner> = (0..threads)
        .map(|_| Planner::new(g.num_vertices()))
        .collect();
    // stamps[v] = epoch of the last window in which v was written.
    let mut stamps = vec![0u32; g.num_vertices()];
    let mut epoch = 0u32;
    let mut start = 0;
    while start < edges.len() {
        let end = (start + window).min(edges.len());
        let win = &edges[start..end];
        epoch += 1;

        // Plan phase: fixed-range chunks of the window, one worker
        // each, against the frozen pre-window state. Chunk boundaries
        // are a pure function of (window length, threads), so the set
        // of plans is independent of scheduling.
        let st_ref = &st;
        rayon::par_map_mut(&mut planners, threads, |ci, part| {
            let planner = &mut part[0];
            planner.begin_window();
            for i in rayon::chunk_range(win.len(), threads, ci) {
                planner.plan(st_ref, win[i]);
            }
        });

        // Commit phase: serial, in edge order. A still-current plan
        // replays its op log (which then equals what the serial sweep
        // would have done at this point); a conflicting one falls back
        // to the serial procedure against the live state.
        for (ci, planner) in planners.iter().enumerate() {
            let chunk = rayon::chunk_range(win.len(), threads, ci);
            for (j, i) in chunk.enumerate() {
                let e = win[i];
                let plan = &planner.plans[j];
                let current = plan.ok
                    && planner.reads[plan.reads.clone()]
                        .iter()
                        .all(|&v| stamps[v as usize] != epoch);
                if current {
                    for &op in &planner.ops[plan.ops.clone()] {
                        match op {
                            Op::Assign(a, b, c) => {
                                st.set(a, b, c);
                                stamps[a.index()] = epoch;
                                stamps[b.index()] = epoch;
                            }
                            Op::Clear(a, b) => {
                                st.unset(a, b);
                                stamps[a.index()] = epoch;
                                stamps[b.index()] = epoch;
                            }
                        }
                    }
                } else {
                    st.touched.clear();
                    st.log_touches = true;
                    let result = color_edge(&mut st, &mut scratch, e.u(), e.v());
                    st.log_touches = false;
                    result.expect("Vizing: Δ+1 colors never get stuck");
                    let touched = std::mem::take(&mut st.touched);
                    for &v in &touched {
                        stamps[v as usize] = epoch;
                    }
                    st.touched = touched;
                }
            }
        }
        start = end;
    }
    st.coloring
}

/// Constructive Fournier coloring: a proper edge coloring of `g` with
/// exactly `Δ` colors `{0, ..., Δ−1}`, valid whenever the
/// maximum-degree vertices of `g` form an independent set
/// (Proposition 3.5).
///
/// # Errors
///
/// Returns [`FournierError::MaxDegreeNotIndependent`] if the
/// precondition fails. (`FanStuck` is unreachable for valid inputs.)
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, edge_color::fournier};
/// use bichrome_graph::coloring::validate_edge_coloring_with_palette;
///
/// let g = gen::independent_max_degree(40, 5, 6, 1);
/// let c = fournier(&g).expect("precondition holds");
/// assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree()).is_ok());
/// ```
pub fn fournier(g: &Graph) -> Result<EdgeColoring, FournierError> {
    let d = g.max_degree();
    if g.num_edges() == 0 {
        return Ok(EdgeColoring::new());
    }
    let top = g.vertices_of_degree(d);
    if !g.is_independent_set(&top) {
        return Err(FournierError::MaxDegreeNotIndependent);
    }
    let mut is_top = vec![false; g.num_vertices()];
    for &v in &top {
        is_top[v.index()] = true;
    }
    let mut st = FanState::new(g, d);
    let mut scratch = FanScratch::new(g.num_vertices());
    // Phase 1: edges avoiding all degree-Δ vertices. Every vertex seen
    // by the fan has degree ≤ Δ−1, hence a free color among Δ.
    for &e in g.edges() {
        if !is_top[e.u().index()] && !is_top[e.v().index()] {
            color_edge(&mut st, &mut scratch, e.u(), e.v())?;
        }
    }
    // Phase 2: edges incident to a degree-Δ vertex; center the fan
    // there. Independence makes all fan vertices degree ≤ Δ−1.
    for &e in g.edges() {
        let (u, v) = e.endpoints();
        if is_top[u.index()] {
            color_edge(&mut st, &mut scratch, u, v)?;
        } else if is_top[v.index()] {
            color_edge(&mut st, &mut scratch, v, u)?;
        }
    }
    Ok(st.coloring)
}

/// Remaps the colors of `coloring` through `palette`: color `i`
/// becomes `palette[i]`.
///
/// Used by the protocols to express "color your subgraph with *your*
/// palette": the fan algorithms emit colors `0..k`, and the caller maps
/// them onto its assigned slice of the global `2Δ−1` palette.
///
/// # Panics
///
/// Panics if some color index is `>= palette.len()`.
pub fn remap_colors(coloring: &EdgeColoring, palette: &[ColorId]) -> EdgeColoring {
    // `remap` preserves the dense edge index, so the translated
    // coloring stays on the hash-free hot path.
    coloring.remap(|_, c| {
        *palette
            .get(c.index())
            .unwrap_or_else(|| panic!("color {c} outside palette of {}", palette.len()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{validate_edge_coloring_with_palette, ColoringError};
    use crate::gen;

    #[test]
    fn misra_gries_on_classics() {
        for g in [
            gen::path(10),
            gen::cycle(9),
            gen::complete(7),
            gen::star(12),
        ] {
            let c = misra_gries(&g);
            let k = g.max_degree() + 1;
            assert!(
                validate_edge_coloring_with_palette(&g, &c, k).is_ok(),
                "failed on {g}"
            );
        }
    }

    #[test]
    fn misra_gries_even_cycle_could_use_two_but_three_allowed() {
        let g = gen::cycle(8);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, 3).is_ok());
    }

    #[test]
    fn misra_gries_on_random_graphs() {
        for seed in 0..20 {
            let g = gen::gnp(40, 0.2, seed);
            let c = misra_gries(&g);
            assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        }
    }

    #[test]
    fn misra_gries_on_dense_and_bipartite() {
        let g = gen::complete_bipartite(6, 9);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        let g = gen::complete(10);
        let c = misra_gries(&g);
        assert!(validate_edge_coloring_with_palette(&g, &c, 10).is_ok());
    }

    #[test]
    fn misra_gries_empty() {
        assert!(misra_gries(&gen::empty(5)).is_empty());
    }

    #[test]
    fn budgeted_misra_gries_is_bit_identical_to_serial() {
        // The determinism contract of the parallel path: any thread
        // budget, same coloring — across sparse, dense, and structured
        // instances, including ones small enough that a window exceeds
        // the edge count and dense ones where speculations collide
        // constantly.
        let graphs = vec![
            gen::gnp(40, 0.2, 1),
            gen::gnp(80, 0.15, 2),
            gen::gnp(120, 0.05, 3),
            gen::complete(20),
            gen::complete_bipartite(9, 11),
            gen::near_regular(150, 10, 4),
            gen::star(30),
            gen::path(3),
        ];
        for g in &graphs {
            let serial = misra_gries_with_budget(g, 1);
            for threads in [2, 3, 4, 8] {
                let parallel = misra_gries_with_budget(g, threads);
                assert_eq!(
                    parallel, serial,
                    "budget {threads} diverged from serial on {g}"
                );
            }
        }
    }

    #[test]
    fn budgeted_misra_gries_validates() {
        for seed in 0..10 {
            let g = gen::gnp(60, 0.25, seed);
            let c = misra_gries_with_budget(&g, 4);
            assert!(validate_edge_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        }
    }

    #[test]
    fn fournier_on_generated_instances() {
        for seed in 0..20 {
            let g = gen::independent_max_degree(70, 6, 9, seed);
            let d = g.max_degree();
            let c = fournier(&g).expect("precondition holds by construction");
            assert!(
                validate_edge_coloring_with_palette(&g, &c, d).is_ok(),
                "Fournier must use exactly Δ = {d} colors (seed {seed})"
            );
        }
    }

    #[test]
    fn fournier_beats_greedy_color_count() {
        // Sanity: Δ colors is fewer than what greedy may need.
        let g = gen::independent_max_degree(50, 5, 8, 3);
        let c = fournier(&g).expect("valid");
        assert!(c.max_color().expect("nonempty").index() < g.max_degree());
    }

    #[test]
    fn fournier_rejects_adjacent_max_degree() {
        // K2: both endpoints have max degree and are adjacent.
        let g = gen::complete(2);
        assert_eq!(fournier(&g), Err(FournierError::MaxDegreeNotIndependent));
        // Even cycle: all vertices have max degree 2 and are adjacent.
        let g = gen::cycle(6);
        assert_eq!(fournier(&g), Err(FournierError::MaxDegreeNotIndependent));
    }

    #[test]
    fn fournier_on_star_uses_delta() {
        // A star has one hub; leaves have degree 1 < Δ.
        let g = gen::star(9);
        let c = fournier(&g).expect("hub is trivially independent");
        assert!(validate_edge_coloring_with_palette(&g, &c, 8).is_ok());
        assert_eq!(c.num_distinct_colors(), 8);
    }

    #[test]
    fn fournier_empty() {
        assert_eq!(fournier(&gen::empty(3)), Ok(EdgeColoring::new()));
    }

    #[test]
    fn remap_colors_translates() {
        let g = gen::path(3);
        let c = misra_gries(&g);
        let palette = [ColorId(10), ColorId(20), ColorId(30)];
        let r = remap_colors(&c, &palette);
        for (_, col) in r.iter() {
            assert!(col.0 >= 10 && col.0 % 10 == 0);
        }
        assert!(crate::coloring::validate_edge_coloring(&g, &r).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside palette")]
    fn remap_colors_panics_on_short_palette() {
        let g = gen::complete(4); // needs ≥ 3 colors
        let c = misra_gries(&g);
        let _ = remap_colors(&c, &[ColorId(0)]);
    }

    #[test]
    fn validators_catch_tampering() {
        let g = gen::complete(5);
        let mut c = misra_gries(&g);
        let e = g.edges()[0];
        let other = g.edges()[1];
        let col = c.get(other).expect("colored");
        c.set(e, col);
        // Either an incident conflict or (if not incident) still fine;
        // pick edges that share vertex 0 to force the conflict.
        assert!(e.is_adjacent_to(other));
        assert!(matches!(
            validate_edge_coloring_with_palette(&g, &c, 5),
            Err(ColoringError::IncidentEdges(..))
        ));
    }
}
