//! Incremental construction of [`Graph`] values.

use crate::graph::{Edge, Graph, VertexId};

/// Builder for [`Graph`] (C-BUILDER).
///
/// Collects edges (duplicates are tolerated and deduplicated), then
/// [`build`](GraphBuilder::build)s the immutable CSR graph.
///
/// # Example
///
/// ```
/// use bichrome_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1));
/// b.add_edge(VertexId(1), VertexId(0)); // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices (ids `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n: u32::try_from(n).expect("vertex count fits in u32"),
            edges: Vec::new(),
        }
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Returns `&mut self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is out of range.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> &mut Self {
        assert!(
            a.0 < self.n && b.0 < self.n,
            "endpoint out of range ({a}, {b}, n={})",
            self.n
        );
        self.edges.push(Edge::new(a, b));
        self
    }

    /// Adds an already-constructed [`Edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn push(&mut self, e: Edge) -> &mut Self {
        assert!(
            e.v().0 < self.n,
            "endpoint out of range ({e}, n={})",
            self.n
        );
        self.edges.push(e);
        self
    }

    /// Number of edges added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes the graph, sorting and deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_parts(self.n, self.edges)
    }
}

impl Extend<Edge> for GraphBuilder {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

/// Builds a graph on `n` vertices directly from an edge iterator.
///
/// # Panics
///
/// Panics if an endpoint is out of range.
///
/// # Example
///
/// ```
/// use bichrome_graph::{builder::from_edges, Edge, VertexId};
/// let g = from_edges(3, [Edge::new(VertexId(0), VertexId(2))]);
/// assert_eq!(g.num_edges(), 1);
/// ```
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Graph {
    let mut b = GraphBuilder::new(n);
    b.extend(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_duplicate_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(0));
        b.add_edge(VertexId(0), VertexId(1));
        assert_eq!(b.len(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(2));
    }

    #[test]
    fn extend_and_from_edges() {
        let edges = [
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(2), VertexId(3)),
        ];
        let g = from_edges(4, edges.iter().copied());
        assert_eq!(g.num_edges(), 2);
        assert!(GraphBuilder::new(1).is_empty());
    }

    #[test]
    fn chaining() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1))
            .add_edge(VertexId(1), VertexId(2));
        assert_eq!(b.build().num_edges(), 2);
    }
}
