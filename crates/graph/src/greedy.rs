//! Greedy (first-fit) colorings.
//!
//! These are the classical sequential algorithms the paper's
//! introduction uses as the yardstick: greedy vertex coloring uses at
//! most `Δ+1` colors, greedy edge coloring at most `2Δ−1`.

use crate::coloring::{ColorId, EdgeColoring, VertexColoring};
use crate::graph::{Edge, Graph, VertexId};

/// First-fit vertex coloring in vertex-id order.
///
/// Uses at most `Δ+1` colors.
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, greedy, coloring::validate_vertex_coloring_with_palette};
/// let g = gen::cycle(7);
/// let c = greedy::greedy_vertex_coloring(&g);
/// assert!(validate_vertex_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
/// ```
pub fn greedy_vertex_coloring(g: &Graph) -> VertexColoring {
    greedy_vertex_coloring_in_order(g, g.vertices())
}

/// First-fit vertex coloring following the supplied vertex order.
///
/// Every vertex must appear exactly once in `order`; uses at most
/// `Δ+1` colors regardless of the order.
///
/// # Panics
///
/// Panics if `order` misses a vertex (the result would be partial) —
/// detected via a final completeness check in debug builds only.
pub fn greedy_vertex_coloring_in_order(
    g: &Graph,
    order: impl IntoIterator<Item = VertexId>,
) -> VertexColoring {
    let mut coloring = VertexColoring::new(g.num_vertices());
    let mut used = vec![u32::MAX; g.max_degree() + 2]; // stamp per color
    for (stamp, v) in order.into_iter().enumerate() {
        let stamp = stamp as u32;
        for &u in g.neighbors(v) {
            if let Some(c) = coloring.get(u) {
                if c.index() < used.len() {
                    used[c.index()] = stamp;
                }
            }
        }
        let c = (0..used.len())
            .find(|&i| used[i] != stamp)
            .expect("Δ+2 slots suffice");
        coloring.set(v, ColorId(c as u32));
    }
    debug_assert!(coloring.is_complete(), "order must cover all vertices");
    coloring
}

/// First-fit edge coloring in sorted edge order.
///
/// Uses at most `2Δ−1` colors, since every edge is adjacent to at most
/// `2Δ−2` others.
///
/// # Example
///
/// ```
/// use bichrome_graph::{gen, greedy, coloring::validate_edge_coloring_with_palette};
/// let g = gen::gnp(30, 0.2, 1);
/// let c = greedy::greedy_edge_coloring(&g);
/// let bound = (2 * g.max_degree()).saturating_sub(1).max(1);
/// assert!(validate_edge_coloring_with_palette(&g, &c, bound).is_ok());
/// ```
pub fn greedy_edge_coloring(g: &Graph) -> EdgeColoring {
    greedy_edge_coloring_with(g, EdgeColoring::dense_for(g), g.edges().iter().copied())
}

/// Marks `color` as used at the current stamp, growing the scratch
/// geometrically on first sight of a larger color.
#[inline]
fn mark_used(seen: &mut Vec<u32>, stamp: u32, color: ColorId) {
    if color.index() >= seen.len() {
        seen.resize((color.index() + 1).next_power_of_two().max(64), 0);
    }
    seen[color.index()] = stamp;
}

/// The smallest color not marked at the current stamp.
#[inline]
fn first_free(seen: &[u32], stamp: u32) -> ColorId {
    let c = (0..)
        .find(|&c| seen.get(c).is_none_or(|&s| s != stamp))
        .expect("a free color always exists");
    ColorId(c as u32)
}

/// Extends a partial edge coloring greedily over `edges`, choosing for
/// each edge the smallest color free at both endpoints.
///
/// The existing colors in `partial` (which may cover edges *outside*
/// `g`, e.g. the other party's edges at shared vertices) are respected.
/// The used-color scratch is one stamp-marked vector reused across all
/// edges — no per-edge allocation.
pub fn greedy_edge_coloring_with(
    g: &Graph,
    partial: EdgeColoring,
    edges: impl IntoIterator<Item = Edge>,
) -> EdgeColoring {
    let mut coloring = partial;
    let mut seen: Vec<u32> = Vec::new();
    let mut stamp = 0u32;
    for e in edges {
        if coloring.get(e).is_some() {
            continue;
        }
        if stamp == u32::MAX {
            seen.fill(0);
            stamp = 0;
        }
        stamp += 1;
        let (u, v) = e.endpoints();
        for &w in g.neighbors(u) {
            if let Some(c) = coloring.get(Edge::new(u, w)) {
                mark_used(&mut seen, stamp, c);
            }
        }
        for &w in g.neighbors(v) {
            if let Some(c) = coloring.get(Edge::new(v, w)) {
                mark_used(&mut seen, stamp, c);
            }
        }
        coloring.set(e, first_free(&seen, stamp));
    }
    coloring
}

/// Greedy list coloring: each vertex gets the first color in its list
/// not used by an already-colored neighbor.
///
/// Succeeds whenever `lists[v].len() >= deg(v) + 1` for all `v`
/// (the D1LC condition).
///
/// # Errors
///
/// Returns the first vertex whose list is exhausted.
///
/// # Panics
///
/// Panics if `lists.len() != g.num_vertices()`.
pub fn greedy_list_coloring(g: &Graph, lists: &[Vec<ColorId>]) -> Result<VertexColoring, VertexId> {
    assert_eq!(lists.len(), g.num_vertices(), "one list per vertex");
    let mut coloring = VertexColoring::new(g.num_vertices());
    let mut seen: Vec<u32> = Vec::new();
    for (stamp, v) in g.vertices().enumerate() {
        let stamp = stamp as u32 + 1;
        for &u in g.neighbors(v) {
            if let Some(c) = coloring.get(u) {
                mark_used(&mut seen, stamp, c);
            }
        }
        let c = lists[v.index()]
            .iter()
            .copied()
            .find(|c| seen.get(c.index()).is_none_or(|&s| s != stamp))
            .ok_or(v)?;
        coloring.set(v, c);
    }
    Ok(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{
        validate_edge_coloring_with_palette, validate_list_coloring,
        validate_vertex_coloring_with_palette,
    };
    use crate::gen;

    #[test]
    fn greedy_vertex_respects_delta_plus_one() {
        for seed in 0..5 {
            let g = gen::gnp(60, 0.15, seed);
            let c = greedy_vertex_coloring(&g);
            assert!(validate_vertex_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok());
        }
    }

    #[test]
    fn greedy_vertex_on_odd_cycle_uses_three() {
        let g = gen::cycle(7);
        let c = greedy_vertex_coloring(&g);
        assert_eq!(c.num_distinct_colors(), 3);
    }

    #[test]
    fn greedy_vertex_custom_order() {
        let g = gen::complete(5);
        let order: Vec<VertexId> = (0..5).rev().map(VertexId).collect();
        let c = greedy_vertex_coloring_in_order(&g, order);
        assert!(validate_vertex_coloring_with_palette(&g, &c, 5).is_ok());
        assert_eq!(c.num_distinct_colors(), 5);
    }

    #[test]
    fn greedy_edge_respects_two_delta_minus_one() {
        for seed in 0..5 {
            let g = gen::gnm_max_degree(50, 120, 8, seed);
            let c = greedy_edge_coloring(&g);
            let bound = 2 * g.max_degree() - 1;
            assert!(validate_edge_coloring_with_palette(&g, &c, bound).is_ok());
        }
    }

    #[test]
    fn greedy_edge_extends_partial() {
        let g = gen::path(4);
        let e01 = Edge::new(VertexId(0), VertexId(1));
        let mut partial = EdgeColoring::new();
        partial.set(e01, ColorId(5));
        let c = greedy_edge_coloring_with(&g, partial, g.edges().iter().copied());
        assert_eq!(c.get(e01), Some(ColorId(5)), "existing colors preserved");
        // Edge {1,2} must avoid color 5.
        assert_ne!(c.get(Edge::new(VertexId(1), VertexId(2))), Some(ColorId(5)));
        assert!(crate::coloring::validate_edge_coloring(&g, &c).is_ok());
    }

    #[test]
    fn greedy_list_coloring_succeeds_on_d1lc() {
        let g = gen::gnp(40, 0.2, 9);
        let lists: Vec<Vec<ColorId>> = g
            .vertices()
            .map(|v| (0..=g.degree(v) as u32).map(ColorId).collect())
            .collect();
        let c = greedy_list_coloring(&g, &lists).expect("D1LC condition holds");
        assert!(validate_list_coloring(&g, &c, &lists).is_ok());
    }

    #[test]
    fn greedy_list_coloring_reports_exhaustion() {
        let g = gen::complete(3);
        // Everyone gets the same single color: vertex 1 must fail.
        let lists = vec![vec![ColorId(0)]; 3];
        assert_eq!(greedy_list_coloring(&g, &lists), Err(VertexId(1)));
    }

    #[test]
    fn greedy_on_empty_graph() {
        let g = gen::empty(5);
        let c = greedy_vertex_coloring(&g);
        assert!(c.is_complete());
        assert_eq!(c.num_distinct_colors(), 1);
        assert!(greedy_edge_coloring(&g).is_empty());
    }
}
