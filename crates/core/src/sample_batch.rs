//! Batched `Color-Sample`: a structure-of-arrays engine for driving
//! thousands of Lemma 3.1 machines per round.
//!
//! [`crate::color_sample::ColorSample`] is the reference
//! implementation: one heap-allocated machine per (vertex, rep), a
//! `Vec<bool>` membership, and an element-list probe sample. Algorithm
//! 1 runs *hundreds of thousands* of these per iteration, which makes
//! the per-machine allocations and the per-round `filter().collect()`
//! scans the dominant cost of D1LC on large instances.
//!
//! [`ColorSampleBatch`] runs the *same protocol, bit for bit*, over
//! dense shared arenas:
//!
//! * machines are partitioned into `threads` contiguous **blocks**;
//!   each block owns flat SoA arenas (permutation `u32`s, membership
//!   and probe-sample bitmasks as `u64` words) — zero per-machine
//!   allocations, probe counts are word popcounts;
//! * each round, blocks build their slice of the outgoing message
//!   independently (in parallel) and the slices are stitched in block
//!   order, which reproduces the sequential writer's bits exactly;
//! * incoming bits are parsed in parallel too: per machine and per
//!   round, *my* write width equals the *peer's* write width (the
//!   probe width comes from the shared public sample, the search
//!   width from the publicly-evolving window), so each block's read
//!   offset is the sum of the earlier blocks' write lengths.
//!
//! The block partition therefore affects scheduling only, never
//! content: results, wire bits, and round counts are identical to
//! driving the equivalent `ColorSample`s with
//! [`bichrome_comm::machine::drive_lockstep`] at any thread budget
//! (asserted by the differential tests below and by the workspace's
//! `intra_trial_determinism` proptests).

use crate::color_sample::{PERM_TAG, SAMPLE_TAG};
use crate::slack_int::SAMPLE_CONSTANT;
use bichrome_comm::channel::Endpoint;
use bichrome_comm::wire::{width_for, BitWriter};
use bichrome_comm::PublicCoin;
use bichrome_graph::coloring::ColorId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sentinel: machine not settled yet.
const PENDING: u32 = u32::MAX;

/// Per-machine inputs, handed to the build closure to fill in. The
/// buffers are reused across machines — the closure overwrites, the
/// engine clears.
#[derive(Debug, Default)]
pub struct MachineSpec {
    stream: Vec<u64>,
    occupied: Vec<u32>,
}

impl MachineSpec {
    /// Sets the public-coin stream path for this machine (the
    /// `stream` argument of `ColorSample::new`, e.g.
    /// `[tag, iteration, vertex]`). Both parties must set identical
    /// paths.
    pub fn set_stream(&mut self, ids: &[u64]) {
        self.stream.clear();
        self.stream.extend_from_slice(ids);
    }

    /// Adds one occupied color (this side's colored neighbors).
    /// Duplicates are harmless.
    pub fn add_occupied(&mut self, c: ColorId) {
        self.occupied.push(c.0);
    }

    /// Adds every occupied color from an iterator.
    pub fn extend_occupied(&mut self, colors: impl IntoIterator<Item = ColorId>) {
        self.occupied.extend(colors.into_iter().map(|c| c.0));
    }
}

/// One contiguous block of machines with SoA arenas. Strides: `m` for
/// `perm`, `w = ceil(m/64)` words for the bitmasks, 1 elsewhere.
#[derive(Debug)]
struct Block {
    len: usize,
    m: usize,
    w: usize,
    /// `perm[i*m + j]` = original color at permuted position `j`.
    perm: Vec<u32>,
    /// Occupied-color membership over *permuted* positions.
    mem: Vec<u64>,
    /// Current probe sample (probe phase) / candidate set (search
    /// phase) over permuted positions. Public: identical on both
    /// sides.
    sample: Vec<u64>,
    /// Popcount of `sample`.
    sample_len: Vec<u32>,
    /// Probe width, or the search round's pending width.
    width: Vec<u8>,
    /// Shared sampling stream, one per machine.
    rng: Vec<StdRng>,
    k_guess: Vec<u64>,
    /// Search window over candidate *ranks*; `hi == 0` means probe
    /// phase (a live search window is never empty).
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// The settled color, or [`PENDING`].
    result: Vec<u32>,
}

/// Count of set bits of `mem` restricted to positions whose *rank
/// within `sample`* lies in `[lo, hi_excl)` — `DetSlackInt::my_count`
/// over the implicit candidate list "set bits of `sample` in
/// increasing position order".
fn rank_window_count(sample: &[u64], mem: &[u64], lo: u32, hi_excl: u32) -> u64 {
    let mut rank = 0u32;
    let mut count = 0u64;
    for (&ws, &wm) in sample.iter().zip(mem) {
        let in_sample = ws.count_ones();
        if in_sample == 0 {
            continue;
        }
        if rank + in_sample > lo {
            let mut w = ws;
            let mut r = rank;
            while w != 0 {
                let b = w.trailing_zeros();
                if r >= hi_excl {
                    return count;
                }
                if r >= lo && (wm >> b) & 1 == 1 {
                    count += 1;
                }
                w &= w - 1;
                r += 1;
            }
        }
        rank += in_sample;
        if rank >= hi_excl {
            break;
        }
    }
    count
}

/// Position (over `0..m`) of the `rank`-th set bit of `sample`.
fn select_rank(sample: &[u64], rank: u32) -> u32 {
    let mut seen = 0u32;
    for (wi, &word) in sample.iter().enumerate() {
        let c = word.count_ones();
        if seen + c > rank {
            let mut w = word;
            let mut r = seen;
            loop {
                let b = w.trailing_zeros();
                if r == rank {
                    return (wi * 64) as u32 + b;
                }
                w &= w - 1;
                r += 1;
            }
        }
        seen += c;
    }
    unreachable!("rank {rank} beyond sample popcount {seen}")
}

#[inline]
fn masked_popcount(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum()
}

impl Block {
    fn build<F>(palette: usize, start: usize, len: usize, coin: &PublicCoin, fill: &F) -> Block
    where
        F: Fn(usize, &mut MachineSpec),
    {
        let m = palette;
        let w = m.div_ceil(64);
        let mut b = Block {
            len,
            m,
            w,
            perm: vec![0u32; len * m],
            mem: vec![0u64; len * w],
            sample: vec![0u64; len * w],
            sample_len: vec![0u32; len],
            width: vec![0u8; len],
            rng: Vec::with_capacity(len),
            k_guess: vec![m as u64; len],
            lo: vec![0u32; len],
            hi: vec![0u32; len],
            result: vec![PENDING; len],
        };
        let mut spec = MachineSpec::default();
        let mut pos_of = vec![0u32; m];
        let mut ids: Vec<u64> = Vec::new();
        for i in 0..len {
            spec.stream.clear();
            spec.occupied.clear();
            fill(start + i, &mut spec);
            // Permutation — identical RNG consumption to
            // `ColorSample::new` (same stream path, same shuffle).
            let perm = &mut b.perm[i * m..(i + 1) * m];
            for (j, p) in perm.iter_mut().enumerate() {
                *p = j as u32;
            }
            ids.clear();
            ids.push(PERM_TAG);
            ids.extend_from_slice(&spec.stream);
            perm.shuffle(&mut coin.stream(&ids));
            for (j, &c) in perm.iter().enumerate() {
                pos_of[c as usize] = j as u32;
            }
            let mem = &mut b.mem[i * w..(i + 1) * w];
            for &c in &spec.occupied {
                assert!((c as usize) < m, "occupied color {c} outside palette");
                let j = pos_of[c as usize];
                mem[(j / 64) as usize] |= 1u64 << (j % 64);
            }
            ids.clear();
            ids.push(SAMPLE_TAG);
            ids.extend_from_slice(&spec.stream);
            b.rng.push(coin.stream(&ids));
            // First probe is drawn at construction, as in
            // `RandSlackInt::with_constant`.
            b.draw_probe(i);
        }
        b
    }

    /// Draws a fresh probe sample for machine `i` — exactly `m`
    /// booleans from the shared stream, like
    /// `RandSlackInt::probe_phase`, so the streams stay aligned
    /// regardless of outcomes.
    fn draw_probe(&mut self, i: usize) {
        let p = (SAMPLE_CONSTANT * self.m as f64
            / (self.k_guess[i] as f64 * self.k_guess[i] as f64))
            .min(1.0);
        let sample = &mut self.sample[i * self.w..(i + 1) * self.w];
        sample.fill(0);
        let rng = &mut self.rng[i];
        for e in 0..self.m as u64 {
            if rng.gen_bool(p) {
                sample[(e / 64) as usize] |= 1u64 << (e % 64);
            }
        }
        let slen: u64 = sample.iter().map(|&x| x.count_ones() as u64).sum();
        self.sample_len[i] = slen as u32;
        self.width[i] = width_for(slen) as u8;
    }

    /// Appends this round's bits for every active machine. Returns
    /// whether any machine was active.
    fn write_round(&mut self, w: &mut BitWriter) -> bool {
        let mut any = false;
        for i in 0..self.len {
            if self.result[i] != PENDING {
                continue;
            }
            any = true;
            let sample = &self.sample[i * self.w..(i + 1) * self.w];
            let mem = &self.mem[i * self.w..(i + 1) * self.w];
            if self.hi[i] == 0 {
                // Probe: announce |S ∩ my| at the public sample width.
                w.write_uint(masked_popcount(sample, mem), self.width[i] as usize);
            } else {
                // Search: announce the left-half count; the width is a
                // function of the public window, recorded for the read.
                let mid = (self.lo[i] + self.hi[i]) / 2;
                let left = mid - self.lo[i];
                self.width[i] = width_for(left as u64) as u8;
                w.write_uint(
                    rank_window_count(sample, mem, self.lo[i], mid),
                    self.width[i] as usize,
                );
            }
        }
        any
    }

    /// Absorbs this round's peer bits for every machine active at
    /// round start (done-ness only changes at a machine's own read, in
    /// index order, so the skip test sees round-start state).
    fn read_round(&mut self, r: &mut bichrome_comm::wire::BitReader<'_>) {
        for i in 0..self.len {
            if self.result[i] != PENDING {
                continue;
            }
            let peer = r.read_uint(self.width[i] as usize);
            let sample = &self.sample[i * self.w..(i + 1) * self.w];
            let mem = &self.mem[i * self.w..(i + 1) * self.w];
            if self.hi[i] == 0 {
                let mine = masked_popcount(sample, mem);
                let slen = self.sample_len[i] as u64;
                if slen > 0 && mine + peer < slen {
                    // Deficit certified: search inside the sample.
                    self.lo[i] = 0;
                    self.hi[i] = self.sample_len[i];
                    if slen == 1 {
                        self.settle(i);
                    }
                } else {
                    assert!(
                        slen < self.m as u64 || self.k_guess[i] > 1,
                        "k-Slack-Int precondition violated: \
                         |X| + |Y| = {} ≥ m = {}",
                        mine + peer,
                        self.m
                    );
                    self.k_guess[i] = (self.k_guess[i] / 2).max(1);
                    self.draw_probe(i);
                }
            } else {
                let mid = (self.lo[i] + self.hi[i]) / 2;
                let mine = rank_window_count(sample, mem, self.lo[i], mid);
                let left = (mid - self.lo[i]) as u64;
                if mine + peer < left {
                    self.hi[i] = mid;
                } else {
                    self.lo[i] = mid;
                }
                if self.hi[i] - self.lo[i] == 1 {
                    self.settle(i);
                }
            }
        }
    }

    /// Window narrowed to one candidate: map its permuted position
    /// back through the permutation.
    fn settle(&mut self, i: usize) {
        let sample = &self.sample[i * self.w..(i + 1) * self.w];
        let j = select_rank(sample, self.lo[i]);
        self.result[i] = self.perm[i * self.m + j as usize];
    }
}

/// A batch of `Color-Sample` machines over dense arenas, bit-identical
/// on the wire to the equivalent `Vec<ColorSample>` under
/// `drive_lockstep` (see the module docs for why, and how the blocks
/// parallelize).
#[derive(Debug)]
pub struct ColorSampleBatch {
    blocks: Vec<Block>,
    count: usize,
}

impl ColorSampleBatch {
    /// Builds `count` machines over the palette `{0, …,
    /// palette_size-1}`, partitioned into at most `threads` blocks
    /// built in parallel. `fill` receives each machine index and sets
    /// its stream path and occupied colors; it must be deterministic
    /// in the index (it runs once per machine, in no particular
    /// order across blocks).
    ///
    /// # Panics
    ///
    /// Panics if `palette_size == 0` or a machine's occupied color
    /// falls outside the palette.
    pub fn build<F>(
        palette_size: usize,
        count: usize,
        threads: usize,
        coin: &PublicCoin,
        fill: F,
    ) -> Self
    where
        F: Fn(usize, &mut MachineSpec) + Sync,
    {
        assert!(palette_size >= 1, "palette must be nonempty");
        let coin = *coin;
        let blocks = rayon::par_ranges(count, threads.max(1), |_, range| {
            Block::build(palette_size, range.start, range.len(), &coin, &fill)
        });
        ColorSampleBatch { blocks, count }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the batch holds no machines.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drives every machine to completion over `ep`, one stitched
    /// message per round (exactly `drive_lockstep`'s wire format).
    /// Returns the number of rounds.
    pub fn drive(&mut self, ep: &Endpoint) -> u64 {
        let nblocks = self.blocks.len();
        let mut rounds = 0u64;
        loop {
            // Write phase: blocks fill their slices independently.
            let parts: Vec<(BitWriter, bool)> =
                rayon::par_map_mut(&mut self.blocks, nblocks, |_, blocks| {
                    let mut w = BitWriter::new();
                    let any = blocks[0].write_round(&mut w);
                    (w, any)
                });
            if !parts.iter().any(|&(_, any)| any) {
                return rounds;
            }
            let mut w = BitWriter::new();
            let mut offsets = Vec::with_capacity(parts.len());
            for (bw, _) in &parts {
                offsets.push((w.len_bits(), bw.len_bits()));
                w.append(bw);
            }
            let total_bits = w.len_bits();
            let incoming = ep.exchange(w.finish());
            // Per machine and per round my width equals the peer's, so
            // block boundaries land at my own write offsets.
            assert_eq!(
                incoming.len_bits(),
                total_bits,
                "peer sent a different number of bits than expected"
            );
            let incoming = &incoming;
            let offsets = &offsets;
            rayon::par_map_mut(&mut self.blocks, nblocks, |ci, blocks| {
                let (off, len) = offsets[ci];
                let mut r = incoming.reader();
                r.skip(off);
                blocks[0].read_round(&mut r);
                assert_eq!(r.position() - off, len, "peer block width mismatch");
            });
            rounds += 1;
        }
    }

    /// The settled colors in machine order. Both parties agree on
    /// every entry.
    ///
    /// # Panics
    ///
    /// Panics if the batch has not been driven to completion.
    pub fn results(&self) -> impl Iterator<Item = ColorId> + '_ {
        self.blocks.iter().flat_map(|b| {
            b.result.iter().map(|&c| {
                assert_ne!(c, PENDING, "batch not driven to completion");
                ColorId(c)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color_sample::ColorSample;
    use bichrome_comm::machine::{drive_lockstep, RoundMachine};
    use bichrome_comm::session::run_two_party_ctx;
    use bichrome_comm::CommStats;
    use rand::prelude::*;

    #[test]
    fn rank_window_count_matches_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let words = rng.gen_range(1..4usize);
            let sample: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let mem: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let total = sample.iter().map(|w| w.count_ones()).sum::<u32>();
            if total == 0 {
                continue;
            }
            let lo = rng.gen_range(0..total);
            let hi = rng.gen_range(lo..=total);
            // Naive: walk candidate positions in order.
            let mut naive = 0u64;
            let mut rank = 0u32;
            for pos in 0..words * 64 {
                if (sample[pos / 64] >> (pos % 64)) & 1 == 1 {
                    if rank >= lo && rank < hi && (mem[pos / 64] >> (pos % 64)) & 1 == 1 {
                        naive += 1;
                    }
                    rank += 1;
                }
            }
            assert_eq!(rank_window_count(&sample, &mem, lo, hi), naive);
        }
    }

    #[test]
    fn select_rank_matches_naive() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let words = rng.gen_range(1..4usize);
            let sample: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let positions: Vec<u32> = (0..words as u32 * 64)
                .filter(|&p| (sample[(p / 64) as usize] >> (p % 64)) & 1 == 1)
                .collect();
            for (rank, &pos) in positions.iter().enumerate() {
                assert_eq!(select_rank(&sample, rank as u32), pos);
            }
        }
    }

    /// A randomized instance set: per machine, a palette and two
    /// occupied sets whose cardinalities sum to < palette (the
    /// Problem 6 precondition, as the coloring protocols guarantee).
    fn random_instances(seed: u64, count: usize, palette: usize) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let total = rng.gen_range(0..palette);
                let a_n = rng.gen_range(0..=total);
                let mut colors: Vec<u32> = (0..palette as u32).collect();
                colors.shuffle(&mut rng);
                let a = colors[..a_n].to_vec();
                let b = colors[a_n..total].to_vec();
                (a, b)
            })
            .collect()
    }

    fn run_reference(
        palette: usize,
        instances: &[(Vec<u32>, Vec<u32>)],
        seed: u64,
    ) -> (Vec<ColorId>, Vec<ColorId>, CommStats) {
        let side = |mine: Vec<Vec<u32>>| {
            move |ctx: bichrome_comm::session::PartyCtx| {
                let mut machines: Vec<ColorSample> = mine
                    .iter()
                    .enumerate()
                    .map(|(i, occ)| {
                        ColorSample::new(
                            palette,
                            occ.iter().map(|&c| ColorId(c)),
                            &ctx.coin,
                            &[0xBA7C4, i as u64],
                        )
                    })
                    .collect();
                let mut refs: Vec<&mut dyn RoundMachine> = machines
                    .iter_mut()
                    .map(|m| m as &mut dyn RoundMachine)
                    .collect();
                drive_lockstep(&ctx.endpoint, &mut refs);
                machines
                    .iter()
                    .map(|m| m.result().expect("done"))
                    .collect::<Vec<_>>()
            }
        };
        let a_sets: Vec<Vec<u32>> = instances.iter().map(|(a, _)| a.clone()).collect();
        let b_sets: Vec<Vec<u32>> = instances.iter().map(|(_, b)| b.clone()).collect();
        let (ra, rb, stats) = run_two_party_ctx(seed, side(a_sets), side(b_sets));
        (ra, rb, stats)
    }

    fn run_batch(
        palette: usize,
        instances: &[(Vec<u32>, Vec<u32>)],
        seed: u64,
        threads: usize,
    ) -> (Vec<ColorId>, Vec<ColorId>, CommStats) {
        let side = |mine: Vec<Vec<u32>>| {
            move |ctx: bichrome_comm::session::PartyCtx| {
                let mut batch =
                    ColorSampleBatch::build(palette, mine.len(), threads, &ctx.coin, |i, spec| {
                        spec.set_stream(&[0xBA7C4, i as u64]);
                        spec.extend_occupied(mine[i].iter().map(|&c| ColorId(c)));
                    });
                batch.drive(&ctx.endpoint);
                batch.results().collect::<Vec<_>>()
            }
        };
        let a_sets: Vec<Vec<u32>> = instances.iter().map(|(a, _)| a.clone()).collect();
        let b_sets: Vec<Vec<u32>> = instances.iter().map(|(_, b)| b.clone()).collect();
        let (ra, rb, stats) = run_two_party_ctx(seed, side(a_sets), side(b_sets));
        (ra, rb, stats)
    }

    #[test]
    fn batch_is_bit_identical_to_reference_at_every_thread_count() {
        for (seed, count, palette) in [(1u64, 37usize, 9usize), (2, 80, 17), (3, 5, 1), (4, 64, 70)]
        {
            let instances = random_instances(seed * 31, count, palette);
            let (ra, rb, ref_stats) = run_reference(palette, &instances, seed);
            assert_eq!(ra, rb);
            for threads in [1usize, 2, 3, 8] {
                let (ba, bb, stats) = run_batch(palette, &instances, seed, threads);
                assert_eq!(ba, ra, "results at {threads} threads (seed {seed})");
                assert_eq!(bb, rb);
                assert_eq!(
                    stats, ref_stats,
                    "CommStats at {threads} threads (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let (ra, rb, stats) = run_two_party_ctx(
            0,
            |ctx| {
                let mut b = ColorSampleBatch::build(5, 0, 4, &ctx.coin, |_, _| {});
                assert!(b.is_empty());
                b.drive(&ctx.endpoint)
            },
            |ctx| {
                let mut b = ColorSampleBatch::build(5, 0, 4, &ctx.coin, |_, _| {});
                b.drive(&ctx.endpoint)
            },
        );
        assert_eq!((ra, rb), (0, 0));
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.total_bits(), 0);
    }

    #[test]
    fn results_avoid_both_occupied_sets() {
        let palette = 12;
        let instances = random_instances(99, 50, palette);
        for threads in [1usize, 4] {
            let (ra, _, _) = run_batch(palette, &instances, 5, threads);
            for (i, c) in ra.iter().enumerate() {
                let (a, b) = &instances[i];
                assert!(
                    !a.contains(&c.0) && !b.contains(&c.0),
                    "machine {i} got occupied {c}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside palette")]
    fn occupied_outside_palette_panics() {
        let coin = PublicCoin::new(0);
        let _ = ColorSampleBatch::build(3, 1, 1, &coin, |_, spec| {
            spec.set_stream(&[1]);
            spec.add_occupied(ColorId(3));
        });
    }
}
