//! The `(degree+1)`-list-coloring protocol (§3.3, Lemma 3.3,
//! Appendix B), used to finish the leftover instance after
//! `Random-Color-Trial`.
//!
//! Setup: the vertices `Z` to be colored are public; the edges of the
//! induced graph `G_Z` are split between the parties; for each
//! `v ∈ Z`, Alice holds a list `Ψ_A(v)` and Bob `Ψ_B(v)` with the true
//! palette `Ψ(v) = Ψ_A(v) ∩ Ψ_B(v)` satisfying
//! `|Ψ(v)| ≥ deg_{G_Z}(v) + 1`.
//!
//! Steps (Appendix B):
//! 1. For each `v`, run `Θ(log² |Z|)` parallel
//!    [`ColorSample`](crate::color_sample::ColorSample)
//!    instances to publicly sample `L(v) ⊆ Ψ(v)` — the **palette
//!    sparsification** of Halldórsson–Kuhn–Nolin–Tonoyan
//!    (Proposition 3.2).
//! 2. Drop every edge `{u,v}` with `L(u) ∩ L(v) = ∅` (no bits: `L` is
//!    public, each party filters its own edges), leaving `H`.
//! 3. Bob ships his `H`-edges to Alice (`O(|Z| log² |Z| · log n)`
//!    bits whp); Alice list-colors `H` from the `L`s and announces the
//!    assignment as per-vertex indices into the public `L(v)`.
//! 4. If sparsification failed (too many edges, or `H` resists
//!    coloring within the search budget — probability `1/|Z|^c`), fall
//!    back: Bob ships his whole `G_Z` and his `Ψ_B` bitmaps, and Alice
//!    solves the full D1LC instance greedily (always possible).

use crate::sample_batch::ColorSampleBatch;
use bichrome_comm::session::PartyCtx;
use bichrome_comm::wire::{width_for, BitWriter};
use bichrome_comm::Side;
use bichrome_graph::coloring::{ColorId, VertexColoring};
use bichrome_graph::{Edge, Graph, VertexId};

/// Stream tag for sparsification sampling.
const SPARSIFY_TAG: u64 = 0xD11C_0001;

/// One party's input to the D1LC protocol.
///
/// # Precondition
///
/// Beyond the D1LC condition `|Ψ_A(v) ∩ Ψ_B(v)| ≥ deg_{G_Z}(v) + 1`,
/// the sparsification step inherits Problem 6's requirement on the
/// list *complements*: `|Ψ_A(v)^c| + |Ψ_B(v)^c| ≤ palette − 1` for
/// every `v ∈ z`. Instances arising from partial colorings (the
/// paper's only use) satisfy it automatically — the complements are
/// the colors of each side's colored neighbors, and the two
/// neighborhoods are disjoint, so the cardinalities sum to at most
/// `deg(v) ≤ Δ = palette − 1`. Violations are detected and panic
/// rather than loop.
#[derive(Debug, Clone)]
pub struct D1lcInput {
    /// Which party.
    pub side: Side,
    /// This party's subgraph over the *full* vertex set; only edges
    /// with both endpoints in `z` participate.
    pub graph: Graph,
    /// The public list of vertices to color, sorted ascending.
    pub z: Vec<VertexId>,
    /// `psi[i]` = this party's color list `Ψ_P(z[i])`, each a subset of
    /// `{0, ..., palette-1}`, sorted.
    pub psi: Vec<Vec<ColorId>>,
    /// Universe size (the paper's `Δ+1`).
    pub palette: usize,
}

/// Number of sparsification samples per vertex:
/// `min(palette, ⌈2·log₂²(|Z|+3)⌉)` — the paper's `Θ(log² |Z|)`,
/// capped because more samples than palette colors adds nothing.
pub fn sparsify_samples(z_len: usize, palette: usize) -> usize {
    let l = (z_len as f64 + 3.0).log2().powi(2).ceil() as usize * 2;
    l.clamp(1, palette.max(1))
}

/// Runs one party's side of the D1LC protocol; returns the coloring of
/// the `z` vertices (entries outside `z` untouched), identical on both
/// sides.
///
/// # Panics
///
/// Panics if the inputs are malformed (`psi` length mismatch, unsorted
/// `z`) or if the D1LC condition is violated badly enough that even the
/// fallback greedy pass cannot place a color.
pub fn solve_d1lc(input: &D1lcInput, ctx: &PartyCtx) -> VertexColoring {
    let n = input.graph.num_vertices();
    let zlen = input.z.len();
    assert_eq!(input.psi.len(), zlen, "one Ψ list per z vertex");
    assert!(input.z.windows(2).all(|w| w[0] < w[1]), "z must be sorted");
    ctx.endpoint.meter().set_phase("d1lc");
    let mut coloring = VertexColoring::new(n);
    if zlen == 0 {
        return coloring;
    }

    // Position of each vertex within z.
    let mut zpos = vec![usize::MAX; n];
    for (i, &v) in input.z.iter().enumerate() {
        zpos[v.index()] = i;
    }

    // --- Step 1: palette sparsification via parallel Color-Sample,
    // batched through the SoA engine (bit-identical to per-machine
    // `ColorSample`s at any `ctx.threads`). ---
    let l = sparsify_samples(zlen, input.palette);
    // Flatten the list complements first (occupied = colors *not* in
    // Ψ_P(v)), so the engine's fill closure — which runs once per
    // (vertex, rep) machine, possibly across threads — copies a slice
    // instead of recomputing the complement l times per vertex.
    let mut comp_off: Vec<u32> = Vec::with_capacity(zlen + 1);
    let mut comp_flat: Vec<u32> = Vec::new();
    let mut in_psi = vec![false; input.palette];
    comp_off.push(0);
    for psi in &input.psi {
        for c in psi {
            in_psi[c.index()] = true;
        }
        comp_flat.extend((0..input.palette as u32).filter(|&c| !in_psi[c as usize]));
        for c in psi {
            in_psi[c.index()] = false;
        }
        comp_off.push(comp_flat.len() as u32);
    }
    let mut batch = ColorSampleBatch::build(
        input.palette,
        zlen * l,
        ctx.threads,
        &ctx.coin,
        |idx, spec| {
            let i = idx / l;
            spec.set_stream(&[SPARSIFY_TAG, input.z[i].0 as u64, (idx % l) as u64]);
            let comp = &comp_flat[comp_off[i] as usize..comp_off[i + 1] as usize];
            spec.extend_occupied(comp.iter().map(|&c| ColorId(c)));
        },
    );
    batch.drive(&ctx.endpoint);
    let results: Vec<ColorId> = batch.results().collect();
    drop(batch);
    // Per-vertex list build in deterministic fixed ranges, merged in
    // chunk-index order; each vertex also gets a dense color bitmask
    // for the step-2 intersection tests.
    let w64 = input.palette.div_ceil(64);
    let parts = rayon::par_ranges(zlen, ctx.threads, |_, range| {
        let mut lists_part: Vec<Vec<ColorId>> = Vec::with_capacity(range.len());
        let mut masks_part: Vec<u64> = vec![0u64; range.len() * w64];
        for (k, i) in range.enumerate() {
            let mut list = results[i * l..(i + 1) * l].to_vec();
            list.sort_unstable();
            list.dedup();
            for c in &list {
                masks_part[k * w64 + c.index() / 64] |= 1u64 << (c.index() % 64);
            }
            lists_part.push(list);
        }
        (lists_part, masks_part)
    });
    let mut lists: Vec<Vec<ColorId>> = Vec::with_capacity(zlen);
    let mut list_masks: Vec<u64> = Vec::with_capacity(zlen * w64);
    for (lists_part, masks_part) in parts {
        lists.extend(lists_part);
        list_masks.extend(masks_part);
    }

    // --- Step 2: drop list-disjoint edges (public, no bits). One
    // fused pass over the dense edge array — membership in Z and the
    // L(u) ∩ L(v) test per edge via the bitmasks — chunked
    // deterministically with an index-ordered merge. ---
    let zpos_ref = &zpos;
    let list_masks_ref = &list_masks;
    let my_h_edges: Vec<Edge> = rayon::par_chunks(input.graph.edges(), ctx.threads, |_, chunk| {
        chunk
            .iter()
            .copied()
            .filter(|e| {
                let pu = zpos_ref[e.u().index()];
                let pv = zpos_ref[e.v().index()];
                pu != usize::MAX
                    && pv != usize::MAX
                    && list_masks_ref[pu * w64..(pu + 1) * w64]
                        .iter()
                        .zip(&list_masks_ref[pv * w64..(pv + 1) * w64])
                        .any(|(&a, &b)| a & b != 0)
            })
            .collect::<Vec<Edge>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // --- Step 3: gather H at Alice; she colors and announces. ---
    let zwidth = width_for(zlen as u64 - 1);
    let assignment: Option<Vec<ColorId>> = match input.side {
        Side::Bob => {
            let mut w = BitWriter::new();
            w.write_gamma(my_h_edges.len() as u64);
            for e in &my_h_edges {
                w.write_uint(zpos[e.u().index()] as u64, zwidth);
                w.write_uint(zpos[e.v().index()] as u64, zwidth);
            }
            ctx.endpoint.send(w.finish());
            // Receive the outcome: 1 success bit, then either indices
            // into L(v) or a fallback exchange.
            let msg = ctx.endpoint.recv();
            let mut r = msg.reader();
            if r.read_bit() {
                let mut out = Vec::with_capacity(zlen);
                for list in &lists {
                    let w = width_for(list.len() as u64 - 1);
                    out.push(list[r.read_uint(w) as usize]);
                }
                Some(out)
            } else {
                None
            }
        }
        Side::Alice => {
            let msg = ctx.endpoint.recv();
            let mut r = msg.reader();
            let bob_count = r.read_gamma() as usize;
            let mut h_adj: Vec<Vec<usize>> = vec![Vec::new(); zlen];
            let push = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            };
            for _ in 0..bob_count {
                let a = r.read_uint(zwidth) as usize;
                let b = r.read_uint(zwidth) as usize;
                push(a, b, &mut h_adj);
            }
            for e in &my_h_edges {
                push(zpos[e.u().index()], zpos[e.v().index()], &mut h_adj);
            }
            let solved = list_color_backtracking(&h_adj, &lists, 200_000);
            let mut w = BitWriter::new();
            match &solved {
                Some(colors) => {
                    w.write_bit(true);
                    for (i, list) in lists.iter().enumerate() {
                        let width = width_for(list.len() as u64 - 1);
                        let idx = list
                            .iter()
                            .position(|&c| c == colors[i])
                            .expect("assigned color is in the list");
                        w.write_uint(idx as u64, width);
                    }
                }
                None => w.write_bit(false),
            }
            ctx.endpoint.send(w.finish());
            solved
        }
    };

    let assignment = match assignment {
        Some(a) => a,
        // --- Step 4: fallback — gather everything at Alice. ---
        None => fallback_exchange(input, ctx, &zpos),
    };
    for (i, &v) in input.z.iter().enumerate() {
        coloring.set(v, assignment[i]);
    }
    coloring
}

/// Edges of the party's subgraph with both endpoints in `z`.
fn induced_edges(g: &Graph, zpos: &[usize]) -> Vec<Edge> {
    g.edges()
        .iter()
        .copied()
        .filter(|e| zpos[e.u().index()] != usize::MAX && zpos[e.v().index()] != usize::MAX)
        .collect()
}

/// Step 4: Bob ships his `G_Z` edges and `Ψ_B` bitmaps; Alice solves
/// the full D1LC instance greedily (always succeeds under the D1LC
/// condition) and announces full color ids.
fn fallback_exchange(input: &D1lcInput, ctx: &PartyCtx, zpos: &[usize]) -> Vec<ColorId> {
    let zlen = input.z.len();
    let zwidth = width_for(zlen as u64 - 1);
    let cwidth = width_for(input.palette as u64 - 1);
    match input.side {
        Side::Bob => {
            let mine = induced_edges(&input.graph, zpos);
            let mut w = BitWriter::new();
            w.write_gamma(mine.len() as u64);
            for e in &mine {
                w.write_uint(zpos[e.u().index()] as u64, zwidth);
                w.write_uint(zpos[e.v().index()] as u64, zwidth);
            }
            // One dense palette bitset reused across vertices: set the
            // list's bits, emit, unset — no O(palette) allocation per
            // vertex.
            let mut mask = vec![false; input.palette];
            for psi in &input.psi {
                for c in psi {
                    mask[c.index()] = true;
                }
                w.write_bools(&mask);
                for c in psi {
                    mask[c.index()] = false;
                }
            }
            ctx.endpoint.send(w.finish());
            let msg = ctx.endpoint.recv();
            let mut r = msg.reader();
            (0..zlen)
                .map(|_| ColorId(r.read_uint(cwidth) as u32))
                .collect()
        }
        Side::Alice => {
            let msg = ctx.endpoint.recv();
            let mut r = msg.reader();
            let bob_count = r.read_gamma() as usize;
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); zlen];
            let push = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            };
            for _ in 0..bob_count {
                let a = r.read_uint(zwidth) as usize;
                let b = r.read_uint(zwidth) as usize;
                push(a, b, &mut adj);
            }
            for e in induced_edges(&input.graph, zpos) {
                push(zpos[e.u().index()], zpos[e.v().index()], &mut adj);
            }
            // Greedy D1LC: under |Ψ(v)| ≥ deg+1 a color always remains.
            // Bob's Ψ_B masks arrive in vertex order and the greedy
            // pass visits vertices in the same order, so each mask is
            // read into one reused dense bitset right when it is
            // needed — the true palette Ψ = Ψ_A ∩ Ψ_B is never
            // materialized per vertex. One stamp-marked used-color
            // scratch serves all vertices.
            let mut colors: Vec<Option<ColorId>> = vec![None; zlen];
            let mut used_at = vec![0u32; input.palette];
            let mut mask: Vec<bool> = Vec::new();
            for i in 0..zlen {
                r.read_bools_into(input.palette, &mut mask);
                let stamp = i as u32 + 1;
                for &j in &adj[i] {
                    if let Some(c) = colors[j] {
                        used_at[c.index()] = stamp;
                    }
                }
                let c = input.psi[i]
                    .iter()
                    .copied()
                    .find(|c| mask[c.index()] && used_at[c.index()] != stamp)
                    .expect("D1LC condition guarantees an available color");
                colors[i] = Some(c);
            }
            let out: Vec<ColorId> = colors.into_iter().map(|c| c.expect("all set")).collect();
            let mut w = BitWriter::new();
            for &c in &out {
                w.write_uint(c.0 as u64, cwidth);
            }
            ctx.endpoint.send(w.finish());
            out
        }
    }
}

/// Backtracking list coloring of the sparsified graph, with a step
/// budget. Vertices are processed smallest-list-first; `None` when the
/// budget runs out or the instance is uncolorable.
fn list_color_backtracking(
    adj: &[Vec<usize>],
    lists: &[Vec<ColorId>],
    budget: usize,
) -> Option<Vec<ColorId>> {
    let n = adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (lists[i].len(), i));
    let mut assigned: Vec<Option<ColorId>> = vec![None; n];
    let mut steps = 0usize;
    // Explicit backtracking stack (one Z can be most of a giant
    // graph, so recursion depth O(|Z|) would overflow the thread
    // stack): `next[pos]` is the index of the next untried color at
    // `order[pos]`.
    let mut next = vec![0usize; n];
    let mut pos = 0usize;
    while pos < n {
        let v = order[pos];
        let mut advanced = false;
        while next[pos] < lists[v].len() {
            let c = lists[v][next[pos]];
            next[pos] += 1;
            steps += 1;
            if steps > budget {
                return None;
            }
            if adj[v].iter().any(|&u| assigned[u] == Some(c)) {
                continue;
            }
            assigned[v] = Some(c);
            pos += 1;
            if pos < n {
                next[pos] = 0;
            }
            advanced = true;
            break;
        }
        if !advanced {
            if pos == 0 {
                return None;
            }
            pos -= 1;
            assigned[order[pos]] = None;
        }
    }
    Some(assigned.into_iter().map(|c| c.expect("complete")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_comm::session::run_two_party_ctx;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    /// Builds a realistic D1LC instance the way Theorem 1 does: color
    /// a prefix of the vertices greedily (publicly), take Z = the
    /// rest, and give each party the lists induced by *its own*
    /// colored neighbors. Returns `(g, partition, z, psi_a, psi_b,
    /// palette, lists)` where `lists` are the true palettes
    /// `Ψ = Ψ_A ∩ Ψ_B` for validation.
    #[allow(clippy::type_complexity)]
    fn coloring_induced_instance(
        g: &Graph,
        part: Partitioner,
        keep_every: usize,
    ) -> (D1lcInput, D1lcInput, Vec<Vec<ColorId>>, Vec<VertexId>) {
        let p = part.split(g);
        let palette = g.max_degree() + 1;
        // Publicly pre-color all vertices except every `keep_every`-th.
        let mut pre = VertexColoring::new(g.num_vertices());
        let full = bichrome_graph::greedy::greedy_vertex_coloring(g);
        let z: Vec<VertexId> = g
            .vertices()
            .filter(|v| v.index() % keep_every == 0)
            .collect();
        for v in g.vertices() {
            if v.index() % keep_every != 0 {
                pre.set(v, full.get(v).expect("complete"));
            }
        }
        let psi_of = |side_graph: &Graph| -> Vec<Vec<ColorId>> {
            z.iter()
                .map(|&v| {
                    let mut occ: Vec<ColorId> = side_graph
                        .neighbors(v)
                        .iter()
                        .filter_map(|&u| pre.get(u))
                        .collect();
                    occ.sort_unstable();
                    occ.dedup();
                    (0..palette as u32)
                        .map(ColorId)
                        .filter(|c| occ.binary_search(c).is_err())
                        .collect()
                })
                .collect()
        };
        let psi_a = psi_of(p.alice());
        let psi_b = psi_of(p.bob());
        let lists: Vec<Vec<ColorId>> = psi_a
            .iter()
            .zip(&psi_b)
            .map(|(a, b)| a.iter().copied().filter(|c| b.contains(c)).collect())
            .collect();
        let ia = D1lcInput {
            side: Side::Alice,
            graph: p.alice().clone(),
            z: z.clone(),
            psi: psi_a,
            palette,
        };
        let ib = D1lcInput {
            side: Side::Bob,
            graph: p.bob().clone(),
            z: z.clone(),
            psi: psi_b,
            palette,
        };
        (ia, ib, lists, z)
    }

    #[test]
    fn d1lc_solves_coloring_induced_instances() {
        for seed in 0..5 {
            let g = gen::gnp(30, 0.15, seed);
            let (ia, ib, lists, z) = coloring_induced_instance(&g, Partitioner::Random(seed), 3);
            let (ca, cb, _) = run_two_party_ctx(
                seed,
                move |ctx| solve_d1lc(&ia, &ctx),
                move |ctx| solve_d1lc(&ib, &ctx),
            );
            assert_eq!(ca, cb, "parties must agree");
            // Validate against the induced subgraph on Z with the true
            // lists.
            let zset: std::collections::HashSet<VertexId> = z.iter().copied().collect();
            let gz = g.edge_subgraph(|e| zset.contains(&e.u()) && zset.contains(&e.v()));
            for (i, &v) in z.iter().enumerate() {
                let c = ca.get(v).expect("every z vertex colored");
                assert!(lists[i].contains(&c), "color of {v} outside Ψ(v)");
            }
            for e in gz.edges() {
                if zset.contains(&e.u()) && zset.contains(&e.v()) {
                    assert_ne!(ca.get(e.u()), ca.get(e.v()), "conflict on {e}");
                }
            }
        }
    }

    #[test]
    fn d1lc_empty_z_is_a_noop() {
        let g = gen::path(4);
        let p = Partitioner::Alternating.split(&g);
        let ia = D1lcInput {
            side: Side::Alice,
            graph: p.alice().clone(),
            z: vec![],
            psi: vec![],
            palette: 3,
        };
        let ib = D1lcInput {
            side: Side::Bob,
            graph: p.bob().clone(),
            z: vec![],
            psi: vec![],
            palette: 3,
        };
        let (ca, cb, stats) = run_two_party_ctx(
            0,
            move |ctx| solve_d1lc(&ia, &ctx),
            move |ctx| solve_d1lc(&ib, &ctx),
        );
        assert_eq!(ca, cb);
        assert_eq!(ca.num_colored(), 0);
        assert_eq!(stats.total_bits(), 0);
    }

    #[test]
    fn d1lc_single_vertex() {
        // Ψ_A = {1,2,3}, Ψ_B = {0,2,3} → Ψ = {2,3}; complements have
        // sizes 1 + 1 ≤ palette − 1 = 3, so the instance is valid.
        let g = gen::empty(3);
        let p = Partitioner::AllToAlice.split(&g);
        let mk = |side, psi: Vec<u32>| D1lcInput {
            side,
            graph: p.alice().clone(),
            z: vec![VertexId(1)],
            psi: vec![psi.into_iter().map(ColorId).collect()],
            palette: 4,
        };
        let ia = mk(Side::Alice, vec![1, 2, 3]);
        let ib = mk(Side::Bob, vec![0, 2, 3]);
        let (ca, cb, _) = run_two_party_ctx(
            1,
            move |ctx| solve_d1lc(&ia, &ctx),
            move |ctx| solve_d1lc(&ib, &ctx),
        );
        assert_eq!(ca, cb);
        let c = ca.get(VertexId(1)).expect("colored");
        assert!(
            c == ColorId(2) || c == ColorId(3),
            "must pick from Ψ, got {c}"
        );
    }

    #[test]
    fn d1lc_respects_asymmetric_lists() {
        // Path 0-1: Ψ_A(0) = {0,1}, Ψ_B(0) = {1,2} → Ψ(0) = {1}.
        let g = gen::path(2);
        let p = Partitioner::AllToAlice.split(&g);
        let z = vec![VertexId(0), VertexId(1)];
        let psi_a = vec![
            vec![ColorId(0), ColorId(1)],
            vec![ColorId(0), ColorId(1), ColorId(2)],
        ];
        let psi_b = vec![
            vec![ColorId(1), ColorId(2)],
            vec![ColorId(0), ColorId(1), ColorId(2)],
        ];
        let ia = D1lcInput {
            side: Side::Alice,
            graph: p.alice().clone(),
            z: z.clone(),
            psi: psi_a,
            palette: 3,
        };
        let ib = D1lcInput {
            side: Side::Bob,
            graph: p.bob().clone(),
            z,
            psi: psi_b,
            palette: 3,
        };
        let (ca, cb, _) = run_two_party_ctx(
            5,
            move |ctx| solve_d1lc(&ia, &ctx),
            move |ctx| solve_d1lc(&ib, &ctx),
        );
        assert_eq!(ca, cb);
        assert_eq!(ca.get(VertexId(0)), Some(ColorId(1)), "forced color");
        assert_ne!(ca.get(VertexId(1)), Some(ColorId(1)), "proper on the edge");
    }

    #[test]
    fn backtracking_solver_finds_and_fails_correctly() {
        // Triangle with lists of size 2 each but only 2 colors total:
        // uncolorable.
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let short: Vec<Vec<ColorId>> = vec![vec![ColorId(0), ColorId(1)]; 3];
        assert!(list_color_backtracking(&adj, &short, 10_000).is_none());
        // With three colors somewhere it works.
        let ok: Vec<Vec<ColorId>> = vec![
            vec![ColorId(0), ColorId(1)],
            vec![ColorId(0), ColorId(1)],
            vec![ColorId(0), ColorId(2)],
        ];
        let sol = list_color_backtracking(&adj, &ok, 10_000).expect("colorable");
        assert_ne!(sol[0], sol[1]);
        assert_ne!(sol[1], sol[2]);
        assert_ne!(sol[0], sol[2]);
    }

    #[test]
    fn sparsify_sample_count_behaves() {
        assert!(sparsify_samples(1, 100) >= 1);
        assert!(sparsify_samples(1000, 4) <= 4, "capped at palette");
        assert!(sparsify_samples(1 << 12, 10_000) >= sparsify_samples(4, 10_000));
    }
}
