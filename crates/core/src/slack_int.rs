//! The `k-Slack-Int` protocols (Problem 6, Appendix A).
//!
//! Alice holds `X ⊆ [m]`, Bob holds `Y ⊆ [m]`, with `|X| + |Y| ≤ m − k`
//! for some `k ≥ 1`; the goal is to agree on an element of
//! `[m] \ (X ∪ Y)`.
//!
//! * [`DetSlackInt`] — the deterministic binary-search protocol of
//!   Lemma A.1: `O(log² m)` bits, `O(log m)` rounds, worst case.
//! * [`RandSlackInt`] — Algorithm 3 (Lemma A.2): exponentially
//!   decreasing guesses `k̃` of the slack, a public random sample `S`
//!   per guess, and the deterministic search inside the first sample
//!   with a certified deficit. Expected `O(log²((m+1)/k))` bits and
//!   `O(log((m+1)/k))` rounds.
//!
//! Both are [`RoundMachine`]s so that many instances (one per vertex)
//! can share each round's message, as Algorithm 1 requires.

use bichrome_comm::machine::RoundMachine;
use bichrome_comm::wire::{width_for, BitReader, BitWriter};
use bichrome_comm::Side;
use rand::rngs::StdRng;
use rand::Rng;

/// One party's input to a slack-int instance: membership of its set
/// over the universe `[m]`.
#[derive(Debug, Clone)]
pub struct SetMembership {
    bits: Vec<bool>,
}

impl SetMembership {
    /// Membership from an explicit element list.
    ///
    /// # Panics
    ///
    /// Panics if an element is `>= m`.
    pub fn from_elements(m: usize, elements: impl IntoIterator<Item = u64>) -> Self {
        let mut bits = vec![false; m];
        for e in elements {
            assert!((e as usize) < m, "element {e} outside universe of size {m}");
            bits[e as usize] = true;
        }
        SetMembership { bits }
    }

    /// Membership from a closure over `0..m`.
    pub fn from_fn(m: usize, f: impl FnMut(u64) -> bool) -> Self {
        SetMembership {
            bits: (0..m as u64).map(f).collect(),
        }
    }

    /// Universe size `m`.
    pub fn universe(&self) -> usize {
        self.bits.len()
    }

    /// Whether element `e` belongs to the set.
    #[inline]
    pub fn contains(&self, e: u64) -> bool {
        self.bits[e as usize]
    }

    /// Cardinality of the set.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }
}

/// Deterministic binary-search protocol (Lemma A.1) over a public
/// candidate list.
///
/// Both parties hold the same `candidates` (public) and their own
/// membership. Precondition: the *deficit certificate* holds, i.e.
/// `|S ∩ X| + |S ∩ Y| < |S|` for the candidate list `S` — then some
/// candidate is in neither set and the search provably converges to
/// one. Each round both parties simultaneously announce how many of
/// the first half of the current window belong to their set
/// (`⌈log(|window|+1)⌉` bits each) and recurse into a half whose
/// deficit certificate still holds.
#[derive(Debug)]
pub struct DetSlackInt {
    my: SetMembership,
    candidates: Vec<u64>,
    lo: usize,
    hi: usize,
    pending_width: usize,
    result: Option<u64>,
}

impl DetSlackInt {
    /// Starts a search over `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(my: SetMembership, candidates: Vec<u64>) -> Self {
        assert!(
            !candidates.is_empty(),
            "cannot search an empty candidate list"
        );
        let hi = candidates.len();
        let mut machine = DetSlackInt {
            my,
            candidates,
            lo: 0,
            hi,
            pending_width: 0,
            result: None,
        };
        machine.settle();
        machine
    }

    /// Narrows trivially-decided windows (size 1) without communication.
    fn settle(&mut self) {
        if self.hi - self.lo == 1 {
            self.result = Some(self.candidates[self.lo]);
        }
    }

    fn my_count(&self, lo: usize, hi: usize) -> u64 {
        self.candidates[lo..hi]
            .iter()
            .filter(|&&e| self.my.contains(e))
            .count() as u64
    }

    /// The agreed element, if the search finished.
    pub fn result(&self) -> Option<u64> {
        self.result
    }
}

impl RoundMachine for DetSlackInt {
    fn is_done(&self) -> bool {
        self.result.is_some()
    }

    fn write_round(&mut self, w: &mut BitWriter) {
        let mid = (self.lo + self.hi) / 2;
        let left = mid - self.lo;
        self.pending_width = width_for(left as u64);
        w.write_uint(self.my_count(self.lo, mid), self.pending_width);
    }

    fn read_round(&mut self, r: &mut BitReader<'_>) {
        let peer = r.read_uint(self.pending_width);
        let mid = (self.lo + self.hi) / 2;
        let mine = self.my_count(self.lo, mid);
        let left = (mid - self.lo) as u64;
        if mine + peer < left {
            self.hi = mid;
        } else {
            self.lo = mid;
        }
        self.settle();
    }
}

/// The slack-guess constant of Algorithm 3: sampling probability is
/// `min(1, C·m / k̃²)`. Shared with the batched engine
/// (`crate::sample_batch`), which replicates the probe draw exactly.
pub(crate) const SAMPLE_CONSTANT: f64 = 150.0;

#[derive(Debug)]
enum RandPhase {
    /// Counts over the current sample are in flight.
    Probe { sample: Vec<u64>, width: usize },
    /// Deficit certified; binary search inside the sample.
    Search(DetSlackInt),
}

/// Randomized `k-Slack-Int` protocol (Algorithm 3 / Lemma A.2).
///
/// Precondition (Problem 6): `|X| + |Y| ≤ m − 1`, as a sum of set
/// *cardinalities* — this is stronger than "a free element exists"
/// when the sets overlap, and it is what the deficit certificate
/// `|S∩X| + |S∩Y| < |S|` relies on. The coloring protocols satisfy it
/// because a vertex's Alice-side and Bob-side neighborhoods are
/// disjoint, so the two color sets have total size at most
/// `deg(v) ≤ Δ = m − 1`. Under the precondition the protocol never
/// fails: the final guess `k̃ = 1` samples the full universe, where
/// the deficit holds outright.
///
/// The shared RNG must be an identical public-coin stream on both
/// sides (see `bichrome_comm::coin`).
#[derive(Debug)]
pub struct RandSlackInt {
    my: SetMembership,
    m: usize,
    rng: StdRng,
    k_guess: u64,
    constant: f64,
    phase: RandPhase,
    result: Option<u64>,
}

impl RandSlackInt {
    /// Starts an instance over the universe `[m]` implied by `my`,
    /// with the paper's sampling constant (150).
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty.
    pub fn new(my: SetMembership, rng: StdRng) -> Self {
        Self::with_constant(my, rng, SAMPLE_CONSTANT)
    }

    /// Starts an instance with a custom sampling constant `C`
    /// (probability `min(1, C·m/k̃²)` per guess) — exposed for the
    /// ablation experiment A2. Both parties must pass the same value.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty or `constant` is not positive.
    pub fn with_constant(my: SetMembership, mut rng: StdRng, constant: f64) -> Self {
        let m = my.universe();
        assert!(m >= 1, "universe must be nonempty");
        assert!(constant > 0.0, "sampling constant must be positive");
        let k_guess = m as u64;
        let phase = Self::probe_phase(m, k_guess, constant, &mut rng);
        RandSlackInt {
            my,
            m,
            rng,
            k_guess,
            constant,
            phase,
            result: None,
        }
    }

    fn probe_phase(m: usize, k_guess: u64, constant: f64, rng: &mut StdRng) -> RandPhase {
        let p = (constant * m as f64 / (k_guess as f64 * k_guess as f64)).min(1.0);
        let mut sample = Vec::new();
        // Both sides draw exactly m booleans from the shared stream, so
        // the streams stay aligned regardless of the outcome.
        for e in 0..m as u64 {
            if rng.gen_bool(p) {
                sample.push(e);
            }
        }
        let width = width_for(sample.len() as u64);
        RandPhase::Probe { sample, width }
    }

    /// The agreed element, if finished.
    pub fn result(&self) -> Option<u64> {
        self.result
    }
}

impl RoundMachine for RandSlackInt {
    fn is_done(&self) -> bool {
        self.result.is_some()
    }

    fn write_round(&mut self, w: &mut BitWriter) {
        match &mut self.phase {
            RandPhase::Probe { sample, width } => {
                let count = sample.iter().filter(|&&e| self.my.contains(e)).count() as u64;
                w.write_uint(count, *width);
            }
            RandPhase::Search(det) => det.write_round(w),
        }
    }

    fn read_round(&mut self, r: &mut BitReader<'_>) {
        match &mut self.phase {
            RandPhase::Probe { sample, width } => {
                let peer = r.read_uint(*width);
                let mine = sample.iter().filter(|&&e| self.my.contains(e)).count() as u64;
                if !sample.is_empty() && mine + peer < sample.len() as u64 {
                    // Deficit certified: a free element is inside the sample.
                    let candidates = std::mem::take(sample);
                    let det = DetSlackInt::new(self.my.clone(), candidates);
                    self.result = det.result();
                    self.phase = RandPhase::Search(det);
                } else {
                    // At k̃ = 1 the sample is the full universe; if even
                    // that fails to certify, the Problem 6 precondition
                    // |X| + |Y| ≤ m − 1 was violated by the caller. Fail
                    // loudly rather than looping forever.
                    assert!(
                        sample.len() < self.m || self.k_guess > 1,
                        "k-Slack-Int precondition violated: \
                         |X| + |Y| = {} ≥ m = {}",
                        mine + peer,
                        self.m
                    );
                    self.k_guess = (self.k_guess / 2).max(1);
                    self.phase =
                        Self::probe_phase(self.m, self.k_guess, self.constant, &mut self.rng);
                }
            }
            RandPhase::Search(det) => {
                det.read_round(r);
                self.result = det.result();
            }
        }
    }
}

/// Convenience runner: executes one randomized slack-int instance
/// between the two given memberships and returns
/// `(element, rounds)` along with leaving communication accounted on
/// the session meter. Used heavily in tests and by E4.
///
/// `side` selects which membership drives which endpoint; both sides
/// always agree on the output, which is asserted.
pub fn run_slack_int_session(
    m: usize,
    x: &[u64],
    y: &[u64],
    seed: u64,
) -> (u64, bichrome_comm::CommStats) {
    run_slack_int_session_with_constant(m, x, y, seed, SAMPLE_CONSTANT)
}

/// Like [`run_slack_int_session`] but with a custom sampling constant
/// (see [`RandSlackInt::with_constant`]); used by ablation A2.
pub fn run_slack_int_session_with_constant(
    m: usize,
    x: &[u64],
    y: &[u64],
    seed: u64,
    constant: f64,
) -> (u64, bichrome_comm::CommStats) {
    use bichrome_comm::machine::drive_single;
    use bichrome_comm::session::run_two_party_ctx;

    let mx = SetMembership::from_elements(m, x.iter().copied());
    let my = SetMembership::from_elements(m, y.iter().copied());
    let (ra, rb, stats) = run_two_party_ctx(
        seed,
        move |ctx| {
            let mut machine =
                RandSlackInt::with_constant(mx, ctx.coin.stream(&[0xA11CE]), constant);
            drive_single(&ctx.endpoint, &mut machine);
            machine.result().expect("driven to completion")
        },
        move |ctx| {
            let mut machine =
                RandSlackInt::with_constant(my, ctx.coin.stream(&[0xA11CE]), constant);
            drive_single(&ctx.endpoint, &mut machine);
            machine.result().expect("driven to completion")
        },
    );
    assert_eq!(ra, rb, "parties must agree on the element");
    (ra, stats)
}

/// Marker for `Side`-based helpers kept for API symmetry.
pub fn side_label(side: Side) -> &'static str {
    match side {
        Side::Alice => "alice",
        Side::Bob => "bob",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_comm::machine::drive_single;
    use bichrome_comm::session::run_two_party_ctx;

    #[test]
    fn membership_basics() {
        let s = SetMembership::from_elements(8, [1, 3, 5]);
        assert_eq!(s.universe(), 8);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(0));
        assert!(!s.is_empty());
        assert!(SetMembership::from_elements(4, []).is_empty());
        let f = SetMembership::from_fn(6, |e| e % 2 == 0);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn membership_rejects_out_of_range() {
        let _ = SetMembership::from_elements(4, [4]);
    }

    fn run_det(m: usize, x: Vec<u64>, y: Vec<u64>) -> u64 {
        let candidates: Vec<u64> = (0..m as u64).collect();
        let cand2 = candidates.clone();
        let (ra, rb, _) = run_two_party_ctx(
            0,
            move |ctx| {
                let mut machine = DetSlackInt::new(SetMembership::from_elements(m, x), candidates);
                drive_single(&ctx.endpoint, &mut machine);
                machine.result().expect("done")
            },
            move |ctx| {
                let mut machine = DetSlackInt::new(SetMembership::from_elements(m, y), cand2);
                drive_single(&ctx.endpoint, &mut machine);
                machine.result().expect("done")
            },
        );
        assert_eq!(ra, rb);
        ra
    }

    #[test]
    fn det_finds_free_element() {
        // [8] with X = {0,1,2}, Y = {4,5,6}: free = {3, 7}.
        let e = run_det(8, vec![0, 1, 2], vec![4, 5, 6]);
        assert!(e == 3 || e == 7);
    }

    #[test]
    fn det_single_candidate_needs_no_rounds() {
        let m = DetSlackInt::new(SetMembership::from_elements(3, []), vec![2]);
        assert!(m.is_done());
        assert_eq!(m.result(), Some(2));
    }

    #[test]
    fn det_handles_overlapping_sets() {
        // Overlap makes the naive count pessimistic but still sound.
        let e = run_det(6, vec![0, 1, 2], vec![1, 2, 3]);
        assert!(e == 4 || e == 5, "free elements are 4 and 5, got {e}");
    }

    #[test]
    fn det_only_one_free() {
        for free in 0..8u64 {
            let x: Vec<u64> = (0..8).filter(|&e| e != free && e % 2 == 0).collect();
            let y: Vec<u64> = (0..8).filter(|&e| e != free && e % 2 == 1).collect();
            assert_eq!(run_det(8, x, y), free);
        }
    }

    #[test]
    fn rand_finds_free_element_across_seeds() {
        for seed in 0..30 {
            let (e, _) = run_slack_int_session(32, &[0, 1, 2, 3, 4], &[10, 11, 12], seed);
            assert!(
                !(0..=4).contains(&e) && !(10..=12).contains(&e),
                "element {e} must avoid both sets"
            );
        }
    }

    #[test]
    fn rand_tight_instance_single_free() {
        // m = 16, X ∪ Y covers everything except 9.
        let x: Vec<u64> = (0..8).collect();
        let y: Vec<u64> = (8..16).filter(|&e| e != 9).collect();
        for seed in 0..10 {
            let (e, _) = run_slack_int_session(16, &x, &y, seed);
            assert_eq!(e, 9);
        }
    }

    #[test]
    fn rand_universe_of_one() {
        let (e, stats) = run_slack_int_session(1, &[], &[], 3);
        assert_eq!(e, 0);
        // Guess k̃ = 1 immediately samples everything; one probe round
        // suffices and the window has size 1.
        assert!(
            stats.rounds <= 2,
            "tiny universe should be near-free, got {stats}"
        );
    }

    #[test]
    fn rand_cost_shrinks_with_slack() {
        // Lemma A.2: expected bits O(log²((m+1)/k)). With huge slack the
        // first guesses already certify a deficit; with k = 1 the
        // protocol must walk its guesses down. Compare averages.
        let m = 1 << 10;
        let avg_bits = |x: Vec<u64>, y: Vec<u64>| -> f64 {
            let mut total = 0u64;
            let reps = 20;
            for seed in 0..reps {
                let (_, stats) = run_slack_int_session(m, &x, &y, 1000 + seed);
                total += stats.total_bits();
            }
            total as f64 / reps as f64
        };
        let loose = avg_bits(vec![], vec![]); // k = m
        let tight_x: Vec<u64> = (0..(m as u64) / 2).collect();
        let tight_y: Vec<u64> = ((m as u64) / 2..(m as u64) - 1).collect();
        let tight = avg_bits(tight_x, tight_y); // k = 1
        assert!(
            loose < tight,
            "more slack must mean fewer bits: loose={loose}, tight={tight}"
        );
    }

    #[test]
    fn det_worst_case_bits_are_polylog() {
        // Lemma A.1: O(log² m) bits. For m = 1024 the search has 10
        // levels of ≤ 2·10 bits each; allow slack for rounding.
        let m = 1024;
        let x: Vec<u64> = (0..511).collect();
        let y: Vec<u64> = (512..1023).collect();
        let candidates: Vec<u64> = (0..m as u64).collect();
        let cand2 = candidates.clone();
        let (ra, _, stats) = run_two_party_ctx(
            0,
            move |ctx| {
                let mut machine = DetSlackInt::new(SetMembership::from_elements(m, x), candidates);
                drive_single(&ctx.endpoint, &mut machine);
                machine.result().expect("done")
            },
            move |ctx| {
                let mut machine = DetSlackInt::new(SetMembership::from_elements(m, y), cand2);
                drive_single(&ctx.endpoint, &mut machine);
                machine.result().expect("done")
            },
        );
        assert!(ra == 511 || ra == 1023);
        assert!(
            stats.rounds <= 11,
            "binary search depth, got {}",
            stats.rounds
        );
        assert!(
            stats.total_bits() <= 220,
            "O(log² m) bits, got {}",
            stats.total_bits()
        );
    }

    #[test]
    fn side_labels() {
        assert_eq!(side_label(Side::Alice), "alice");
        assert_eq!(side_label(Side::Bob), "bob");
    }
}
