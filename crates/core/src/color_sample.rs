//! `Color-Sample` — sampling an available color uniformly at random
//! (Lemma 3.1).
//!
//! Given a partial proper coloring, an uncolored vertex `v`, and the
//! color sets `A` (used by Alice-side neighbors of `v`) and `B`
//! (Bob-side), both parties agree on a *uniformly random* element of
//! `[Δ+1] \ (A ∪ B)`.
//!
//! The construction follows the paper exactly: apply a public random
//! permutation to the palette (so no available color is favored), run
//! the randomized `k-Slack-Int` of Algorithm 3 on the permuted sets,
//! and map the result back. Costs: expected `O(log²((Δ+1)/k))` bits
//! and `O(log((Δ+1)/k))` rounds when `k` colors are available; worst
//! case `O(log² Δ)` bits and `O(log Δ)` rounds.

use crate::slack_int::{RandSlackInt, SetMembership};
use bichrome_comm::machine::RoundMachine;
use bichrome_comm::wire::{BitReader, BitWriter};
use bichrome_comm::PublicCoin;
use bichrome_graph::coloring::ColorId;
use rand::seq::SliceRandom;

/// Stream-id tag for the permutation randomness. Shared with the
/// batched engine (`crate::sample_batch`), which must derive identical
/// streams.
pub(crate) const PERM_TAG: u64 = 0xC01_0511;
/// Stream-id tag for the slack-int sampling randomness.
pub(crate) const SAMPLE_TAG: u64 = 0xC01_0512;

/// A lock-step machine sampling one available color uniformly.
///
/// Construct one on each side with that side's occupied-color set and
/// the *same* `(coin, stream)` pair; drive them to completion with
/// `bichrome_comm::machine::drive_lockstep` (possibly batched with
/// thousands of siblings); read [`ColorSample::result`].
#[derive(Debug)]
pub struct ColorSample {
    inner: RandSlackInt,
    /// `perm[j]` = original color at permuted position `j`.
    perm: Vec<u32>,
}

impl ColorSample {
    /// Creates the machine for a palette `{0, ..., palette_size-1}`.
    ///
    /// `occupied` lists the colors used by *this side's* colored
    /// neighbors of the vertex. `coin`/`stream` namespace the public
    /// randomness; both sides must pass identical values (by
    /// convention `stream = [tag, iteration, vertex]`).
    ///
    /// # Panics
    ///
    /// Panics if `palette_size == 0` or an occupied color is outside
    /// the palette.
    pub fn new(
        palette_size: usize,
        occupied: impl IntoIterator<Item = ColorId>,
        coin: &PublicCoin,
        stream: &[u64],
    ) -> Self {
        assert!(palette_size >= 1, "palette must be nonempty");
        let mut perm: Vec<u32> = (0..palette_size as u32).collect();
        let mut perm_ids = vec![PERM_TAG];
        perm_ids.extend_from_slice(stream);
        perm.shuffle(&mut coin.stream(&perm_ids));
        // Invert: pos_of[c] = permuted position of original color c.
        let mut pos_of = vec![0u32; palette_size];
        for (j, &c) in perm.iter().enumerate() {
            pos_of[c as usize] = j as u32;
        }
        let mut bits = vec![false; palette_size];
        for c in occupied {
            assert!(
                c.index() < palette_size,
                "occupied color {c} outside palette"
            );
            bits[pos_of[c.index()] as usize] = true;
        }
        let membership = SetMembership::from_fn(palette_size, |j| bits[j as usize]);
        let mut sample_ids = vec![SAMPLE_TAG];
        sample_ids.extend_from_slice(stream);
        let inner = RandSlackInt::new(membership, coin.stream(&sample_ids));
        ColorSample { inner, perm }
    }

    /// The sampled color, once done. Both sides agree on it.
    pub fn result(&self) -> Option<ColorId> {
        self.inner.result().map(|j| ColorId(self.perm[j as usize]))
    }
}

impl RoundMachine for ColorSample {
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn write_round(&mut self, w: &mut BitWriter) {
        self.inner.write_round(w);
    }

    fn read_round(&mut self, r: &mut BitReader<'_>) {
        self.inner.read_round(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_comm::machine::drive_single;
    use bichrome_comm::session::run_two_party_ctx;
    use std::collections::HashMap;

    /// Runs a single Color-Sample session and returns the agreed color.
    fn sample_once(
        palette: usize,
        a: Vec<u32>,
        b: Vec<u32>,
        seed: u64,
    ) -> (ColorId, bichrome_comm::CommStats) {
        let (ra, rb, stats) = run_two_party_ctx(
            seed,
            move |ctx| {
                let mut m =
                    ColorSample::new(palette, a.into_iter().map(ColorId), &ctx.coin, &[7, 1]);
                drive_single(&ctx.endpoint, &mut m);
                m.result().expect("done")
            },
            move |ctx| {
                let mut m =
                    ColorSample::new(palette, b.into_iter().map(ColorId), &ctx.coin, &[7, 1]);
                drive_single(&ctx.endpoint, &mut m);
                m.result().expect("done")
            },
        );
        assert_eq!(ra, rb, "both parties must know the sampled color");
        (ra, stats)
    }

    #[test]
    fn sampled_color_is_available() {
        for seed in 0..25 {
            let (c, _) = sample_once(8, vec![0, 1, 2], vec![2, 3, 4], seed);
            assert!(
                ![0u32, 1, 2, 3, 4].contains(&c.0),
                "sampled occupied color {c}"
            );
        }
    }

    #[test]
    fn single_available_color_is_found() {
        // Palette of 6, everything but color 4 occupied across the sides.
        for seed in 0..10 {
            let (c, _) = sample_once(6, vec![0, 1, 2], vec![3, 5], seed);
            assert_eq!(c, ColorId(4));
        }
    }

    #[test]
    fn sampling_is_near_uniform() {
        // Lemma 3.1: uniform over available colors. Palette 6 with
        // {0,1} and {2} occupied leaves {3,4,5}; over many seeds each
        // should appear roughly a third of the time.
        let mut histogram: HashMap<u32, usize> = HashMap::new();
        let trials = 600;
        for seed in 0..trials {
            let (c, _) = sample_once(6, vec![0, 1], vec![2], seed);
            *histogram.entry(c.0).or_insert(0) += 1;
        }
        assert_eq!(histogram.len(), 3, "all three available colors must occur");
        for (&c, &count) in &histogram {
            let frac = count as f64 / trials as f64;
            assert!(
                (0.23..0.43).contains(&frac),
                "color {c} frequency {frac} far from 1/3"
            );
        }
    }

    #[test]
    fn empty_occupied_sets() {
        let (c, stats) = sample_once(4, vec![], vec![], 9);
        assert!(c.0 < 4);
        // Full slack: first guess certifies immediately, cheap run.
        assert!(stats.total_bits() < 64, "got {stats}");
    }

    #[test]
    fn palette_of_one() {
        let (c, _) = sample_once(1, vec![], vec![], 0);
        assert_eq!(c, ColorId(0));
    }

    #[test]
    #[should_panic(expected = "outside palette")]
    fn occupied_color_out_of_palette_panics() {
        let coin = PublicCoin::new(0);
        let _ = ColorSample::new(3, [ColorId(3)], &coin, &[0]);
    }

    #[test]
    fn expected_cost_depends_on_availability() {
        // Lemma 3.1(ii): more available colors → cheaper, in
        // expectation and asymptotically. The universe must comfortably
        // exceed Algorithm 3's sampling constant (150) for the
        // separation to show, so use Δ+1 = 1024: with full
        // availability the first guess certifies a ~150-element
        // sample, while k = 1 forces a full-universe search.
        let m = 1024usize;
        let avg = |a: Vec<u32>, b: Vec<u32>| -> f64 {
            let reps = 15u64;
            let mut total = 0;
            for seed in 0..reps {
                let (_, stats) = sample_once(m, a.clone(), b.clone(), 500 + seed);
                total += stats.total_bits();
            }
            total as f64 / reps as f64
        };
        let plenty = avg(vec![], vec![]);
        let scarce = avg(
            (0..(m as u32) / 2).collect(),
            ((m as u32) / 2..(m as u32) - 1).collect(),
        );
        assert!(
            plenty < scarce,
            "plenty={plenty} bits should undercut scarce={scarce} bits"
        );
    }
}
