//! `Random-Color-Trial` (Algorithm 1, §4.1–4.3).
//!
//! Each iteration, every still-uncolored ("active") vertex wakes with
//! probability 1/2 (public coin, costless); awake vertices sample a
//! uniformly random available color with one
//! [`ColorSample`](crate::color_sample::ColorSample) machine each
//! (batched through [`ColorSampleBatch`]), *all machines sharing each
//! round's message*; then one
//! confirmation round (one bit per side per awake vertex) commits every
//! vertex whose sampled color no neighbor picked simultaneously.
//!
//! Guarantees (Lemma 4.1): after `⌈1 + 4·log_{24/23} log n⌉`
//! iterations the expected number of uncolored vertices is
//! `O(n / log⁴ n)`; expected communication is `O(n)` bits; worst-case
//! rounds `O(log log n · log Δ)`.

use crate::input::PartyInput;
use crate::sample_batch::ColorSampleBatch;
use bichrome_comm::session::PartyCtx;
use bichrome_comm::wire::BitWriter;
use bichrome_graph::coloring::{ColorId, VertexColoring};
use bichrome_graph::VertexId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stream tag for wake/idle coin flips.
const WAKE_TAG: u64 = 0x8C7_0001;
/// Stream tag namespace for per-vertex color sampling.
const TRIAL_TAG: u64 = 0x8C7_0002;

/// Tuning of `Random-Color-Trial`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RctConfig {
    /// Number of iterations; `None` uses the paper's
    /// `⌈1 + 4·log_{24/23} log₂ n⌉`.
    pub iterations: Option<usize>,
    /// Stop early (it is a public decision) once every vertex is
    /// colored. Disable to measure the paper's worst-case iteration
    /// count exactly.
    pub early_exit: bool,
}

impl Default for RctConfig {
    fn default() -> Self {
        RctConfig {
            iterations: None,
            early_exit: true,
        }
    }
}

/// The paper's iteration count `⌈1 + 4·log_{24/23}(log₂ n)⌉`
/// (Algorithm 1, line 2), at least 1.
pub fn paper_iterations(n: usize) -> usize {
    let loglog = (n.max(2) as f64).log2().max(1.0).ln();
    let base = (24.0f64 / 23.0).ln();
    (1.0 + 4.0 * loglog / base).ceil() as usize
}

/// Instrumentation from one `Random-Color-Trial` run; identical on
/// both sides.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RctReport {
    /// Number of active vertices at the *start* of each executed
    /// iteration (index 0 = first iteration, so `[0] == n` minus any
    /// isolated pre-coloring — here always `n`).
    pub active_per_iteration: Vec<usize>,
    /// Active vertices remaining after the last iteration.
    pub remaining: usize,
    /// Iterations actually executed (≤ configured when `early_exit`).
    pub iterations_run: usize,
}

/// Runs one party's side of `Random-Color-Trial`, extending `coloring`
/// (the public partial coloring, initially empty) in place.
///
/// Both parties must call this with the same `ctx.coin`, the same
/// `config`, and `coloring`s with identical contents; they finish with
/// identical colorings — the color of every committed vertex is public.
pub fn run_random_color_trial(
    input: &PartyInput,
    ctx: &PartyCtx,
    coloring: &mut VertexColoring,
    config: &RctConfig,
) -> RctReport {
    let n = input.num_vertices();
    let palette = input.delta + 1;
    let iterations = config.iterations.unwrap_or_else(|| paper_iterations(n));
    ctx.endpoint.meter().set_phase("rct");

    let mut report = RctReport::default();
    for iter in 0..iterations {
        let active: Vec<VertexId> = (0..n as u32)
            .map(VertexId)
            .filter(|&v| !coloring.is_colored(v))
            .collect();
        if active.is_empty() && config.early_exit {
            break;
        }
        report.active_per_iteration.push(active.len());
        report.iterations_run = iter + 1;

        // Public wake coin per active vertex: no communication.
        let awake: Vec<VertexId> = active
            .iter()
            .copied()
            .filter(|v| {
                ctx.coin
                    .stream(&[WAKE_TAG, iter as u64, v.0 as u64])
                    .gen_bool(0.5)
            })
            .collect();
        if awake.is_empty() {
            continue;
        }

        // One Color-Sample machine per awake vertex, batched through
        // the SoA engine (bit-identical to per-machine `ColorSample`s
        // at any thread budget; duplicate occupied colors set the same
        // membership bit, so no dedup pass is needed).
        let coloring_ref = &*coloring;
        let mut batch =
            ColorSampleBatch::build(palette, awake.len(), ctx.threads, &ctx.coin, |i, spec| {
                let v = awake[i];
                spec.set_stream(&[TRIAL_TAG, iter as u64, v.0 as u64]);
                spec.extend_occupied(
                    input
                        .graph
                        .neighbors(v)
                        .iter()
                        .filter_map(|&u| coloring_ref.get(u)),
                );
            });
        batch.drive(&ctx.endpoint);
        let proposals: Vec<ColorId> = batch.results().collect();

        // Confirmation round: for each awake vertex, one bit saying "no
        // neighbor of mine picked the same color this iteration".
        let mut proposal_of = vec![None; n];
        for (i, &v) in awake.iter().enumerate() {
            proposal_of[v.index()] = Some(proposals[i]);
        }
        let mut w = BitWriter::new();
        let my_ok: Vec<bool> = awake
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let clash = input
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| proposal_of[u.index()] == Some(proposals[i]));
                !clash
            })
            .collect();
        w.write_bools(&my_ok);
        let incoming = ctx.endpoint.exchange(w.finish());
        let peer_ok = incoming.reader().read_bools(awake.len());

        for (i, &v) in awake.iter().enumerate() {
            if my_ok[i] && peer_ok[i] {
                coloring.set(v, proposals[i]);
            }
        }
    }
    report.remaining = (0..n as u32)
        .filter(|&v| !coloring.is_colored(VertexId(v)))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_comm::session::run_two_party_ctx;
    use bichrome_graph::coloring::validate_partial_vertex_coloring;
    use bichrome_graph::partition::Partitioner;
    use bichrome_graph::{gen, Graph};

    fn run_rct(
        g: &Graph,
        part: Partitioner,
        seed: u64,
        config: RctConfig,
    ) -> (VertexColoring, RctReport, bichrome_comm::CommStats) {
        let p = part.split(g);
        let a = PartyInput::alice(&p);
        let b = PartyInput::bob(&p);
        let ((ca, ra), (cb, rb), stats) = run_two_party_ctx(
            seed,
            move |ctx| {
                let mut coloring = VertexColoring::new(a.num_vertices());
                let rep = run_random_color_trial(&a, &ctx, &mut coloring, &config);
                (coloring, rep)
            },
            move |ctx| {
                let mut coloring = VertexColoring::new(b.num_vertices());
                let rep = run_random_color_trial(&b, &ctx, &mut coloring, &config);
                (coloring, rep)
            },
        );
        assert_eq!(ca, cb, "parties must agree on the partial coloring");
        assert_eq!(ra, rb, "reports are public state");
        (ca, ra, stats)
    }

    #[test]
    fn paper_iterations_grows_doubly_logarithmically() {
        assert!(paper_iterations(2) >= 1);
        let small = paper_iterations(1 << 8);
        let big = paper_iterations(1 << 16);
        assert!(big > small);
        // log log growth: doubling the exponent adds ~ 4·ln(2)/ln(24/23) ≈ 65.
        assert!(
            big - small < 100,
            "growth must be additive-ish: {small} -> {big}"
        );
    }

    #[test]
    fn rct_produces_valid_partial_coloring() {
        let g = gen::gnp(60, 0.1, 5);
        let (c, rep, _) = run_rct(&g, Partitioner::Random(3), 11, RctConfig::default());
        assert!(validate_partial_vertex_coloring(&g, &c).is_ok());
        assert!(c.max_color().is_none_or(|m| m.index() <= g.max_degree()));
        assert_eq!(rep.remaining, c.uncolored_vertices().len());
    }

    #[test]
    fn rct_colors_most_vertices() {
        let g = gen::gnp(120, 0.08, 2);
        let (c, rep, _) = run_rct(&g, Partitioner::Alternating, 7, RctConfig::default());
        // Lemma 4.1(i): expected leftover O(n / log⁴ n) — tiny here.
        assert!(
            rep.remaining <= g.num_vertices() / 4,
            "too many uncolored: {} of {}",
            rep.remaining,
            g.num_vertices()
        );
        assert!(c.num_colored() + rep.remaining == g.num_vertices());
    }

    #[test]
    fn rct_activity_decays() {
        let g = gen::near_regular(150, 10, 4);
        let (_, rep, _) = run_rct(&g, Partitioner::Random(1), 3, RctConfig::default());
        let first = rep.active_per_iteration[0];
        assert_eq!(first, 150);
        // Find activity five iterations in (if the run lasted): it must
        // have shrunk markedly (expected factor (23/24)^5, empirically
        // much faster).
        if let Some(&later) = rep.active_per_iteration.get(5) {
            assert!(later < first, "activity must decay: {first} -> {later}");
        }
    }

    #[test]
    fn rct_on_empty_graph_colors_everything_first_wake() {
        let g = gen::empty(20);
        let (c, rep, stats) = run_rct(&g, Partitioner::AllToAlice, 0, RctConfig::default());
        assert!(c.is_complete());
        assert_eq!(rep.remaining, 0);
        // No conflicts are possible; a handful of iterations of wake
        // coins suffice, with bits only for sampling/confirmation.
        // P(some vertex idle 16 times) ≈ 20/2^16 — negligible.
        assert!(rep.iterations_run <= 16);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn rct_respects_fixed_iteration_budget() {
        let g = gen::cycle(30);
        let cfg = RctConfig {
            iterations: Some(2),
            early_exit: false,
        };
        let (_, rep, _) = run_rct(&g, Partitioner::Alternating, 5, cfg);
        assert_eq!(rep.iterations_run, 2);
        assert_eq!(rep.active_per_iteration.len(), 2);
    }

    #[test]
    fn rct_deterministic_given_seed() {
        let g = gen::gnp(40, 0.15, 8);
        let (c1, r1, s1) = run_rct(&g, Partitioner::Random(2), 21, RctConfig::default());
        let (c2, r2, s2) = run_rct(&g, Partitioner::Random(2), 21, RctConfig::default());
        assert_eq!(c1, c2);
        assert_eq!(r1, r2);
        assert_eq!(s1.total_bits(), s2.total_bits());
    }

    #[test]
    fn rct_linear_communication_in_practice() {
        // Lemma 4.1(ii): expected O(n) bits. Check bits/n stays modest
        // and does not explode with n on a fixed-degree family.
        let mut per_n = Vec::new();
        for &n in &[100usize, 200, 400] {
            let g = gen::near_regular(n, 8, 9);
            let (_, _, stats) = run_rct(&g, Partitioner::Random(4), 17, RctConfig::default());
            per_n.push(stats.total_bits() as f64 / n as f64);
        }
        // Constant-ish bits per vertex: the largest ratio should not be
        // more than ~2.5x the smallest.
        let min = per_n.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_n.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.5, "bits-per-vertex ratios {per_n:?} not flat");
    }
}
