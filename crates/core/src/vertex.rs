//! The `(Δ+1)`-vertex-coloring protocol of **Theorem 1** (§4.4):
//! `Random-Color-Trial` followed by the D1LC protocol on the leftover
//! vertices.
//!
//! Expected communication `O(n)` bits; worst-case rounds
//! `O(log log n · log Δ)`. Both parties output the full coloring.

use crate::d1lc::{solve_d1lc, D1lcInput};
use crate::input::PartyInput;
use crate::rct::{run_random_color_trial, RctConfig, RctReport};
use bichrome_comm::session::{run_two_party_ctx, PartyCtx};
use bichrome_comm::CommStats;
use bichrome_graph::coloring::{ColorId, VertexColoring};
use bichrome_graph::partition::EdgePartition;

/// Result of a full vertex-coloring protocol run.
#[derive(Debug, Clone)]
pub struct VertexOutcome {
    /// The complete `(Δ+1)`-coloring (identical on both sides).
    pub coloring: VertexColoring,
    /// Communication statistics of the session.
    pub stats: CommStats,
    /// `Random-Color-Trial` instrumentation.
    pub rct: RctReport,
}

/// One party's protocol script for Theorem 1.
///
/// Both parties run this; they finish with identical colorings.
pub fn vertex_coloring_party(
    input: &PartyInput,
    ctx: &PartyCtx,
    config: &RctConfig,
) -> (VertexColoring, RctReport) {
    let palette = input.delta + 1;
    // Step 1: Random-Color-Trial.
    let mut coloring = VertexColoring::new(input.num_vertices());
    let report = run_random_color_trial(input, ctx, &mut coloring, config);

    // Step 2: formulate the leftover D1LC instance on Z.
    let z = coloring.uncolored_vertices();
    let psi: Vec<Vec<ColorId>> = z
        .iter()
        .map(|&v| {
            let mut occupied: Vec<ColorId> = input
                .graph
                .neighbors(v)
                .iter()
                .filter_map(|&u| coloring.get(u))
                .collect();
            occupied.sort_unstable();
            occupied.dedup();
            (0..palette as u32)
                .map(ColorId)
                .filter(|c| occupied.binary_search(c).is_err())
                .collect()
        })
        .collect();
    let d1lc_input = D1lcInput {
        side: input.side,
        graph: input.graph.clone(),
        z,
        psi,
        palette,
    };

    // Step 3: solve D1LC and merge.
    let leftover = solve_d1lc(&d1lc_input, ctx);
    for v in input.graph.vertices() {
        if let Some(c) = leftover.get(v) {
            let previous = coloring.set(v, c);
            debug_assert!(previous.is_none(), "D1LC only touches uncolored vertices");
        }
    }
    (coloring, report)
}

/// Runs the full Theorem 1 protocol over a two-thread session.
///
/// # Panics
///
/// Panics if the two parties disagree on the output (a protocol bug,
/// checked defensively) or a party thread panics.
#[deprecated(
    since = "0.1.0",
    note = "use bichrome_runner: registry().get(\"vertex/theorem1\") and Protocol::run, \
            or TrialPlan for repeated trials"
)]
pub fn solve_vertex_coloring(
    partition: &EdgePartition,
    seed: u64,
    config: &RctConfig,
) -> VertexOutcome {
    let a = PartyInput::alice(partition);
    let b = PartyInput::bob(partition);
    let cfg_a = *config;
    let cfg_b = *config;
    let ((ca, ra), (cb, rb), stats) = run_two_party_ctx(
        seed,
        move |ctx| vertex_coloring_party(&a, &ctx, &cfg_a),
        move |ctx| vertex_coloring_party(&b, &ctx, &cfg_b),
    );
    assert_eq!(ca, cb, "both parties must output the same coloring");
    assert_eq!(ra, rb, "RCT reports are public state");
    VertexOutcome {
        coloring: ca,
        stats,
        rct: ra,
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim stays covered until it is removed

    use super::*;
    use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn theorem1_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnp(50, 0.12, seed);
            let p = Partitioner::Random(seed).split(&g);
            let out = solve_vertex_coloring(&p, seed, &RctConfig::default());
            assert!(
                validate_vertex_coloring_with_palette(&g, &out.coloring, g.max_degree() + 1)
                    .is_ok(),
                "invalid coloring at seed {seed}"
            );
        }
    }

    #[test]
    fn theorem1_across_partitioners() {
        let g = gen::near_regular(60, 6, 3);
        for part in Partitioner::family(5) {
            let p = part.split(&g);
            let out = solve_vertex_coloring(&p, 9, &RctConfig::default());
            assert!(
                validate_vertex_coloring_with_palette(&g, &out.coloring, 7).is_ok(),
                "invalid under partitioner {part}"
            );
        }
    }

    #[test]
    fn theorem1_on_structured_graphs() {
        for g in [
            gen::cycle(21),
            gen::star(17),
            gen::complete(9),
            gen::path(13),
        ] {
            let p = Partitioner::Alternating.split(&g);
            let out = solve_vertex_coloring(&p, 4, &RctConfig::default());
            assert!(
                validate_vertex_coloring_with_palette(&g, &out.coloring, g.max_degree() + 1)
                    .is_ok(),
                "invalid coloring on {g}"
            );
        }
    }

    #[test]
    fn theorem1_handles_empty_and_tiny() {
        let g = gen::empty(7);
        let p = Partitioner::AllToBob.split(&g);
        let out = solve_vertex_coloring(&p, 0, &RctConfig::default());
        assert!(out.coloring.is_complete());
        let g = gen::path(2);
        let p = Partitioner::AllToAlice.split(&g);
        let out = solve_vertex_coloring(&p, 0, &RctConfig::default());
        assert!(validate_vertex_coloring_with_palette(&g, &out.coloring, 2).is_ok());
    }

    #[test]
    fn theorem1_deterministic_per_seed() {
        let g = gen::gnp(40, 0.2, 6);
        let p = Partitioner::Random(1).split(&g);
        let o1 = solve_vertex_coloring(&p, 33, &RctConfig::default());
        let o2 = solve_vertex_coloring(&p, 33, &RctConfig::default());
        assert_eq!(o1.coloring, o2.coloring);
        assert_eq!(o1.stats.total_bits(), o2.stats.total_bits());
    }

    #[test]
    fn theorem1_round_complexity_is_modest() {
        // O(log log n · log Δ) rounds — for n = 200, Δ ≈ 8 this is a few
        // hundred at the very most; assert a generous ceiling that the
        // O(n)-round baseline (n = 200 vertices sequentially) would
        // blow through.
        let g = gen::near_regular(200, 8, 1);
        let p = Partitioner::Random(2).split(&g);
        let out = solve_vertex_coloring(&p, 5, &RctConfig::default());
        assert!(
            out.stats.rounds < 2_000,
            "rounds {} out of line for n=200",
            out.stats.rounds
        );
    }
}
