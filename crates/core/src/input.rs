//! Per-party protocol inputs.

use bichrome_comm::Side;
use bichrome_graph::partition::EdgePartition;
use bichrome_graph::Graph;

/// What one party knows at the start of a protocol (§3.1): its side,
/// its own edge set (as a subgraph on the full vertex set), and the
/// public parameters `n` and `Δ` of the *whole* graph.
#[derive(Debug, Clone)]
pub struct PartyInput {
    /// Which party this is.
    pub side: Side,
    /// This party's subgraph `G_P = (V, E_P)`.
    pub graph: Graph,
    /// Maximum degree Δ of the whole graph (a given of the model).
    pub delta: usize,
}

impl PartyInput {
    /// Alice's input extracted from a partition.
    pub fn alice(p: &EdgePartition) -> Self {
        PartyInput {
            side: Side::Alice,
            graph: p.alice().clone(),
            delta: p.max_degree(),
        }
    }

    /// Bob's input extracted from a partition.
    pub fn bob(p: &EdgePartition) -> Self {
        PartyInput {
            side: Side::Bob,
            graph: p.bob().clone(),
            delta: p.max_degree(),
        }
    }

    /// Number of vertices `n` (public).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::{gen, partition::Partitioner};

    #[test]
    fn inputs_carry_global_delta() {
        let g = gen::star(10); // Δ = 9
        let p = Partitioner::Alternating.split(&g);
        let a = PartyInput::alice(&p);
        let b = PartyInput::bob(&p);
        assert_eq!(a.delta, 9);
        assert_eq!(b.delta, 9);
        assert_eq!(a.num_vertices(), 10);
        assert!(
            a.graph.max_degree() < 9,
            "alice holds only part of the star"
        );
        assert_eq!(a.side, Side::Alice);
        assert_eq!(b.side, Side::Bob);
    }
}
