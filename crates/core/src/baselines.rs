//! Baseline vertex-coloring protocols the paper compares against
//! (§1.1, §2.1).
//!
//! * [`flin_mittal`] — the Flin–Mittal protocol \[FM25\]: color
//!   vertices one at a time in a public random order, finding each
//!   vertex's color with one slack-int instance. `O(n)` bits expected
//!   but `O(n)` rounds — the round-inefficiency Theorem 1 removes.
//! * [`greedy_binary_search`] — the folklore deterministic protocol
//!   (§1): simulate greedy coloring, locating an available color by
//!   deterministic binary search. `O(n log² Δ)` bits, `O(n log Δ)`
//!   rounds.
//! * [`send_everything`] — the one-round protocol implicit in the
//!   trivial upper bound: exchange both edge sets (`O(m log n)` bits)
//!   and color locally.

use crate::color_sample::ColorSample;
use crate::input::PartyInput;
use crate::slack_int::{DetSlackInt, SetMembership};
use bichrome_comm::machine::drive_single;
use bichrome_comm::session::{run_two_party_ctx, PartyCtx};
use bichrome_comm::wire::{width_for, BitWriter};
use bichrome_comm::CommStats;
use bichrome_graph::coloring::{ColorId, VertexColoring};
use bichrome_graph::greedy::greedy_vertex_coloring;
use bichrome_graph::partition::EdgePartition;
use bichrome_graph::{Edge, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Stream tag for the Flin–Mittal random vertex order.
const FM_ORDER_TAG: u64 = 0xF3_0001;
/// Stream tag for Flin–Mittal per-vertex sampling.
const FM_SAMPLE_TAG: u64 = 0xF3_0002;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Baseline {
    /// Flin–Mittal sequential random-order coloring.
    FlinMittal,
    /// Deterministic greedy + binary search.
    GreedyBinarySearch,
    /// One-round exchange of the entire input.
    SendEverything,
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Baseline::FlinMittal => write!(f, "flin-mittal"),
            Baseline::GreedyBinarySearch => write!(f, "greedy-binary-search"),
            Baseline::SendEverything => write!(f, "send-everything"),
        }
    }
}

/// One party's script for the Flin–Mittal baseline \[FM25\].
pub fn flin_mittal(input: &PartyInput, ctx: &PartyCtx) -> VertexColoring {
    let _phase = ctx.endpoint.meter().phase_scope("flin-mittal");
    let n = input.num_vertices();
    let palette = input.delta + 1;
    let mut order: Vec<VertexId> = input.graph.vertices().collect();
    order.shuffle(&mut ctx.coin.stream(&[FM_ORDER_TAG]));
    let mut coloring = VertexColoring::new(n);
    for (idx, &v) in order.iter().enumerate() {
        let occupied: Vec<ColorId> = input
            .graph
            .neighbors(v)
            .iter()
            .filter_map(|&u| coloring.get(u))
            .collect();
        let mut machine = ColorSample::new(
            palette,
            dedup(occupied),
            &ctx.coin,
            &[FM_SAMPLE_TAG, idx as u64],
        );
        drive_single(&ctx.endpoint, &mut machine);
        coloring.set(v, machine.result().expect("driven to completion"));
    }
    coloring
}

/// One party's script for the deterministic greedy + binary-search
/// baseline.
pub fn greedy_binary_search(input: &PartyInput, ctx: &PartyCtx) -> VertexColoring {
    ctx.endpoint.meter().set_phase("greedy-binary-search");
    let n = input.num_vertices();
    let palette = input.delta + 1;
    let mut coloring = VertexColoring::new(n);
    for v in input.graph.vertices() {
        let occupied: Vec<ColorId> = input
            .graph
            .neighbors(v)
            .iter()
            .filter_map(|&u| coloring.get(u))
            .collect();
        let occupied = dedup(occupied);
        let membership = SetMembership::from_elements(palette, occupied.iter().map(|c| c.0 as u64));
        let mut machine = DetSlackInt::new(membership, (0..palette as u64).collect());
        drive_single(&ctx.endpoint, &mut machine);
        let c = machine
            .result()
            .expect("deficit holds: ≤ Δ occupied of Δ+1");
        coloring.set(v, ColorId(c as u32));
    }
    coloring
}

/// One party's script for the one-round send-everything baseline.
///
/// Both parties ship their edge lists simultaneously (one round),
/// reconstruct the whole graph, and run the same local greedy
/// coloring.
pub fn send_everything(input: &PartyInput, ctx: &PartyCtx) -> VertexColoring {
    ctx.endpoint.meter().set_phase("send-everything");
    let n = input.num_vertices();
    let vwidth = width_for(n.saturating_sub(1) as u64);
    let mut w = BitWriter::new();
    w.write_gamma(input.graph.num_edges() as u64);
    for e in input.graph.edges() {
        w.write_uint(e.u().0 as u64, vwidth);
        w.write_uint(e.v().0 as u64, vwidth);
    }
    let incoming = ctx.endpoint.exchange(w.finish());
    let mut r = incoming.reader();
    let peer_edges = r.read_gamma() as usize;
    let mut builder = GraphBuilder::new(n);
    for _ in 0..peer_edges {
        let u = VertexId(r.read_uint(vwidth) as u32);
        let v = VertexId(r.read_uint(vwidth) as u32);
        builder.push(Edge::new(u, v));
    }
    builder.extend(input.graph.edges().iter().copied());
    let whole = builder.build();
    greedy_vertex_coloring(&whole)
}

fn dedup(mut colors: Vec<ColorId>) -> Vec<ColorId> {
    colors.sort_unstable();
    colors.dedup();
    colors
}

/// Runs a baseline over a two-thread session.
///
/// # Panics
///
/// Panics if the parties disagree on the coloring.
#[deprecated(
    since = "0.1.0",
    note = "use bichrome_runner: registry().get(\"baseline/flin-mittal\") (or the other \
            baseline keys) and Protocol::run, or TrialPlan for repeated trials"
)]
pub fn run_baseline(
    partition: &EdgePartition,
    baseline: Baseline,
    seed: u64,
) -> (VertexColoring, CommStats) {
    let a = PartyInput::alice(partition);
    let b = PartyInput::bob(partition);
    let script = move |input: PartyInput| {
        move |ctx: PartyCtx| match baseline {
            Baseline::FlinMittal => flin_mittal(&input, &ctx),
            Baseline::GreedyBinarySearch => greedy_binary_search(&input, &ctx),
            Baseline::SendEverything => send_everything(&input, &ctx),
        }
    };
    let (ca, cb, stats) = run_two_party_ctx(seed, script(a), script(b));
    assert_eq!(ca, cb, "baseline parties must agree");
    (ca, stats)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim stays covered until it is removed

    use super::*;
    use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn all_baselines_color_correctly() {
        let g = gen::gnp(40, 0.15, 2);
        let p = Partitioner::Random(7).split(&g);
        for baseline in [
            Baseline::FlinMittal,
            Baseline::GreedyBinarySearch,
            Baseline::SendEverything,
        ] {
            let (c, _) = run_baseline(&p, baseline, 11);
            assert!(
                validate_vertex_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok(),
                "{baseline} produced an invalid coloring"
            );
        }
    }

    #[test]
    fn send_everything_is_one_round() {
        let g = gen::gnp(30, 0.2, 3);
        let p = Partitioner::Alternating.split(&g);
        let (_, stats) = run_baseline(&p, Baseline::SendEverything, 0);
        assert_eq!(stats.rounds, 1);
        assert!(stats.total_bits() > 0);
    }

    #[test]
    fn flin_mittal_rounds_scale_linearly() {
        // The point of Theorem 1: FM needs Ω(n) rounds. Compare n=30 vs
        // n=60 on a fixed-degree family: rounds should roughly double.
        let rounds = |n: usize| {
            let g = gen::near_regular(n, 6, 5);
            let p = Partitioner::Random(1).split(&g);
            let (_, stats) = run_baseline(&p, Baseline::FlinMittal, 3);
            stats.rounds
        };
        let r30 = rounds(30);
        let r60 = rounds(60);
        assert!(
            r60 as f64 > 1.5 * r30 as f64,
            "FM rounds must grow ~linearly: {r30} vs {r60}"
        );
        assert!(r30 >= 30, "at least one round per vertex");
    }

    #[test]
    fn greedy_binary_search_is_deterministic() {
        let g = gen::gnp(25, 0.3, 9);
        let p = Partitioner::ParitySum.split(&g);
        let (c1, s1) = run_baseline(&p, Baseline::GreedyBinarySearch, 1);
        let (c2, s2) = run_baseline(&p, Baseline::GreedyBinarySearch, 999);
        // Different seeds: identical output and cost (no randomness).
        assert_eq!(c1, c2);
        assert_eq!(s1.total_bits(), s2.total_bits());
        assert_eq!(s1.rounds, s2.rounds);
    }

    #[test]
    fn baselines_handle_edge_cases() {
        for g in [gen::empty(5), gen::path(2), gen::star(6)] {
            for part in [Partitioner::AllToAlice, Partitioner::Alternating] {
                let p = part.split(&g);
                for baseline in [
                    Baseline::FlinMittal,
                    Baseline::GreedyBinarySearch,
                    Baseline::SendEverything,
                ] {
                    let (c, _) = run_baseline(&p, baseline, 4);
                    assert!(
                        validate_vertex_coloring_with_palette(&g, &c, g.max_degree() + 1).is_ok()
                    );
                }
            }
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(Baseline::FlinMittal.to_string(), "flin-mittal");
        assert_eq!(
            Baseline::GreedyBinarySearch.to_string(),
            "greedy-binary-search"
        );
        assert_eq!(Baseline::SendEverything.to_string(), "send-everything");
    }
}
