//! `bichrome-core` — the protocols of *Round and Communication
//! Efficient Graph Coloring* (Chang, Mishra, Nguyen, Salim; PODC
//! 2025), implemented over the `bichrome-comm` two-party substrate and
//! the `bichrome-graph` graph substrate.
//!
//! # What's here
//!
//! * [`slack_int`] — the `k-Slack-Int` set protocols (Appendix A):
//!   deterministic binary search (Lemma A.1) and randomized
//!   Algorithm 3 (Lemma A.2).
//! * [`color_sample`] — uniform available-color sampling
//!   (Lemma 3.1).
//! * [`rct`] — `Random-Color-Trial` (Algorithm 1).
//! * [`d1lc`] — the `(degree+1)`-list-coloring protocol with palette
//!   sparsification (Proposition 3.2, Lemma 3.3).
//! * [`vertex`] — **Theorem 1**: `(Δ+1)`-vertex coloring with `O(n)`
//!   expected bits and `O(log log n · log Δ)` worst-case rounds.
//! * [`edge`] — **Theorem 2**: deterministic `(2Δ−1)`-edge coloring
//!   with `O(n)` bits and `O(1)` rounds; **Theorem 3**: `(2Δ)`-edge
//!   coloring with zero communication; Lemma 5.1's constant-Δ
//!   protocol.
//! * [`baselines`] — Flin–Mittal, deterministic greedy+binary-search,
//!   and send-everything comparators.
//!
//! # Quickstart
//!
//! ```
//! use bichrome_core::{rct::RctConfig, vertex::solve_vertex_coloring};
//! use bichrome_graph::{gen, partition::Partitioner};
//! use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
//!
//! let g = gen::gnp(60, 0.1, 7);
//! let partition = Partitioner::Random(1).split(&g);
//! let out = solve_vertex_coloring(&partition, 42, &RctConfig::default());
//! assert!(validate_vertex_coloring_with_palette(&g, &out.coloring, g.max_degree() + 1).is_ok());
//! println!("{} bits, {} rounds", out.stats.total_bits(), out.stats.rounds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod color_sample;
pub mod d1lc;
pub mod edge;
pub mod input;
pub mod rct;
pub mod slack_int;
pub mod vertex;

pub use input::PartyInput;
pub use vertex::{solve_vertex_coloring, VertexOutcome};
