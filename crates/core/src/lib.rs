//! `bichrome-core` — the protocols of *Round and Communication
//! Efficient Graph Coloring* (Chang, Mishra, Nguyen, Salim; PODC
//! 2025), implemented over the `bichrome-comm` two-party substrate and
//! the `bichrome-graph` graph substrate.
//!
//! # What's here
//!
//! * [`slack_int`] — the `k-Slack-Int` set protocols (Appendix A):
//!   deterministic binary search (Lemma A.1) and randomized
//!   Algorithm 3 (Lemma A.2).
//! * [`color_sample`] — uniform available-color sampling
//!   (Lemma 3.1).
//! * [`sample_batch`] — the batched SoA engine driving thousands of
//!   `Color-Sample` machines per round, bit-identical to the
//!   reference machines at any thread budget.
//! * [`rct`] — `Random-Color-Trial` (Algorithm 1).
//! * [`d1lc`] — the `(degree+1)`-list-coloring protocol with palette
//!   sparsification (Proposition 3.2, Lemma 3.3).
//! * [`vertex`] — **Theorem 1**: `(Δ+1)`-vertex coloring with `O(n)`
//!   expected bits and `O(log log n · log Δ)` worst-case rounds.
//! * [`edge`] — **Theorem 2**: deterministic `(2Δ−1)`-edge coloring
//!   with `O(n)` bits and `O(1)` rounds; **Theorem 3**: `(2Δ)`-edge
//!   coloring with zero communication; Lemma 5.1's constant-Δ
//!   protocol.
//! * [`baselines`] — Flin–Mittal, deterministic greedy+binary-search,
//!   and send-everything comparators.
//!
//! # Quickstart
//!
//! Protocol *scripts* (the per-party functions) live here; the
//! uniform way to execute them is the `bichrome-runner` crate, whose
//! registry wraps every protocol behind one `Protocol` trait:
//!
//! ```
//! use bichrome_runner::{registry, Instance};
//! use bichrome_graph::{gen, partition::Partitioner};
//!
//! let g = gen::gnp(60, 0.1, 7);
//! let inst = Instance::new("demo", Partitioner::Random(1).split(&g), 42);
//! let out = registry().get("vertex/theorem1").expect("registered").run(&inst);
//! assert!(out.verdict.is_valid());
//! println!("{} bits, {} rounds", out.stats.total_bits(), out.stats.rounds);
//! ```
//!
//! Party scripts compose directly when you need custom sessions:
//! [`vertex::vertex_coloring_party`], [`baselines::flin_mittal`],
//! [`edge::algorithm2::algorithm2_party`], ... each take a
//! [`PartyInput`] and a `PartyCtx` and can be driven by
//! `bichrome_comm::session::run_two_party_ctx`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod color_sample;
pub mod d1lc;
pub mod edge;
pub mod input;
pub mod rct;
pub mod sample_batch;
pub mod slack_int;
pub mod vertex;

pub use input::PartyInput;
#[allow(deprecated)]
pub use vertex::{solve_vertex_coloring, VertexOutcome};
