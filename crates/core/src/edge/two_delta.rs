//! **Theorem 3**: `(2Δ)`-edge coloring with zero communication.
//!
//! Both parties split the `2Δ` colors in half (Alice gets
//! `0..Δ`, Bob `Δ..2Δ`). Each party defers every edge whose endpoints
//! both currently have degree Δ in its remaining subgraph — those
//! endpoints have full global degree inside this party, so the *other*
//! party has no edges there, and the deferred edges form a matching
//! colorable with a single color from the other party's palette. The
//! remaining subgraph has its maximum-degree vertices independent, so
//! Fournier's theorem (Proposition 3.5) colors it with the party's own
//! Δ colors.

use crate::input::PartyInput;
use bichrome_comm::Side;
use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::edge_color::{fournier, misra_gries, remap_colors};
use bichrome_graph::partition::EdgePartition;
use bichrome_graph::EdgeId;

/// One party's (communication-free) script for Theorem 3.
pub fn two_delta_party(input: &PartyInput) -> EdgeColoring {
    let delta = input.delta;
    let g = &input.graph;
    if delta == 0 || g.num_edges() == 0 {
        return EdgeColoring::new();
    }
    let my_palette: Vec<ColorId> = match input.side {
        Side::Alice => (0..delta as u32).map(ColorId).collect(),
        Side::Bob => (delta as u32..2 * delta as u32).map(ColorId).collect(),
    };
    let other_first = match input.side {
        Side::Alice => ColorId(delta as u32),
        Side::Bob => ColorId(0),
    };

    // Defer edges joining two currently-degree-Δ vertices. Degrees only
    // decrease, so one pass over the initially-qualifying edges with a
    // recheck suffices. The deferred set is a dense bitmap over the
    // party graph's edge ids — no hashing.
    let mut deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut deferred = vec![false; g.num_edges()];
    let mut stack: Vec<EdgeId> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| deg[e.u().index()] == delta && deg[e.v().index()] == delta)
        .map(|(i, _)| EdgeId(i as u32))
        .collect();
    while let Some(id) = stack.pop() {
        let e = g.edge(id);
        if deg[e.u().index()] == delta && deg[e.v().index()] == delta {
            deferred[id.index()] = true;
            deg[e.u().index()] -= 1;
            deg[e.v().index()] -= 1;
        }
    }

    let remaining = g.edge_subgraph_where(|id, _| !deferred[id.index()]);
    let d = remaining.max_degree();
    let mut coloring = if d == 0 {
        EdgeColoring::new()
    } else if d == delta {
        let raw = fournier(&remaining).expect("deferral leaves the degree-Δ vertices independent");
        remap_colors(&raw, &my_palette)
    } else {
        // Max degree dropped below Δ: Vizing's Δ'+1 ≤ Δ colors.
        let raw = misra_gries(&remaining);
        remap_colors(&raw, &my_palette)
    };

    // Deferred edges form a matching between vertices that have no
    // edges on the other side: one color of the other party's palette
    // colors them all.
    debug_assert!(
        bichrome_graph::matching::is_matching(
            &deferred
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| g.edge(EdgeId(i as u32)))
                .collect::<Vec<_>>(),
        ),
        "deferred edges must form a matching"
    );
    for (i, &is_deferred) in deferred.iter().enumerate() {
        if is_deferred {
            coloring.set(g.edge(EdgeId(i as u32)), other_first);
        }
    }
    coloring
}

/// Runs Theorem 3 for both parties — no session is needed because no
/// bits flow; the "protocol" is two local computations.
pub fn solve_two_delta(partition: &EdgePartition) -> (EdgeColoring, EdgeColoring) {
    let a = two_delta_party(&PartyInput::alice(partition));
    let b = two_delta_party(&PartyInput::bob(partition));
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::coloring::validate_edge_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    fn check(g: &bichrome_graph::Graph, part: Partitioner) {
        let p = part.split(g);
        let (a, b) = solve_two_delta(&p);
        let mut merged = a;
        merged.merge(&b).expect("disjoint edges");
        let budget = (2 * g.max_degree()).max(1);
        assert!(
            validate_edge_coloring_with_palette(g, &merged, budget).is_ok(),
            "invalid 2Δ coloring on {g} under {part}"
        );
    }

    #[test]
    fn two_delta_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm_max_degree(40, 100, 7, seed);
            for part in Partitioner::family(seed) {
                check(&g, part);
            }
        }
    }

    #[test]
    fn two_delta_on_structured_graphs() {
        for g in [gen::cycle(11), gen::complete(8), gen::star(9), gen::path(6)] {
            check(&g, Partitioner::Alternating);
            check(&g, Partitioner::AllToAlice);
        }
    }

    #[test]
    fn two_delta_on_perfect_matching() {
        // Δ = 1: every edge is deferred and takes the other palette's
        // single color.
        let mut b = bichrome_graph::GraphBuilder::new(6);
        for i in 0..3 {
            b.add_edge(
                bichrome_graph::VertexId(2 * i),
                bichrome_graph::VertexId(2 * i + 1),
            );
        }
        let g = b.build();
        check(&g, Partitioner::Alternating);
    }

    #[test]
    fn two_delta_costs_zero_bits() {
        // The solver never touches a channel; the API makes this
        // structural (no endpoint parameter), which *is* the claim.
        let g = gen::gnm_max_degree(30, 80, 6, 3);
        let p = Partitioner::Random(1).split(&g);
        let (a, b) = solve_two_delta(&p);
        assert_eq!(a.len() + b.len(), g.num_edges());
    }

    #[test]
    fn two_delta_empty() {
        let g = gen::empty(4);
        let p = Partitioner::AllToBob.split(&g);
        let (a, b) = solve_two_delta(&p);
        assert!(a.is_empty() && b.is_empty());
    }
}
