//! **Algorithm 2** — the deterministic `(2Δ−1)`-edge-coloring protocol
//! for `Δ ≥ 8` (Theorem 2): `O(n)` bits, three rounds.
//!
//! Per party (everything below is symmetric):
//!
//! 1. **Defer** edges joining two vertices of current remaining-degree
//!    `≥ Δ−1`; the deferred subgraph `DG` has maximum degree 2
//!    (Lemma 5.2).
//! 2. Find a **Δ-perfect matching** `M` in the remaining subgraph `R`
//!    covering every degree-Δ vertex (Lemma 5.3, via Hopcroft–Karp).
//! 3. Color `R' = R − M` with the party's own `Δ−1` colors: its
//!    maximum-degree vertices are independent, so constructive
//!    Fournier (Proposition 3.5) applies.
//! 4. **Round 1**: exchange two n-bit masks — vertices covered by `M`,
//!    and vertices of own-degree `> Δ/2`.
//! 5. **Round 2**: the Lemma 5.4 exchange — each party publishes
//!    `O(log n)` colors of its palette plus shrinking bit-arrays that
//!    hand the other party one available own-palette color for every
//!    vertex of own-degree `≤ Δ/2` (`O(n)` bits total).
//! 6. Color `M`: an edge `{hub, v}` takes the **special color** when
//!    `v` is unmatched on the other side or the other side is busy at
//!    `v` (degree `> Δ/2`); otherwise it takes the other party's
//!    palette color delivered by step 5. The two parties' rules are
//!    mutually exclusive at every shared vertex.
//! 7. **Round 3**: exchange 7-bit-per-vertex masks of which of each
//!    party's *first seven* palette colors are free, then greedily
//!    color `DG` from the other party's first seven (Lemma 5.5: at
//!    least five are free at each endpoint and `DG` has degree ≤ 2).

use crate::edge::PaletteLayout;
use crate::input::PartyInput;
use bichrome_comm::session::PartyCtx;
use bichrome_comm::wire::{width_for, BitWriter};
use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::edge_color::{fournier, misra_gries_with_budget, remap_colors};
use bichrome_graph::matching::matching_covering;
use bichrome_graph::{Edge, EdgeId, Graph, VertexId};

/// One party's script for Algorithm 2.
///
/// # Panics
///
/// Panics if `Δ < 8` (the dispatcher routes smaller Δ to Lemma 5.1) or
/// if an internal invariant of the paper's analysis fails.
pub fn algorithm2_party(input: &PartyInput, ctx: &PartyCtx) -> EdgeColoring {
    let delta = input.delta;
    assert!(delta >= 8, "Algorithm 2 requires Δ ≥ 8, got {delta}");
    ctx.endpoint.meter().set_phase("edge-algorithm2");
    let g = &input.graph;
    let n = input.num_vertices();
    let layout = PaletteLayout::new(delta);
    let my_palette = layout.own_palette(input.side);
    let other_palette = layout.other_palette(input.side);
    let special = layout.special();

    // ---- Step 1: defer edges between two (Δ−1)+-degree vertices. ----
    // The deferred set is a dense bitmap over the party graph's edge
    // ids — membership tests on the Round 3 hot path are one array
    // load, not a hash.
    let mut deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut deferred = vec![false; g.num_edges()];
    let mut stack: Vec<EdgeId> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| deg[e.u().index()] >= delta - 1 && deg[e.v().index()] >= delta - 1)
        .map(|(i, _)| EdgeId(i as u32))
        .collect();
    while let Some(id) = stack.pop() {
        let e = g.edge(id);
        if deg[e.u().index()] >= delta - 1 && deg[e.v().index()] >= delta - 1 {
            deferred[id.index()] = true;
            deg[e.u().index()] -= 1;
            deg[e.v().index()] -= 1;
        }
    }
    // Deferred edge ids ascend, so this is already sorted edge order.
    let dg: Vec<EdgeId> = (0..g.num_edges())
        .filter(|&i| deferred[i])
        .map(|i| EdgeId(i as u32))
        .collect();
    let r_graph = g.edge_subgraph_where(|id, _| !deferred[id.index()]);
    debug_assert!(
        {
            let dg_edges: Vec<Edge> = dg.iter().map(|&id| g.edge(id)).collect();
            max_degree_of_edges(&dg_edges, n) <= 2
        },
        "Lemma 5.2"
    );

    // ---- Step 2: Δ-perfect matching in R. ----
    let matching: Vec<(VertexId, VertexId)> = if r_graph.max_degree() == delta {
        let targets = r_graph.vertices_of_degree(delta);
        let edges =
            matching_covering(&r_graph, &targets).expect("Lemma 5.3: a covering matching exists");
        edges
            .iter()
            .map(|e| {
                let hub = if r_graph.degree(e.u()) == delta {
                    e.u()
                } else {
                    e.v()
                };
                (hub, e.other(hub))
            })
            .collect()
    } else {
        Vec::new()
    };
    // Matched edges as a bitmap over g's edge ids.
    let mut in_matching = vec![false; g.num_edges()];
    for &(a, b) in &matching {
        let id = g.edge_id(a, b).expect("matching edges are graph edges");
        in_matching[id.index()] = true;
    }

    // ---- Step 3: color R' = R − M with my palette. ----
    let r_prime = r_graph.edge_subgraph(|e| {
        let id = g.edge_id(e.u(), e.v()).expect("R edges are graph edges");
        !in_matching[id.index()]
    });
    let d = r_prime.max_degree();
    // The party's output coloring is dense over its whole subgraph g:
    // every later read and write on the round hot paths is an O(1)
    // id-indexed slot access.
    let mut coloring = EdgeColoring::dense_for(g);
    if r_prime.num_edges() > 0 {
        let raw = if d == delta - 1 {
            fournier(&r_prime)
                .expect("deferral + matching removal leave max-degree vertices independent")
        } else {
            debug_assert!(d < delta - 1, "Vizing fits in the palette");
            misra_gries_with_budget(&r_prime, ctx.threads)
        };
        coloring
            .merge(&remap_colors(&raw, &my_palette))
            .expect("R' edges are colored once");
    }

    // ---- Round 1: matched mask + over-half-degree mask. ----
    let my_matched = {
        let mut mask = vec![false; n];
        for &(hub, v) in &matching {
            mask[hub.index()] = true;
            mask[v.index()] = true;
        }
        mask
    };
    let my_over_half: Vec<bool> = g.vertices().map(|v| g.degree(v) > delta / 2).collect();
    let mut w = BitWriter::new();
    w.write_bools(&my_matched);
    w.write_bools(&my_over_half);
    let incoming = ctx.endpoint.exchange(w.finish());
    let mut r = incoming.reader();
    let peer_matched = r.read_bools(n);
    let peer_over_half = r.read_bools(n);

    // ---- Round 2: Lemma 5.4 palette-covering exchange. ----
    let my_k: Vec<VertexId> = g.vertices().filter(|&v| !my_over_half[v.index()]).collect();
    let pw = my_palette.len();
    // One flat |K| × palette availability matrix instead of a Vec per
    // vertex.
    let mut free_rows = vec![false; my_k.len() * pw];
    for (i, &v) in my_k.iter().enumerate() {
        free_in_palette_into(
            g,
            &coloring,
            &my_palette,
            v,
            &mut free_rows[i * pw..(i + 1) * pw],
        );
    }
    let msg = encode_palette_covering(&my_k, &free_rows, pw);
    let incoming = ctx.endpoint.exchange(msg);
    let peer_k: Vec<VertexId> = g
        .vertices()
        .filter(|&v| !peer_over_half[v.index()])
        .collect();
    let peer_assigned = decode_palette_covering(&mut incoming.reader(), &peer_k, &other_palette, n);

    // ---- Step 6: color the matching. ----
    for &(hub, v) in &matching {
        let id = g.edge_id(hub, v).expect("matching edges are graph edges");
        let color = if !peer_matched[v.index()] || peer_over_half[v.index()] {
            special
        } else {
            peer_assigned[v.index()].expect("Lemma 5.4 covers every low-degree vertex of the peer")
        };
        coloring.set_id(id, color);
    }

    // ---- Round 3: first-seven masks, then color DG. ----
    let seven = 7usize.min(my_palette.len());
    let mut w = BitWriter::new();
    let mut free_buf = vec![false; my_palette.len()];
    for v in g.vertices() {
        // Matching colors live in the other palette (or special), so
        // they never mask out own-palette colors here.
        free_in_palette_into(g, &coloring, &my_palette, v, &mut free_buf);
        for &b in free_buf.iter().take(seven) {
            w.write_bit(b);
        }
    }
    let incoming = ctx.endpoint.exchange(w.finish());
    let mut r = incoming.reader();
    let mut peer_free7 = vec![[false; 7]; n];
    for row in peer_free7.iter_mut() {
        for slot in row.iter_mut().take(seven) {
            *slot = r.read_bit();
        }
    }

    // My matching color at each vertex (to avoid in DG).
    let mut my_match_color: Vec<Option<ColorId>> = vec![None; n];
    for &(hub, v) in &matching {
        let id = g.edge_id(hub, v).expect("matching edges are graph edges");
        let c = coloring.get_id(id).expect("just colored");
        my_match_color[hub.index()] = Some(c);
        my_match_color[v.index()] = Some(c);
    }

    for &eid in &dg {
        let (a, b) = g.edge(eid).endpoints();
        let mut blocked = [false; 7];
        for w2 in [a, b] {
            for (i, slot) in blocked.iter_mut().enumerate().take(seven) {
                if !peer_free7[w2.index()][i] {
                    *slot = true;
                }
            }
            if let Some(c) = my_match_color[w2.index()] {
                if let Some(i) = palette_index(&other_palette, c) {
                    if i < 7 {
                        blocked[i] = true;
                    }
                }
            }
            for (_, fid) in g.incident_edges(w2) {
                if deferred[fid.index()] {
                    if let Some(c) = coloring.get_id(fid) {
                        if let Some(i) = palette_index(&other_palette, c) {
                            if i < 7 {
                                blocked[i] = true;
                            }
                        }
                    }
                }
            }
        }
        let i = (0..seven)
            .find(|&i| !blocked[i])
            .expect("Lemma 5.5: at least one of the seven remains free");
        coloring.set_id(eid, other_palette[i]);
    }

    coloring
}

/// Fills `free` (one slot per color of `palette`) with which colors
/// are unused by `coloring` at edges of `g` incident to `v`. The
/// coloring must be dense over `g`'s edge ids; the caller supplies the
/// buffer so round loops reuse one allocation.
fn free_in_palette_into(
    g: &Graph,
    coloring: &EdgeColoring,
    palette: &[ColorId],
    v: VertexId,
    free: &mut [bool],
) {
    debug_assert_eq!(free.len(), palette.len());
    debug_assert!(coloring.is_indexed_for(g));
    free.fill(true);
    for (_, id) in g.incident_edges(v) {
        if let Some(c) = coloring.get_id(id) {
            if let Some(i) = palette_index(palette, c) {
                free[i] = false;
            }
        }
    }
}

/// Index of `c` within `palette`, if present.
fn palette_index(palette: &[ColorId], c: ColorId) -> Option<usize> {
    // Palettes are contiguous ranges; subtract the base.
    let base = palette.first()?.0;
    if c.0 >= base && ((c.0 - base) as usize) < palette.len() {
        Some((c.0 - base) as usize)
    } else {
        None
    }
}

/// Lemma 5.4 encoder: iteratively pick the palette color available for
/// the largest fraction of the still-uncovered vertices (≥ 1/3 by the
/// double-counting argument), announce it with a membership bit-array
/// over the current uncovered list, and recurse on the rest.
///
/// `free_rows` is a flat `k.len() × palette_len` availability matrix
/// (row `i` belongs to `k[i]`).
fn encode_palette_covering(
    k: &[VertexId],
    free_rows: &[bool],
    palette_len: usize,
) -> bichrome_comm::Message {
    debug_assert_eq!(free_rows.len(), k.len() * palette_len);
    let free = |i: usize, c: usize| free_rows[i * palette_len + c];
    let mut u: Vec<usize> = (0..k.len()).collect();
    let mut picks: Vec<(usize, Vec<bool>)> = Vec::new();
    while !u.is_empty() {
        let best = (0..palette_len)
            .max_by_key(|&c| u.iter().filter(|&&i| free(i, c)).count())
            .expect("palette nonempty");
        let mask: Vec<bool> = u.iter().map(|&i| free(i, best)).collect();
        let covered = mask.iter().filter(|&&b| b).count();
        assert!(covered > 0, "every vertex has an available color (Δ ≥ 8)");
        let next: Vec<usize> = u
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(&i, _)| i)
            .collect();
        picks.push((best, mask));
        u = next;
    }
    let mut w = BitWriter::new();
    w.write_gamma(picks.len() as u64);
    let cw = width_for(palette_len.saturating_sub(1) as u64);
    for (c, mask) in &picks {
        w.write_uint(*c as u64, cw);
        w.write_bools(mask);
    }
    w.finish()
}

/// Lemma 5.4 decoder: reconstructs, for each vertex in `k`, the first
/// announced color that is available for it (as an absolute
/// [`ColorId`] via `palette`). Returns a dense option array over all
/// `n` vertices.
fn decode_palette_covering(
    r: &mut bichrome_comm::BitReader<'_>,
    k: &[VertexId],
    palette: &[ColorId],
    n: usize,
) -> Vec<Option<ColorId>> {
    let mut assigned: Vec<Option<ColorId>> = vec![None; n];
    let t = r.read_gamma() as usize;
    let cw = width_for(palette.len().saturating_sub(1) as u64);
    let mut u: Vec<VertexId> = k.to_vec();
    for _ in 0..t {
        let c = palette[r.read_uint(cw) as usize];
        let mask = r.read_bools(u.len());
        let mut next = Vec::new();
        for (i, &v) in u.iter().enumerate() {
            if mask[i] {
                assigned[v.index()] = Some(c);
            } else {
                next.push(v);
            }
        }
        u = next;
    }
    assert!(u.is_empty(), "covering must assign every vertex in K");
    assigned
}

fn max_degree_of_edges(edges: &[Edge], n: usize) -> usize {
    let mut deg = vec![0usize; n];
    for e in edges {
        deg[e.u().index()] += 1;
        deg[e.v().index()] += 1;
    }
    deg.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim stays covered until it is removed

    use super::*;
    use crate::edge::solve_edge_coloring;
    use bichrome_graph::coloring::validate_edge_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    fn check(g: &Graph, part: Partitioner, seed: u64) {
        let p = part.split(g);
        let out = solve_edge_coloring(&p, seed);
        let budget = 2 * g.max_degree() - 1;
        if let Err(e) = validate_edge_coloring_with_palette(g, &out.merged(), budget) {
            panic!("invalid coloring on {g} under {part}: {e}");
        }
    }

    #[test]
    fn algorithm2_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnm_max_degree(60, 270, 9, seed);
            assert!(g.max_degree() >= 8, "want the Algorithm 2 path");
            for part in Partitioner::family(seed) {
                check(&g, part, seed);
            }
        }
    }

    #[test]
    fn algorithm2_on_denser_graphs() {
        for seed in 0..3 {
            let g = gen::gnm_max_degree(80, 600, 16, 100 + seed);
            check(&g, Partitioner::Random(seed), seed);
            check(&g, Partitioner::LowHalf, seed);
        }
    }

    #[test]
    fn algorithm2_on_near_regular() {
        let g = gen::near_regular(70, 11, 5);
        for part in Partitioner::family(2) {
            check(&g, part, 0);
        }
    }

    #[test]
    fn algorithm2_on_star_like() {
        // Stars stress the matching/special-color paths: hubs of full
        // degree.
        let g = gen::star(12); // Δ = 11
        check(&g, Partitioner::Alternating, 0);
        check(&g, Partitioner::AllToAlice, 0);
        let g = gen::complete_bipartite(9, 9); // Δ = 9
        check(&g, Partitioner::Random(4), 0);
    }

    #[test]
    fn algorithm2_rounds_are_constant() {
        for &n in &[40usize, 80, 160] {
            let g = gen::gnm_max_degree(n, n * 5, 10, 3);
            let p = Partitioner::Random(1).split(&g);
            let out = solve_edge_coloring(&p, 0);
            assert_eq!(out.stats.rounds, 3, "Algorithm 2 uses exactly 3 rounds");
        }
    }

    #[test]
    fn algorithm2_bits_are_linear() {
        // O(n) bits: per-n cost must stay bounded as n doubles.
        let mut per_n = Vec::new();
        for &n in &[64usize, 128, 256] {
            let g = gen::gnm_max_degree(n, n * 5, 12, 9);
            let p = Partitioner::Random(2).split(&g);
            let out = solve_edge_coloring(&p, 0);
            per_n.push(out.stats.total_bits() as f64 / n as f64);
        }
        let min = per_n.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_n.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 1.8, "bits per vertex {per_n:?} must stay flat");
    }

    #[test]
    fn covering_roundtrip() {
        // Standalone encoder/decoder check.
        let k: Vec<VertexId> = (0..10).map(VertexId).collect();
        let palette: Vec<ColorId> = (0..9).map(ColorId).collect();
        let free_of = |v: VertexId, c: usize| !(v.0 as usize + c).is_multiple_of(3);
        let mut free_rows = vec![false; k.len() * palette.len()];
        for (i, &v) in k.iter().enumerate() {
            for c in 0..palette.len() {
                free_rows[i * palette.len() + c] = free_of(v, c);
            }
        }
        let msg = encode_palette_covering(&k, &free_rows, palette.len());
        let assigned = decode_palette_covering(&mut msg.reader(), &k, &palette, 12);
        for &v in &k {
            let c = assigned[v.index()].expect("assigned");
            let idx = palette_index(&palette, c).expect("in palette");
            assert!(free_of(v, idx), "assigned color must be available");
        }
        assert!(assigned[10].is_none());
    }

    #[test]
    fn palette_index_maps_contiguous_ranges() {
        let p: Vec<ColorId> = (5..9).map(ColorId).collect();
        assert_eq!(palette_index(&p, ColorId(5)), Some(0));
        assert_eq!(palette_index(&p, ColorId(8)), Some(3));
        assert_eq!(palette_index(&p, ColorId(9)), None);
        assert_eq!(palette_index(&p, ColorId(4)), None);
        assert_eq!(palette_index(&[], ColorId(0)), None);
    }
}
