//! Two-party edge-coloring protocols (§5 and Theorem 3).
//!
//! * [`solve_edge_coloring`] — **Theorem 2**: deterministic
//!   `(2Δ−1)`-edge coloring with `O(n)` bits and `O(1)` rounds,
//!   dispatching between Lemma 5.1's constant-Δ protocol
//!   ([`bounded`]) and Algorithm 2 ([`algorithm2`]).
//! * [`two_delta::solve_two_delta`] — **Theorem 3**: `(2Δ)`-edge
//!   coloring with *zero* communication.
//!
//! Unlike the vertex problem, each party outputs colors only for its
//! own edges; [`EdgeOutcome::merged`] recombines them for validation.

pub mod algorithm2;
pub mod bounded;
pub mod two_delta;

use bichrome_comm::session::run_two_party_ctx;
use bichrome_comm::CommStats;
use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::partition::EdgePartition;

use crate::input::PartyInput;

/// Global color-palette layout for the `(2Δ−1)` protocol: Alice's
/// `Δ−1` colors, Bob's `Δ−1` colors, and one special color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaletteLayout {
    /// Maximum degree Δ of the whole graph.
    pub delta: usize,
}

impl PaletteLayout {
    /// Layout for the given Δ.
    pub fn new(delta: usize) -> Self {
        PaletteLayout { delta }
    }

    /// Alice's palette: colors `0 .. Δ−1`.
    pub fn alice_palette(&self) -> Vec<ColorId> {
        (0..self.delta.saturating_sub(1) as u32)
            .map(ColorId)
            .collect()
    }

    /// Bob's palette: colors `Δ−1 .. 2Δ−2`.
    pub fn bob_palette(&self) -> Vec<ColorId> {
        let lo = self.delta.saturating_sub(1) as u32;
        (lo..2 * lo).map(ColorId).collect()
    }

    /// The special color `2Δ−2` (the last of the `2Δ−1`).
    pub fn special(&self) -> ColorId {
        ColorId((2 * self.delta - 2) as u32)
    }

    /// Palette of the given side.
    pub fn own_palette(&self, side: bichrome_comm::Side) -> Vec<ColorId> {
        match side {
            bichrome_comm::Side::Alice => self.alice_palette(),
            bichrome_comm::Side::Bob => self.bob_palette(),
        }
    }

    /// Palette of the opposite side.
    pub fn other_palette(&self, side: bichrome_comm::Side) -> Vec<ColorId> {
        self.own_palette(side.other())
    }
}

/// Result of a two-party edge-coloring run.
#[derive(Debug, Clone)]
pub struct EdgeOutcome {
    /// Colors of Alice's edges (her required output).
    pub alice: EdgeColoring,
    /// Colors of Bob's edges.
    pub bob: EdgeColoring,
    /// Session communication statistics.
    pub stats: CommStats,
}

impl EdgeOutcome {
    /// The union coloring over the whole graph.
    ///
    /// # Panics
    ///
    /// Panics if the two sides colored the same edge differently
    /// (impossible for a correct protocol: edge sets are disjoint).
    pub fn merged(&self) -> EdgeColoring {
        let mut all = self.alice.clone();
        all.merge(&self.bob)
            .expect("parties color disjoint edge sets");
        all
    }
}

/// One party's script for **Theorem 2**, with the canonical dispatch:
/// `Δ = 0` needs nothing; `Δ ≤ 7` uses the one-round constant-Δ
/// protocol of Lemma 5.1; `Δ ≥ 8` runs Algorithm 2. (`Δ` is the whole
/// graph's maximum degree, carried in [`PartyInput::delta`].)
///
/// Every entry point — the deprecated [`solve_edge_coloring`] shim
/// and the `bichrome-runner` registry's `edge/theorem2` — routes
/// through this one function, so the dispatch cannot diverge.
pub fn theorem2_party(input: &PartyInput, ctx: &bichrome_comm::session::PartyCtx) -> EdgeColoring {
    match input.delta {
        0 => EdgeColoring::new(),
        1..=7 => bounded::bounded_delta_party(input, ctx),
        _ => algorithm2::algorithm2_party(input, ctx),
    }
}

/// Runs **Theorem 2**: deterministic `(2Δ−1)`-edge coloring in `O(n)`
/// bits and `O(1)` rounds (dispatch described at [`theorem2_party`]).
///
/// The protocol is deterministic; the `seed` only feeds the session
/// plumbing and does not affect the output.
#[deprecated(
    since = "0.1.0",
    note = "use bichrome_runner: registry().get(\"edge/theorem2\") and Protocol::run, \
            or TrialPlan for repeated trials"
)]
pub fn solve_edge_coloring(partition: &EdgePartition, seed: u64) -> EdgeOutcome {
    let a = PartyInput::alice(partition);
    let b = PartyInput::bob(partition);
    let script = move |input: PartyInput| {
        move |ctx: bichrome_comm::session::PartyCtx| theorem2_party(&input, &ctx)
    };
    let (alice, bob, stats) = run_two_party_ctx(seed, script(a), script(b));
    EdgeOutcome { alice, bob, stats }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim stays covered until it is removed

    use super::*;
    use bichrome_comm::Side;
    use bichrome_graph::coloring::validate_edge_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn palette_layout_partitions_colors() {
        let layout = PaletteLayout::new(10);
        let a = layout.alice_palette();
        let b = layout.bob_palette();
        assert_eq!(a.len(), 9);
        assert_eq!(b.len(), 9);
        assert_eq!(layout.special(), ColorId(18));
        // Disjoint and jointly covering 0..19.
        let mut all: Vec<u32> = a
            .iter()
            .chain(b.iter())
            .map(|c| c.0)
            .chain([layout.special().0])
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..19).collect::<Vec<_>>());
        assert_eq!(layout.own_palette(Side::Alice), a);
        assert_eq!(layout.other_palette(Side::Alice), b);
    }

    #[test]
    fn theorem2_dispatcher_covers_all_deltas() {
        // Small Δ routes through Lemma 5.1; larger through Algorithm 2.
        for (g, label) in [
            (gen::empty(6), "empty"),
            (gen::path(8), "path"),
            (gen::cycle(9), "cycle"),
            (gen::gnm_max_degree(40, 90, 6, 1), "Δ=6"),
            (gen::gnm_max_degree(60, 280, 12, 2), "Δ=12"),
        ] {
            let p = Partitioner::Random(3).split(&g);
            let out = solve_edge_coloring(&p, 1);
            let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
            assert!(
                validate_edge_coloring_with_palette(&g, &out.merged(), budget).is_ok(),
                "invalid (2Δ−1) coloring on {label}"
            );
        }
    }

    #[test]
    fn each_party_colors_exactly_its_edges() {
        let g = gen::gnm_max_degree(50, 150, 10, 7);
        let p = Partitioner::Alternating.split(&g);
        let out = solve_edge_coloring(&p, 0);
        assert_eq!(out.alice.len(), p.alice().num_edges());
        assert_eq!(out.bob.len(), p.bob().num_edges());
        for &e in p.alice().edges() {
            assert!(out.alice.get(e).is_some(), "Alice must output {e}");
        }
        for &e in p.bob().edges() {
            assert!(out.bob.get(e).is_some(), "Bob must output {e}");
        }
    }
}
