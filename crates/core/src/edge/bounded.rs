//! Lemma 5.1 — the constant-Δ `(2Δ−1)`-edge-coloring protocol:
//! `O(n)` bits, one round.
//!
//! Alice greedily colors her edges with the `2Δ−1` colors, then both
//! parties exchange (in the same round) the per-vertex bitmask of
//! colors used — `(2Δ−1)·n` bits, which is `O(n)` for constant Δ. Bob
//! then greedily colors his edges avoiding Alice's colors at shared
//! vertices; an edge is adjacent to at most `2Δ−2` others, so a color
//! always remains.
//!
//! To keep the exchange to a *single* simultaneous round, Bob's mask
//! is simply all-zeros (he colors second and needs to send nothing);
//! the paper's one-round structure is preserved with Alice→Bob payload
//! only.

use crate::input::PartyInput;
use bichrome_comm::session::PartyCtx;
use bichrome_comm::wire::{BitWriter, Message};
use bichrome_comm::Side;
use bichrome_graph::coloring::{ColorId, EdgeColoring};
use bichrome_graph::greedy::greedy_edge_coloring_with;

/// One party's script for Lemma 5.1. Requires `1 ≤ Δ ≤ 7` (the
/// dispatcher guarantees it); works for any constant Δ.
pub fn bounded_delta_party(input: &PartyInput, ctx: &PartyCtx) -> EdgeColoring {
    ctx.endpoint.meter().set_phase("edge-bounded");
    let delta = input.delta;
    let n = input.num_vertices();
    let colors = (2 * delta).saturating_sub(1).max(1);

    let g = &input.graph;
    if delta == 1 {
        // A single color suffices: edges are pairwise non-adjacent.
        // Truly zero communication — but both parties must still agree
        // the protocol is over, which costs nothing in our model.
        let mut c = EdgeColoring::dense_for(g);
        for i in 0..g.num_edges() {
            c.set_id(bichrome_graph::EdgeId(i as u32), ColorId(0));
        }
        return c;
    }

    match input.side {
        Side::Alice => {
            let mine =
                greedy_edge_coloring_with(g, EdgeColoring::dense_for(g), g.edges().iter().copied());
            debug_assert!(mine.max_color().is_none_or(|c| c.index() < colors));
            let mut w = BitWriter::new();
            let mut mask = vec![false; colors];
            for v in g.vertices() {
                mask.fill(false);
                for (_, id) in g.incident_edges(v) {
                    if let Some(c) = mine.get_id(id) {
                        mask[c.index()] = true;
                    }
                }
                w.write_bools(&mask);
            }
            ctx.endpoint.send(w.finish());
            mine
        }
        Side::Bob => {
            let incoming = ctx.endpoint.exchange(Message::empty());
            let mut r = incoming.reader();
            // Seed a virtual partial coloring at shared vertices:
            // represent Alice's usage as phantom colors the greedy pass
            // must avoid, in one flat n × (2Δ−1) mask array.
            let mut used = vec![false; n * colors];
            for slot in used.iter_mut() {
                *slot = r.read_bit();
            }
            let mut coloring = EdgeColoring::dense_for(g);
            let mut blocked = vec![false; colors];
            for (i, &e) in g.edges().iter().enumerate() {
                let (u, v) = e.endpoints();
                blocked.copy_from_slice(&used[u.index() * colors..(u.index() + 1) * colors]);
                for (k, b) in used[v.index() * colors..(v.index() + 1) * colors]
                    .iter()
                    .enumerate()
                {
                    blocked[k] |= b;
                }
                for (_, id) in g.incident_edges(u).chain(g.incident_edges(v)) {
                    if let Some(c) = coloring.get_id(id) {
                        blocked[c.index()] = true;
                    }
                }
                let c = (0..colors)
                    .find(|&c| !blocked[c])
                    .expect("an edge is adjacent to at most 2Δ−2 colored edges");
                coloring.set_id(bichrome_graph::EdgeId(i as u32), ColorId(c as u32));
            }
            coloring
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim stays covered until it is removed

    use crate::edge::solve_edge_coloring;
    use bichrome_graph::coloring::validate_edge_coloring_with_palette;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn bounded_protocol_small_deltas() {
        for delta in 1..=7usize {
            let g = gen::gnm_max_degree(30, 30 * delta / 2, delta, delta as u64);
            for part in Partitioner::family(5) {
                let p = part.split(&g);
                let out = solve_edge_coloring(&p, 0);
                let budget = (2 * g.max_degree()).saturating_sub(1).max(1);
                assert!(
                    validate_edge_coloring_with_palette(&g, &out.merged(), budget).is_ok(),
                    "Δ={delta} {part}: invalid coloring"
                );
            }
        }
    }

    #[test]
    fn bounded_protocol_is_one_round_linear_bits() {
        let g = gen::gnm_max_degree(50, 100, 5, 1);
        let p = Partitioner::Random(2).split(&g);
        let out = solve_edge_coloring(&p, 0);
        assert_eq!(out.stats.rounds, 1, "Lemma 5.1 is a one-round protocol");
        // (2Δ−1)·n = 9·50 bits from Alice, nothing from Bob.
        assert_eq!(out.stats.bits_alice_to_bob, 9 * 50);
        assert_eq!(out.stats.bits_bob_to_alice, 0);
    }

    #[test]
    fn matching_needs_no_bits() {
        let mut b = bichrome_graph::GraphBuilder::new(8);
        for i in 0..4u32 {
            b.add_edge(
                bichrome_graph::VertexId(2 * i),
                bichrome_graph::VertexId(2 * i + 1),
            );
        }
        let g = b.build();
        let p = Partitioner::Alternating.split(&g);
        let out = solve_edge_coloring(&p, 0);
        assert_eq!(out.stats.total_bits(), 0);
        assert!(validate_edge_coloring_with_palette(&g, &out.merged(), 1).is_ok());
    }
}
