//! Grid-structured experiment orchestration: a [`Campaign`] takes
//! *sets* of axes — protocols × graph families × sizes × partitioners
//! × seeds — materializes the cross-product into one flat work queue,
//! and executes the whole grid through the same shared executor that
//! powers [`crate::TrialPlan`] (which is now a single-cell campaign).
//!
//! The paper's results are all comparisons over exactly such grids
//! (protocol × graph family × size × partition adversary), so every
//! experiment binary declares its table as a campaign instead of
//! hand-rolling trial loops.
//!
//! # Example
//!
//! ```
//! use bichrome_runner::{Campaign, GraphSpec, GroupBy};
//!
//! let report = Campaign::new()
//!     .protocol_keys(["vertex/theorem1", "baseline/send-everything"])
//!     .graphs([GraphSpec::NearRegular { n: 40, d: 4 }])
//!     .sizes([40, 80])
//!     .seeds(0..3)
//!     .baseline("baseline/send-everything")
//!     .run();
//!
//! assert!(report.all_valid());
//! assert_eq!(report.cells.len(), 4); // 2 protocols × 2 sizes
//! println!("{}", report.render_table());
//! for (proto, summary) in report.group_by(GroupBy::Protocol) {
//!     println!("{proto}: {:.1} bits", summary.total_bits.mean);
//! }
//! let csv = report.to_csv();
//! assert!(csv.starts_with("protocol,graph,"));
//! ```

use crate::csv::Csv;
use crate::exec::{self, ExecStats, InstanceCache, WorkItem, WorkSource};
use crate::instance::GraphSpec;
use crate::plan::{Report, Summary, TrialRecord};
use crate::protocol::Protocol;
use crate::registry::registry;
use crate::seeds;
use crate::table::Table;
use bichrome_comm::fault::{with_session_faults, FaultPlan};
use bichrome_comm::transport::{with_session_transport, TransportKind};
use bichrome_graph::partition::Partitioner;
use bichrome_store::{Store, StoreError, TrialKey};
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Placeholder label for the default partition axis entry (a fresh
/// decorrelated `Partitioner::Random` per seed — see
/// [`crate::TrialPlan::partitioner`]).
///
/// Also the partitioner field of a stored trial's [`TrialKey`] when
/// the default axis is in play: the concrete per-seed partitioner is
/// itself derived from the trial seed (which the key carries), so the
/// label plus the seed still pins the computation exactly.
pub const DEFAULT_PARTITIONER_LABEL: &str = "random(per-seed)";

/// Where a campaign's persistent store comes from: a directory the
/// campaign opens itself, or a handle shared with other campaigns (the
/// daemon keeps one open store that every in-flight job appends to).
enum StoreTarget {
    Path(PathBuf),
    Shared(Arc<Mutex<Store>>),
}

/// Builder for a grid of experiment cells. Every axis is a *set*; the
/// grid is the cross-product. See the [module docs](self).
pub struct Campaign {
    protocols: Vec<(String, Arc<dyn Protocol>)>,
    graphs: Vec<GraphSpec>,
    sizes: Vec<usize>,
    partitioners: Vec<Partitioner>,
    seeds: Vec<u64>,
    parallel: bool,
    baseline: Option<String>,
    store: Option<StoreTarget>,
    transport: TransportKind,
    fault: FaultPlan,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// An empty campaign (no axes set, parallel execution on).
    pub fn new() -> Self {
        Campaign {
            protocols: Vec::new(),
            graphs: Vec::new(),
            sizes: Vec::new(),
            partitioners: Vec::new(),
            seeds: Vec::new(),
            parallel: true,
            baseline: None,
            store: None,
            transport: TransportKind::InProc,
            fault: FaultPlan::new(),
        }
    }

    /// Appends protocols to the protocol axis, labeled by their
    /// [`Protocol::name`].
    pub fn protocols(mut self, protos: impl IntoIterator<Item = Arc<dyn Protocol>>) -> Self {
        for p in protos {
            self.protocols.push((p.name().to_string(), p));
        }
        self
    }

    /// Appends one protocol under an explicit cell label — needed
    /// when sweeping *configurations* of one protocol (same `name()`,
    /// different tuning), e.g. `iters=4`.
    pub fn protocol_labeled(mut self, label: impl Into<String>, proto: Arc<dyn Protocol>) -> Self {
        self.protocols.push((label.into(), proto));
        self
    }

    /// Appends registry protocols to the protocol axis by key.
    ///
    /// # Panics
    ///
    /// Panics if a key is not in [`registry()`]; the message lists
    /// every known key.
    pub fn protocol_keys<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let reg = registry();
        for key in keys {
            let key = key.as_ref();
            let proto = reg.get(key).unwrap_or_else(|| {
                panic!(
                    "unknown protocol key {key:?}; registry has: {}",
                    reg.names().join(", ")
                )
            });
            self.protocols.push((key.to_string(), proto));
        }
        self
    }

    /// Appends graph families to the graph axis.
    pub fn graphs(mut self, specs: impl IntoIterator<Item = GraphSpec>) -> Self {
        self.graphs.extend(specs);
        self
    }

    /// Sets the size axis: every graph spec is re-parameterized to
    /// each `n` via [`GraphSpec::scaled_to`]. Empty (the default)
    /// means "use each spec at its own size".
    pub fn sizes(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.sizes.extend(ns);
        self
    }

    /// Appends fixed partitioners to the adversary axis. Empty (the
    /// default) means one axis entry with a fresh decorrelated
    /// `Partitioner::Random` per seed, exactly like
    /// [`crate::TrialPlan`].
    pub fn partitioners(mut self, ps: impl IntoIterator<Item = Partitioner>) -> Self {
        self.partitioners.extend(ps);
        self
    }

    /// The trial seeds, shared by every cell: each seed feeds the
    /// graph generator and the protocol session, so *different
    /// protocols run on identical instances* and per-cell comparisons
    /// are apples-to-apples.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Whether to fan the flat cells × seeds queue across worker
    /// threads (default: true). Results are bit-identical either way;
    /// every trial's randomness derives only from its own cell and
    /// seed.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Selects the wire every trial's two-party session runs over
    /// (default: in-process channels). The transport is plumbing, not
    /// protocol: recorded bits and rounds are metered above it, so
    /// records — and therefore stored [`TrialKey`] identities — are
    /// identical whichever transport carried them. That is why the
    /// key does *not* include the transport: a trial computed over
    /// TCP warms the store for an in-process re-run and vice versa.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Injects a deterministic [`FaultPlan`] under every trial's
    /// session link (default: none). Like the transport, faults are
    /// plumbing, not protocol: the fault layer detects corruption,
    /// deduplicates retransmits, and reconnects severed links *below*
    /// the meter, so records — and therefore stored [`TrialKey`]
    /// identities — are byte-identical to the fault-free run. A
    /// chaos campaign warms the store for a clean re-run and vice
    /// versa.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Marks one protocol label as the comparison baseline;
    /// [`CampaignReport::baseline_deltas`] and the rendered table then
    /// report every other cell relative to it.
    pub fn baseline(mut self, label: impl Into<String>) -> Self {
        self.baseline = Some(label.into());
        self
    }

    /// Attaches a persistent [`Store`] (created on first use at
    /// `path`). Before executing, the campaign consults the store and
    /// *skips* every trial whose canonical identity — protocol label,
    /// graph spec, partitioner-axis label, trial seed — it already
    /// holds; every freshly computed record is flushed to the store as
    /// its worker finishes. A killed run therefore resumes where it
    /// stopped, a re-run with an extended axis computes only the new
    /// cells, and a fully warm run computes nothing at all
    /// ([`ExecStats::trials_skipped`] reports the wins).
    ///
    /// Stored records round-trip bit-exactly, so a resumed or
    /// warm-store report is identical to an uninterrupted fresh run.
    pub fn with_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(StoreTarget::Path(path.into()));
        self
    }

    /// Like [`Campaign::with_store`], but against an *already open*
    /// store handle shared with other campaigns. This is how the
    /// `bichrome` daemon multiplexes every in-flight job onto one
    /// store: consults and appends interleave safely under the mutex,
    /// and records one job computes are immediately visible as skips
    /// to the next.
    pub fn with_shared_store(mut self, store: Arc<Mutex<Store>>) -> Self {
        self.store = Some(StoreTarget::Shared(store));
        self
    }

    /// The graph axis after applying the size axis.
    fn sized_specs(&self) -> Vec<GraphSpec> {
        if self.sizes.is_empty() {
            self.graphs.clone()
        } else {
            self.graphs
                .iter()
                .flat_map(|g| self.sizes.iter().map(|&n| g.scaled_to(n)))
                .collect()
        }
    }

    /// The partitioner axis (`None` = the per-seed default).
    fn partitioner_axis(&self) -> Vec<Option<Partitioner>> {
        if self.partitioners.is_empty() {
            vec![None]
        } else {
            self.partitioners.iter().copied().map(Some).collect()
        }
    }

    /// Number of cells the grid will materialize (trials = cells ×
    /// seeds).
    pub fn cell_count(&self) -> usize {
        self.protocols.len() * self.sized_specs().len() * self.partitioner_axis().len()
    }

    /// Enumerates the grid, executes the flat cells × seeds queue
    /// through the shared executor, and aggregates one [`Report`] per
    /// cell. Equivalent to [`Campaign::run_with_stats`] with the
    /// executor statistics dropped.
    ///
    /// # Panics
    ///
    /// Panics if the protocol, graph, or seed axis is empty, or if a
    /// declared [`Campaign::baseline`] label matches no protocol-axis
    /// label (a typo would otherwise silently disable every delta).
    pub fn run(self) -> CampaignReport {
        self.run_with_stats().0
    }

    /// Like [`Campaign::run`], additionally returning the executor's
    /// [`ExecStats`]: the instance-cache dedup counters
    /// (`graphs_built` vs `graphs_requested` — a P-protocol grid
    /// builds each `(spec, seed)` graph once, not P times), the
    /// setup-vs-execute worker-time split (summed across threads),
    /// and — with [`Campaign::with_store`] — the skipped-vs-computed
    /// trial counts.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Campaign::run`], plus any store error
    /// (use [`Campaign::try_run_with_stats`] to handle those).
    pub fn run_with_stats(self) -> (CampaignReport, ExecStats) {
        self.try_run_with_stats()
            .unwrap_or_else(|e| panic!("campaign store failure: {e}"))
    }

    /// [`Campaign::run_with_stats`] with store failures surfaced as
    /// [`StoreError`]s instead of panics (axis misconfiguration still
    /// panics — those are programming errors, not runtime
    /// conditions).
    ///
    /// # Errors
    ///
    /// Returns the first store failure: the store could not be
    /// opened/created, or a freshly computed record could not be
    /// flushed (the in-memory report is lost in that case — the
    /// error is returned *after* execution so it names exactly what
    /// was not persisted).
    ///
    /// # Panics
    ///
    /// Same axis-validation conditions as [`Campaign::run`].
    pub fn try_run_with_stats(self) -> Result<(CampaignReport, ExecStats), StoreError> {
        let prepared = self.prepare()?;
        // A fresh per-run cache, exactly as before the daemon lifted
        // caching to process scope: the run's ExecStats then report
        // this grid's dedup in isolation.
        let cache = InstanceCache::new();
        let flush_error: Mutex<Option<StoreError>> = Mutex::new(None);
        let work = |&i: &usize| {
            let record = prepared.run_pending(i, &cache);
            if let Err(e) = prepared.commit(i, record) {
                flush_error
                    .lock()
                    .expect("flush error slot poisoned")
                    .get_or_insert(e);
            }
        };
        let indices: Vec<usize> = (0..prepared.pending()).collect();
        if prepared.parallel() {
            let _: Vec<()> = indices.par_iter().map(work).collect();
        } else {
            indices.iter().for_each(work);
        }
        if let Some(e) = flush_error.into_inner().expect("flush error slot poisoned") {
            return Err(e);
        }
        let (report, mut stats) = prepared.finish();
        let cs = cache.stats();
        stats.graphs_requested = cs.graphs_requested;
        stats.graphs_built = cs.graphs_built;
        stats.partitions_requested = cs.partitions_requested;
        stats.partitions_built = cs.partitions_built;
        stats.setup_nanos = cs.setup_nanos;
        Ok((report, stats))
    }

    /// Splits a run into its two halves: everything *before* trial
    /// execution (axis validation, grid enumeration, store consult —
    /// stored trials become pre-filled results) and the resulting
    /// [`PreparedRun`] of pending work items, which the caller drives
    /// at its own pace. [`Campaign::try_run_with_stats`] drives it
    /// with one `par_iter`; the `bichrome` daemon instead feeds every
    /// in-flight job's pending items into one multiplexed worker pool
    /// against one process-wide [`InstanceCache`].
    ///
    /// # Errors
    ///
    /// Returns the store failure if the attached store cannot be
    /// opened or created.
    ///
    /// # Panics
    ///
    /// Same axis-validation conditions as [`Campaign::run`].
    pub fn prepare(self) -> Result<PreparedRun, StoreError> {
        assert!(
            !self.protocols.is_empty(),
            "Campaign has no protocols: set .protocols(..) / .protocol_keys(..)"
        );
        assert!(
            !self.graphs.is_empty(),
            "Campaign has no graphs: set .graphs(..)"
        );
        assert!(
            !self.seeds.is_empty(),
            "Campaign has no seeds: set .seeds(..)"
        );
        if let Some(baseline) = &self.baseline {
            assert!(
                self.protocols.iter().any(|(label, _)| label == baseline),
                "baseline {baseline:?} is not on the protocol axis: {:?}",
                self.protocols.iter().map(|(l, _)| l).collect::<Vec<_>>()
            );
        }

        // Enumerate cells in axis order: protocol-major, then sized
        // graph, then partitioner.
        let specs = self.sized_specs();
        let parts = self.partitioner_axis();
        let mut meta = Vec::with_capacity(self.cell_count());
        for (label, proto) in &self.protocols {
            for &spec in &specs {
                for &partitioner in &parts {
                    meta.push(CellMeta {
                        label: label.clone(),
                        protocol: Arc::clone(proto),
                        spec,
                        partitioner,
                    });
                }
            }
        }

        // The persistent store, if one is attached: consulted before
        // enqueueing (already-stored trials are skipped) and appended
        // to as each pending trial commits (so a killed run keeps
        // everything done). A Path target is opened here; a Shared
        // target is someone else's open handle.
        let store = match self.store {
            Some(StoreTarget::Path(path)) => {
                Some(Arc::new(Mutex::new(Store::open_or_create(path)?)))
            }
            Some(StoreTarget::Shared(store)) => Some(store),
            None => None,
        };

        // One flat queue over cells × seeds — callers fan out across
        // the whole grid, not per cell. Items are lazy descriptors:
        // workers resolve them through a shared instance cache, so a
        // column of P protocols builds its (spec, seed) instance
        // once, and the sub-seeds derive exactly like a single-cell
        // TrialPlan, keeping a campaign cell bit-identical to the
        // TrialPlan it replaced.
        let per_cell = self.seeds.len();
        let mut results: Vec<Option<TrialRecord>> = vec![None; meta.len() * per_cell];
        let mut queue = Vec::new();
        let mut queue_slots: Vec<usize> = Vec::new();
        let mut queue_keys: Vec<TrialKey> = Vec::new();
        let mut skipped = 0u64;
        for (ci, m) in meta.iter().enumerate() {
            for (si, &seed) in self.seeds.iter().enumerate() {
                let key = TrialKey {
                    protocol: m.label.clone(),
                    graph: m.spec.to_string(),
                    partitioner: partitioner_axis_label(m.partitioner),
                    seed,
                };
                if let Some(store) = &store {
                    let stored = {
                        let guard = store.lock().expect("store poisoned");
                        // An undecodable record (foreign writer, say)
                        // counts as a miss and is recomputed.
                        guard
                            .get(&key)
                            .and_then(|json| TrialRecord::from_json(json).ok())
                    };
                    if let Some(record) = stored {
                        results[ci * per_cell + si] = Some(record);
                        skipped += 1;
                        continue;
                    }
                }
                let partitioner = m
                    .partitioner
                    .unwrap_or(Partitioner::Random(seeds::partition_seed(seed)));
                queue.push(WorkItem {
                    protocol: Arc::clone(&m.protocol),
                    source: WorkSource::Lazy {
                        spec: m.spec,
                        partitioner,
                        trial_seed: seed,
                    },
                    threads: 1,
                });
                queue_keys.push(key);
                queue_slots.push(ci * per_cell + si);
            }
        }
        // Budget from queue occupancy: few big pending cells → several
        // threads inside each trial; a large grid → 1 thread each.
        exec::assign_budgets(&mut queue, self.parallel);

        Ok(PreparedRun {
            meta,
            per_cell,
            store,
            queue,
            queue_slots,
            queue_keys,
            results: Mutex::new(results),
            skipped,
            run_nanos: AtomicU64::new(0),
            baseline: self.baseline,
            parallel: self.parallel,
            transport: self.transport,
            fault: self.fault,
        })
    }
}

/// One enumerated grid cell's identity plus its protocol handle.
struct CellMeta {
    label: String,
    protocol: Arc<dyn Protocol>,
    spec: GraphSpec,
    partitioner: Option<Partitioner>,
}

/// A campaign split at the store-consult boundary by
/// [`Campaign::prepare`]: stored trials are already in the result
/// grid, and the *pending* trials sit in a flat queue the caller
/// drives — serially, through one `par_iter`, or interleaved with
/// other prepared runs on a shared worker pool (the daemon). All
/// methods take `&self`, so a `PreparedRun` can sit behind an `Arc`
/// with many workers committing concurrently.
pub struct PreparedRun {
    meta: Vec<CellMeta>,
    per_cell: usize,
    store: Option<Arc<Mutex<Store>>>,
    queue: Vec<WorkItem>,
    queue_slots: Vec<usize>,
    queue_keys: Vec<TrialKey>,
    results: Mutex<Vec<Option<TrialRecord>>>,
    skipped: u64,
    run_nanos: AtomicU64,
    baseline: Option<String>,
    parallel: bool,
    transport: TransportKind,
    fault: FaultPlan,
}

impl PreparedRun {
    /// Number of trials that must actually run (the store held the
    /// rest).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Trials served from the store at prepare time.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Total trials in the grid (pending + skipped).
    pub fn total_trials(&self) -> usize {
        self.meta.len() * self.per_cell
    }

    /// Whether the campaign asked for parallel execution.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The wire this campaign's sessions run over (what the daemon
    /// hands remote workers in trial descriptors).
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The fault plan this campaign's sessions run under (what the
    /// daemon hands remote workers in trial descriptors; the no-op
    /// plan unless the campaign set one).
    pub fn fault(&self) -> &FaultPlan {
        &self.fault
    }

    /// The canonical identity of pending trial `i` (in `0..pending()`).
    pub fn pending_key(&self, i: usize) -> &TrialKey {
        &self.queue_keys[i]
    }

    /// Executes pending trial `i` against `cache`, returning its
    /// record. Pure compute — nothing is persisted or recorded until
    /// [`PreparedRun::commit`]. Safe to call from any thread; each
    /// `i` should be run once.
    pub fn run_pending(&self, i: usize, cache: &InstanceCache) -> TrialRecord {
        let (record, nanos) = with_session_transport(self.transport, || {
            with_session_faults(&self.fault, || exec::run_item(&self.queue[i], cache))
        });
        self.run_nanos.fetch_add(nanos, Ordering::Relaxed);
        record
    }

    /// Commits pending trial `i`'s record: appends it to the store
    /// (if one is attached) and files it into the result grid.
    ///
    /// # Errors
    ///
    /// Returns the store failure if the append could not be flushed
    /// (the record still lands in the in-memory result grid).
    pub fn commit(&self, i: usize, record: TrialRecord) -> Result<(), StoreError> {
        let stored = match &self.store {
            Some(store) => {
                let _append_span = bichrome_obs::span("trial/store-append");
                let mut guard = store.lock().expect("store poisoned");
                guard.append(self.queue_keys[i].clone(), record.to_json())
            }
            None => Ok(()),
        };
        self.results.lock().expect("results poisoned")[self.queue_slots[i]] = Some(record);
        stored
    }

    /// Aggregates the finished grid into a [`CampaignReport`] plus
    /// the run's trial accounting (`trials_computed`,
    /// `trials_skipped`, `run_nanos`; the instance-cache counters are
    /// zero — they belong to whichever cache the caller ran against).
    /// Takes `&self` so a shared (`Arc`ed) run can be finalized by
    /// whichever worker commits last.
    ///
    /// # Panics
    ///
    /// Panics if some pending trial was never committed.
    pub fn finish(&self) -> (CampaignReport, ExecStats) {
        let results = std::mem::take(&mut *self.results.lock().expect("results poisoned"));
        let mut results = results.into_iter();
        let cells = self
            .meta
            .iter()
            .map(|m| {
                let trials: Vec<TrialRecord> = results
                    .by_ref()
                    .take(self.per_cell)
                    .map(|r| r.expect("every grid slot is stored or computed"))
                    .collect();
                CampaignCell {
                    protocol: m.label.clone(),
                    spec: m.spec,
                    partitioner: m.partitioner,
                    report: Report::new(m.label.clone(), trials),
                }
            })
            .collect();
        let stats = ExecStats {
            trials_computed: self.queue.len() as u64,
            trials_skipped: self.skipped,
            run_nanos: self.run_nanos.load(Ordering::Relaxed),
            intra_threads: self
                .queue
                .iter()
                .map(|it| it.threads as u64)
                .max()
                .unwrap_or(1),
            ..ExecStats::default()
        };
        (
            CampaignReport {
                cells,
                baseline: self.baseline.clone(),
            },
            stats,
        )
    }
}

/// The partitioner-axis label of a cell (`None` = the per-seed
/// default): the canonical third component of a stored trial's
/// [`TrialKey`].
fn partitioner_axis_label(p: Option<Partitioner>) -> String {
    match p {
        Some(p) => p.to_string(),
        None => DEFAULT_PARTITIONER_LABEL.to_string(),
    }
}

/// Recomputes the trial a [`TrialKey`] names, from the key alone —
/// the remote-worker half of the daemon's lease protocol. The key's
/// four fields pin the computation exactly (see
/// [`Campaign::with_store`]), so the returned record is bit-identical
/// to what [`PreparedRun::run_pending`] produces for the same key in
/// the daemon's own process, whatever `transport` carries the
/// session's bytes and whatever `fault` plan flakes the link under
/// them (the fault layer recovers below the meter).
///
/// Only registry protocols can travel as descriptors — a campaign
/// built from closures via [`Campaign::protocol_labeled`] has no
/// name a remote process could resolve.
///
/// # Errors
///
/// Returns a message naming the unresolvable field: an unknown
/// protocol key, an unparsable graph spec, or an unparsable
/// partitioner label.
pub fn compute_trial(
    key: &TrialKey,
    transport: TransportKind,
    fault: &FaultPlan,
    cache: &InstanceCache,
) -> Result<TrialRecord, String> {
    let protocol = registry().get(&key.protocol).ok_or_else(|| {
        format!(
            "unknown protocol key {:?}; registry has: {}",
            key.protocol,
            registry().names().join(", ")
        )
    })?;
    let spec: GraphSpec = key
        .graph
        .parse()
        .map_err(|e| format!("bad graph spec {:?}: {e}", key.graph))?;
    let partitioner = if key.partitioner == DEFAULT_PARTITIONER_LABEL {
        Partitioner::Random(seeds::partition_seed(key.seed))
    } else {
        key.partitioner
            .parse()
            .map_err(|e| format!("bad partitioner {:?}: {e}", key.partitioner))?
    };
    // A remote worker computes one trial at a time, so the trial may
    // saturate its machine.
    let item = WorkItem {
        protocol,
        source: WorkSource::Lazy {
            spec,
            partitioner,
            trial_seed: key.seed,
        },
        threads: rayon::current_num_threads().max(1),
    };
    let (record, _nanos) = with_session_transport(transport, || {
        with_session_faults(fault, || exec::run_item(&item, cache))
    });
    Ok(record)
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field(
                "protocols",
                &self.protocols.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .field("graphs", &self.graphs)
            .field("sizes", &self.sizes)
            .field("partitioners", &self.partitioners)
            .field("seeds", &self.seeds.len())
            .field("parallel", &self.parallel)
            .field("baseline", &self.baseline)
            .field("transport", &self.transport)
            .field("fault", &self.fault.to_string())
            .field(
                "store",
                &match &self.store {
                    Some(StoreTarget::Path(p)) => format!("path:{}", p.display()),
                    Some(StoreTarget::Shared(_)) => "shared".to_string(),
                    None => "none".to_string(),
                },
            )
            .finish()
    }
}

/// One grid cell: a (protocol, sized graph family, partitioner)
/// combination with its aggregated per-seed [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// The protocol axis label (registry key or explicit label).
    pub protocol: String,
    /// The sized graph spec the cell ran on.
    pub spec: GraphSpec,
    /// The fixed partitioner, or `None` for the per-seed default.
    pub partitioner: Option<Partitioner>,
    /// Per-seed trials and their summary (the same [`Report`] a
    /// single-cell [`crate::TrialPlan`] produces).
    pub report: Report,
}

impl CampaignCell {
    /// The partitioner-axis label of this cell.
    pub fn partitioner_label(&self) -> String {
        partitioner_axis_label(self.partitioner)
    }

    /// Shorthand for the cell's summary.
    pub fn summary(&self) -> &Summary {
        &self.report.summary
    }
}

/// Pivot axes for [`CampaignReport::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// One group per protocol label.
    Protocol,
    /// One group per graph family (parameters ignored).
    Family,
    /// One group per graph size `n`.
    Size,
    /// One group per partitioner-axis entry.
    Partitioner,
}

/// One cell's cost relative to the baseline cell on the same graph
/// and partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDelta {
    /// The compared protocol's label.
    pub protocol: String,
    /// The shared graph spec.
    pub spec: GraphSpec,
    /// The shared partitioner-axis entry.
    pub partitioner: Option<Partitioner>,
    /// Mean total bits, this protocol / baseline (∞ when the baseline
    /// is zero-bit and this protocol is not; 1 when both are zero).
    pub bits_ratio: f64,
    /// Mean rounds, this protocol / baseline (same conventions).
    pub rounds_ratio: f64,
}

fn ratio(x: f64, base: f64) -> f64 {
    if base == 0.0 {
        if x == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        x / base
    }
}

/// The aggregated result of a [`Campaign`] run: one [`CampaignCell`]
/// per grid cell, in axis order, plus pivots, baseline-relative
/// deltas, and table / JSON / CSV rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Every cell, protocol-major in axis order.
    pub cells: Vec<CampaignCell>,
    /// The baseline protocol label, if one was declared.
    pub baseline: Option<String>,
}

impl CampaignReport {
    /// Reassembles a report purely from a persistent [`Store`] — no
    /// re-execution — so `bichrome report` can render table / JSON /
    /// CSV views of any store, including one written by a run that
    /// was killed partway.
    ///
    /// The store does not know the original axis declaration, so
    /// cells come out in canonical sorted order — by (protocol,
    /// graph, partitioner) — with each cell's trials sorted by seed,
    /// and no baseline is set. Aggregates are recomputed from the
    /// stored records; when the campaign declared its seeds in
    /// ascending order (ranges always do) they equal the live run's
    /// bit for bit, while an out-of-order seed *list* re-aggregates
    /// in sorted order and float summation order may differ in the
    /// last ulp.
    ///
    /// # Errors
    ///
    /// Returns a description of the first entry whose record or key
    /// fields cannot be decoded (e.g. a store written by a different
    /// producer).
    pub fn from_store(store: &Store) -> Result<CampaignReport, String> {
        use std::collections::BTreeMap;
        let mut grouped: BTreeMap<(String, String, String), BTreeMap<u64, TrialRecord>> =
            BTreeMap::new();
        for entry in store.iter() {
            let record = TrialRecord::from_json(&entry.record_json)
                .map_err(|e| format!("undecodable record for {}: {e}", entry.key))?;
            grouped
                .entry((
                    entry.key.protocol.clone(),
                    entry.key.graph.clone(),
                    entry.key.partitioner.clone(),
                ))
                .or_default()
                .insert(entry.key.seed, record);
        }
        let cells = grouped
            .into_iter()
            .map(|((protocol, graph, part_label), trials)| {
                let spec: GraphSpec = graph
                    .parse()
                    .map_err(|e| format!("unparseable graph spec {graph:?}: {e}"))?;
                let partitioner = if part_label == DEFAULT_PARTITIONER_LABEL {
                    None
                } else {
                    Some(
                        part_label
                            .parse::<Partitioner>()
                            .map_err(|e| format!("unparseable partitioner {part_label:?}: {e}"))?,
                    )
                };
                Ok(CampaignCell {
                    protocol: protocol.clone(),
                    spec,
                    partitioner,
                    report: Report::new(protocol, trials.into_values().collect()),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CampaignReport {
            cells,
            baseline: None,
        })
    }

    /// Whether every trial of every cell validated.
    pub fn all_valid(&self) -> bool {
        self.cells.iter().all(|c| c.report.all_valid())
    }

    /// Total trials across the grid.
    pub fn total_trials(&self) -> usize {
        self.cells.iter().map(|c| c.report.trials.len()).sum()
    }

    /// Total bits exchanged across every trial of every cell.
    pub fn total_bits(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|c| &c.report.trials)
            .map(|t| t.total_bits())
            .sum()
    }

    /// Pivots the grid: merges the trials of every cell sharing the
    /// given axis value and re-aggregates one [`Summary`] per group,
    /// in first-seen cell order.
    pub fn group_by(&self, axis: GroupBy) -> Vec<(String, Summary)> {
        let mut groups: Vec<(String, Vec<crate::plan::TrialRecord>)> = Vec::new();
        for cell in &self.cells {
            let key = match axis {
                GroupBy::Protocol => cell.protocol.clone(),
                GroupBy::Family => cell.spec.family().to_string(),
                GroupBy::Size => format!("n={}", cell.spec.num_vertices()),
                GroupBy::Partitioner => cell.partitioner_label(),
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, trials)) => trials.extend(cell.report.trials.iter().cloned()),
                None => groups.push((key, cell.report.trials.clone())),
            }
        }
        groups
            .into_iter()
            .map(|(k, trials)| (k, Summary::of(&trials)))
            .collect()
    }

    /// Every non-baseline cell's cost relative to `baseline`'s cell
    /// on the same (graph, partitioner). Cells with no matching
    /// baseline cell are skipped.
    pub fn deltas_vs(&self, baseline: &str) -> Vec<BaselineDelta> {
        let base_cell = |spec: &GraphSpec, part: &Option<Partitioner>| {
            self.cells
                .iter()
                .find(|c| c.protocol == baseline && c.spec == *spec && c.partitioner == *part)
        };
        self.cells
            .iter()
            .filter(|c| c.protocol != baseline)
            .filter_map(|c| {
                let base = base_cell(&c.spec, &c.partitioner)?;
                Some(BaselineDelta {
                    protocol: c.protocol.clone(),
                    spec: c.spec,
                    partitioner: c.partitioner,
                    bits_ratio: ratio(c.summary().total_bits.mean, base.summary().total_bits.mean),
                    rounds_ratio: ratio(c.summary().rounds.mean, base.summary().rounds.mean),
                })
            })
            .collect()
    }

    /// [`CampaignReport::deltas_vs`] against the declared
    /// [`Campaign::baseline`] (empty when none was declared).
    pub fn baseline_deltas(&self) -> Vec<BaselineDelta> {
        match &self.baseline {
            Some(b) => self.deltas_vs(b),
            None => Vec::new(),
        }
    }

    /// Renders one row per cell plus a grid-summary footer. When a
    /// baseline is declared, a `bits vs <baseline>` column shows each
    /// cell's mean-bits ratio against the baseline cell on the same
    /// graph and partitioner.
    pub fn render_table(&self) -> String {
        let deltas = self.baseline_deltas();
        let with_baseline = self.baseline.is_some();
        let mut headers = vec![
            "protocol",
            "graph",
            "partitioner",
            "trials",
            "ok",
            "bits",
            "±sd",
            "p50",
            "p95",
            "rounds",
            "colors",
            "bits/n",
        ];
        if with_baseline {
            headers.push("bits vs baseline");
        }
        let mut t = Table::new(&headers);
        for cell in &self.cells {
            let s = cell.summary();
            let mut row = vec![
                cell.protocol.clone(),
                cell.spec.to_string(),
                cell.partitioner_label(),
                s.trials.to_string(),
                format!("{}/{}", s.valid, s.trials),
                format!("{:.1}", s.total_bits.mean),
                format!("{:.1}", s.total_bits.stddev),
                format!("{:.0}", s.total_bits.p50),
                format!("{:.0}", s.total_bits.p95),
                format!("{:.1}", s.rounds.mean),
                format!("{:.1}", s.colors.mean),
                format!("{:.2}", s.bits_per_vertex.mean),
            ];
            if with_baseline {
                let vs = if Some(&cell.protocol) == self.baseline.as_ref() {
                    "—".to_string()
                } else {
                    deltas
                        .iter()
                        .find(|d| {
                            d.protocol == cell.protocol
                                && d.spec == cell.spec
                                && d.partitioner == cell.partitioner
                        })
                        .map(|d| format!("{:.2}x", d.bits_ratio))
                        .unwrap_or_else(|| "?".to_string())
                };
                row.push(vs);
            }
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            t.row(&refs);
        }
        format!(
            "{}\ngrid: {} cells · {} trials · {} valid · {} total bits\n",
            t.render(),
            self.cells.len(),
            self.total_trials(),
            self.cells.iter().map(|c| c.summary().valid).sum::<usize>(),
            self.total_bits(),
        )
    }

    /// The pinned CSV header ([`CampaignReport::to_csv`]'s first
    /// line). Format history: PR 4 added the four nearest-rank
    /// percentile columns (`bits_p50`/`bits_p95`,
    /// `rounds_p50`/`rounds_p95`).
    pub const CSV_HEADER: &'static [&'static str] = &[
        "protocol",
        "graph",
        "family",
        "partitioner",
        "n",
        "trials",
        "valid",
        "bits_mean",
        "bits_stddev",
        "bits_min",
        "bits_max",
        "bits_p50",
        "bits_p95",
        "rounds_mean",
        "rounds_stddev",
        "rounds_max",
        "rounds_p50",
        "rounds_p95",
        "bits_per_vertex_mean",
        "colors_mean",
    ];

    /// Serializes one CSV row per cell under
    /// [`CampaignReport::CSV_HEADER`]. Fields containing commas (graph
    /// specs, partitioner labels) are RFC-4180-quoted.
    pub fn to_csv(&self) -> String {
        let mut csv = Csv::new(Self::CSV_HEADER);
        for cell in &self.cells {
            let s = cell.summary();
            csv.row(&[
                &cell.protocol,
                &cell.spec.to_string(),
                cell.spec.family(),
                &cell.partitioner_label(),
                &cell.spec.num_vertices().to_string(),
                &s.trials.to_string(),
                &s.valid.to_string(),
                &s.total_bits.mean.to_string(),
                &s.total_bits.stddev.to_string(),
                &s.total_bits.min.to_string(),
                &s.total_bits.max.to_string(),
                &s.total_bits.p50.to_string(),
                &s.total_bits.p95.to_string(),
                &s.rounds.mean.to_string(),
                &s.rounds.stddev.to_string(),
                &s.rounds.max.to_string(),
                &s.rounds.p50.to_string(),
                &s.rounds.p95.to_string(),
                &s.bits_per_vertex.mean.to_string(),
                &s.colors.mean.to_string(),
            ]);
        }
        csv.finish()
    }

    /// Serializes the whole grid — every cell with its full per-trial
    /// report — via the hand-written JSON writer.
    pub fn to_json(&self) -> String {
        let mut w = crate::json::Writer::object();
        match &self.baseline {
            Some(b) => w.field_str("baseline", b),
            None => w.field_null("baseline"),
        }
        w.field_u64("cells", self.cells.len() as u64);
        w.field_u64("trials", self.total_trials() as u64);
        w.field_u64("total_bits", self.total_bits());
        w.field_bool("all_valid", self.all_valid());
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                let mut o = crate::json::Writer::object();
                o.field_str("protocol", &c.protocol);
                o.field_str("graph", &c.spec.to_string());
                o.field_str("family", c.spec.family());
                o.field_str("partitioner", &c.partitioner_label());
                o.field_u64("n", c.spec.num_vertices() as u64);
                o.field_raw("report", &c.report.to_json());
                o.finish()
            })
            .collect();
        w.field_raw("cells", &format!("[{}]", cells.join(",")));
        w.finish()
    }
}

/// Renders a baseline-relative comparison of the cells two reports
/// share: `a` is the baseline, ratios are `b / a`. Cells present on
/// only one side are listed under the table. Shared by `bichrome
/// diff` and the daemon's `diff` request.
pub fn diff_reports(
    a: &CampaignReport,
    b: &CampaignReport,
    label_a: &str,
    label_b: &str,
) -> String {
    use std::fmt::Write as _;
    let mut t = Table::new(&[
        "protocol",
        "graph",
        "partitioner",
        "bits a",
        "bits b",
        "bits b/a",
        "rounds b/a",
        "valid a",
        "valid b",
    ]);
    let mut shared = 0usize;
    let mut only_a = Vec::new();
    for cell in &a.cells {
        let Some(twin) = b.cells.iter().find(|c| {
            c.protocol == cell.protocol
                && c.spec == cell.spec
                && c.partitioner_label() == cell.partitioner_label()
        }) else {
            only_a.push(format!("{} on {}", cell.protocol, cell.spec));
            continue;
        };
        shared += 1;
        let (sa, sb) = (cell.summary(), twin.summary());
        t.row(&[
            &cell.protocol,
            &cell.spec.to_string(),
            &cell.partitioner_label(),
            &format!("{:.1}", sa.total_bits.mean),
            &format!("{:.1}", sb.total_bits.mean),
            &ratio_label(sb.total_bits.mean, sa.total_bits.mean),
            &ratio_label(sb.rounds.mean, sa.rounds.mean),
            &format!("{}/{}", sa.valid, sa.trials),
            &format!("{}/{}", sb.valid, sb.trials),
        ]);
    }
    let only_b: Vec<String> = b
        .cells
        .iter()
        .filter(|c| {
            !a.cells.iter().any(|d| {
                d.protocol == c.protocol
                    && d.spec == c.spec
                    && d.partitioner_label() == c.partitioner_label()
            })
        })
        .map(|c| format!("{} on {}", c.protocol, c.spec))
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "diff {label_a} (a) vs {label_b} (b): {shared} shared cell(s)"
    )
    .expect("string write");
    if shared > 0 {
        out.push_str(&t.render());
        out.push('\n');
    }
    for (label, cells) in [("only in a", only_a), ("only in b", only_b)] {
        if !cells.is_empty() {
            writeln!(out, "{label}: {}", cells.join(", ")).expect("string write");
        }
    }
    out
}

/// A `x.xx×` ratio cell: `1.00x` when both sides are zero-mean, `∞`
/// when only the baseline side is.
fn ratio_label(b: f64, a: f64) -> String {
    if a == 0.0 && b == 0.0 {
        "1.00x".to_string()
    } else if a == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", b / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TrialPlan;

    fn small_grid() -> Campaign {
        Campaign::new()
            .protocol_keys(["edge/theorem2", "baseline/send-everything"])
            .graphs([
                GraphSpec::NearRegular { n: 30, d: 4 },
                GraphSpec::Gnp { n: 30, p: 0.15 },
            ])
            .seeds(0..3)
    }

    #[test]
    fn grid_shape_and_order() {
        let c = small_grid();
        assert_eq!(c.cell_count(), 4);
        let report = c.run();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.total_trials(), 12);
        assert!(report.all_valid(), "{}", report.render_table());
        // Protocol-major order.
        assert_eq!(report.cells[0].protocol, "edge/theorem2");
        assert_eq!(report.cells[1].protocol, "edge/theorem2");
        assert_eq!(report.cells[2].protocol, "baseline/send-everything");
        assert_eq!(report.cells[0].spec, GraphSpec::NearRegular { n: 30, d: 4 });
        assert_eq!(report.cells[1].spec, GraphSpec::Gnp { n: 30, p: 0.15 });
    }

    #[test]
    fn sizes_axis_rescales_every_family() {
        let report = Campaign::new()
            .protocol_keys(["edge/theorem3-zero-comm"])
            .graphs([GraphSpec::NearRegular { n: 8, d: 4 }])
            .sizes([16, 32])
            .seeds(0..2)
            .run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].spec.num_vertices(), 16);
        assert_eq!(report.cells[1].spec.num_vertices(), 32);
        assert!(report.all_valid());
    }

    #[test]
    fn campaign_cell_is_bit_identical_to_the_trial_plan_it_replaced() {
        let spec = GraphSpec::NearRegular { n: 40, d: 5 };
        let plan = TrialPlan::new(registry().get("vertex/theorem1").expect("registered"))
            .graphs(spec)
            .seeds(0..4)
            .run();
        let campaign = Campaign::new()
            .protocol_keys(["vertex/theorem1"])
            .graphs([spec])
            .seeds(0..4)
            .run();
        assert_eq!(campaign.cells.len(), 1);
        assert_eq!(campaign.cells[0].report, plan);

        // Same with a fixed partitioner on the axis.
        let plan = TrialPlan::new(registry().get("edge/theorem2").expect("registered"))
            .graphs(spec)
            .partitioner(Partitioner::Alternating)
            .seeds(0..4)
            .run();
        let campaign = Campaign::new()
            .protocol_keys(["edge/theorem2"])
            .graphs([spec])
            .partitioners([Partitioner::Alternating])
            .seeds(0..4)
            .run();
        assert_eq!(campaign.cells[0].report, plan);
    }

    #[test]
    fn group_by_pivots_partition_the_trials() {
        let report = small_grid().partitioners(Partitioner::family(3)).run();
        assert_eq!(report.cells.len(), 2 * 2 * 6);
        for axis in [
            GroupBy::Protocol,
            GroupBy::Family,
            GroupBy::Size,
            GroupBy::Partitioner,
        ] {
            let groups = report.group_by(axis);
            let total: usize = groups.iter().map(|(_, s)| s.trials).sum();
            assert_eq!(total, report.total_trials(), "{axis:?} must partition");
        }
        assert_eq!(report.group_by(GroupBy::Protocol).len(), 2);
        assert_eq!(report.group_by(GroupBy::Family).len(), 2);
        assert_eq!(report.group_by(GroupBy::Size).len(), 1);
        assert_eq!(report.group_by(GroupBy::Partitioner).len(), 6);
    }

    #[test]
    fn baseline_deltas_compare_matching_cells() {
        let report = small_grid().baseline("baseline/send-everything").run();
        let deltas = report.baseline_deltas();
        // One delta per non-baseline cell.
        assert_eq!(deltas.len(), 2);
        for d in &deltas {
            assert_eq!(d.protocol, "edge/theorem2");
            assert!(d.bits_ratio.is_finite() && d.bits_ratio > 0.0);
            // Theorem 2's O(n) bits undercut send-the-graph.
            assert!(d.bits_ratio < 1.0, "expected savings, got {}", d.bits_ratio);
        }
        let table = report.render_table();
        assert!(table.contains("bits vs baseline"));
        assert!(table.contains("—"));
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(3.0, 0.0), f64::INFINITY);
        assert_eq!(ratio(3.0, 2.0), 1.5);
    }

    #[test]
    fn csv_and_json_cover_every_cell() {
        let report = small_grid().run();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.cells.len());
        assert_eq!(lines[0], CampaignReport::CSV_HEADER.join(","));
        // Graph-spec labels contain commas, so they must be quoted.
        assert!(lines[1].contains("\"near-regular(n=30,d=4)\""));

        let json = crate::json::Value::parse(&report.to_json()).expect("parses");
        let obj = json.as_object().expect("object");
        match &obj["cells"] {
            crate::json::Value::Array(a) => assert_eq!(a.len(), 4),
            other => panic!("cells not an array: {other:?}"),
        }
        assert_eq!(obj["all_valid"], crate::json::Value::Bool(true));
    }

    #[test]
    #[should_panic(expected = "unknown protocol key")]
    fn unknown_protocol_key_panics_with_the_key_list() {
        let _ = Campaign::new().protocol_keys(["no/such/protocol"]);
    }

    #[test]
    #[should_panic(expected = "no seeds")]
    fn empty_seed_axis_panics() {
        let _ = Campaign::new()
            .protocol_keys(["edge/theorem2"])
            .graphs([GraphSpec::Path { n: 4 }])
            .run();
    }

    #[test]
    #[should_panic(expected = "not on the protocol axis")]
    fn misspelled_baseline_panics_instead_of_silently_disabling_deltas() {
        let _ = small_grid().baseline("send-everything").run();
    }

    /// A unique scratch directory (removed on drop).
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            TempDir(std::env::temp_dir().join(format!(
                "bichrome-campaign-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            )))
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn warm_store_skips_everything_and_reports_identically() {
        let tmp = TempDir::new("warm");
        let fresh = small_grid().run();
        let (cold, cold_stats) = small_grid().with_store(&tmp.0).run_with_stats();
        assert_eq!(cold, fresh, "a cold store must not change results");
        assert_eq!(cold_stats.trials_computed, 12);
        assert_eq!(cold_stats.trials_skipped, 0);

        let (warm, warm_stats) = small_grid().with_store(&tmp.0).run_with_stats();
        assert_eq!(warm, fresh, "a warm store must reproduce bit-identically");
        assert_eq!(warm_stats.trials_computed, 0, "everything came from disk");
        assert_eq!(warm_stats.trials_skipped, 12);
        assert_eq!(warm_stats.graphs_requested, 0, "no instance was built");
    }

    #[test]
    fn extending_the_seed_axis_computes_only_the_new_suffix() {
        let tmp = TempDir::new("extend");
        let (_, stats) = small_grid().with_store(&tmp.0).run_with_stats();
        assert_eq!(stats.trials_computed, 12);

        let extended = || small_grid().seeds(3..5); // 0..3 ∪ 3..5
        let (report, stats) = extended().with_store(&tmp.0).run_with_stats();
        assert_eq!(stats.trials_skipped, 12, "the original half is on disk");
        assert_eq!(stats.trials_computed, 4 * 2, "only the two new seeds run");
        assert_eq!(report, extended().run(), "and the merge is bit-identical");
    }

    #[test]
    fn report_from_store_reaggregates_the_same_summaries() {
        let tmp = TempDir::new("fromstore");
        let (ran, _) = small_grid()
            .partitioners([Partitioner::Alternating])
            .with_store(&tmp.0)
            .run_with_stats();
        let store = bichrome_store::Store::open_existing(&tmp.0).expect("store exists");
        let rebuilt = CampaignReport::from_store(&store).expect("decodes");
        assert_eq!(rebuilt.cells.len(), ran.cells.len());
        assert_eq!(rebuilt.total_trials(), ran.total_trials());
        // Cells come back in canonical sorted order; match them up.
        for cell in &ran.cells {
            let twin = rebuilt
                .cells
                .iter()
                .find(|c| {
                    c.protocol == cell.protocol
                        && c.spec == cell.spec
                        && c.partitioner == cell.partitioner
                })
                .expect("every executed cell is in the store");
            assert_eq!(twin.report, cell.report, "bit-identical re-aggregation");
        }
    }

    #[test]
    fn store_key_uses_the_axis_label_for_the_default_partitioner() {
        // The default adversary derives from the trial seed, so the
        // stored key keeps the axis label and two different seeds
        // must produce two different store entries.
        let tmp = TempDir::new("defaultpart");
        let campaign = || {
            Campaign::new()
                .protocol_keys(["edge/theorem3-zero-comm"])
                .graphs([GraphSpec::Cycle { n: 8 }])
                .seeds(0..2)
        };
        let (_, stats) = campaign().with_store(&tmp.0).run_with_stats();
        assert_eq!(stats.trials_computed, 2);
        let store = bichrome_store::Store::open_existing(&tmp.0).expect("store");
        assert_eq!(store.len(), 2);
        for entry in store.iter() {
            assert_eq!(entry.key.partitioner, DEFAULT_PARTITIONER_LABEL);
        }
        let (_, stats) = campaign().with_store(&tmp.0).run_with_stats();
        assert_eq!(stats.trials_skipped, 2);
    }

    #[test]
    fn campaign_reports_are_bit_identical_across_transports() {
        // The acceptance invariant of the transport axis: the same
        // multi-protocol grid, run over in-process channels, OS
        // pipes, and loopback TCP, produces the same report record
        // for record — bits, rounds, phases, colors, everything.
        let grid = |t: TransportKind| {
            Campaign::new()
                .protocol_keys(["edge/theorem2", "vertex/theorem1", "streaming/greedy-w"])
                .graphs([GraphSpec::NearRegular { n: 24, d: 4 }])
                .seeds(0..2)
                .transport(t)
                .run()
        };
        let baseline = grid(TransportKind::InProc);
        assert!(baseline.all_valid());
        for kind in [TransportKind::Pipe, TransportKind::Tcp] {
            assert_eq!(grid(kind), baseline, "{kind}");
        }
    }

    #[test]
    fn campaign_reports_are_bit_identical_under_any_recoverable_fault_plan() {
        // The acceptance invariant of the chaos layer: any fault plan
        // that eventually lets traffic through (every FaultPlan is
        // recoverable by construction) leaves the campaign report
        // byte-identical to the fault-free run, on every transport.
        // Metering happens above the faulty link and recovery below
        // it, so severs, corruptions, delays, and short I/O are all
        // invisible to the recorded bits, rounds, and colorings.
        let grid = |t: TransportKind, fault: FaultPlan| {
            Campaign::new()
                .protocol_keys(["edge/theorem2", "vertex/theorem1"])
                .graphs([GraphSpec::NearRegular { n: 20, d: 4 }])
                .seeds(0..2)
                .transport(t)
                .fault(fault)
                .run()
        };
        let baseline = grid(TransportKind::InProc, FaultPlan::new());
        assert!(baseline.all_valid());
        let plans = [
            FaultPlan::new().sever_at(1),
            FaultPlan::new().corrupt_at(2),
            FaultPlan::new().sever_at(2).corrupt_at(1).delay_ms(1),
            FaultPlan::new().short(3).sever_at(3),
        ];
        for plan in plans {
            for kind in TransportKind::ALL {
                let spec = plan.to_string();
                assert_eq!(grid(kind, plan.clone()), baseline, "{spec} over {kind}");
            }
        }
        // Byte-identical, not merely structurally equal.
        assert_eq!(
            grid(TransportKind::Tcp, FaultPlan::new().sever_at(1).delay_ms(1)).to_json(),
            baseline.to_json(),
        );
    }

    #[test]
    fn compute_trial_matches_the_prepared_run_for_the_same_key() {
        // The remote-worker path: reconstructing a trial from its
        // TrialKey alone must reproduce run_pending bit for bit,
        // including under the default per-seed partitioner and over a
        // different transport than the daemon would use locally.
        let campaigns = [
            Campaign::new()
                .protocol_keys(["edge/theorem2", "edge/theorem3-zero-comm"])
                .graphs([GraphSpec::NearRegular { n: 24, d: 4 }])
                .seeds(0..2),
            Campaign::new()
                .protocol_keys(["vertex/theorem1"])
                .graphs([GraphSpec::Gnp { n: 20, p: 0.2 }])
                .partitioners([Partitioner::Alternating])
                .seeds(5..7),
        ];
        for campaign in campaigns {
            let prepared = campaign.prepare().expect("no store attached");
            let cache = InstanceCache::new();
            for i in 0..prepared.pending() {
                let local = prepared.run_pending(i, &cache);
                let key = prepared.pending_key(i);
                for kind in TransportKind::ALL {
                    let remote = compute_trial(key, kind, &FaultPlan::new(), &InstanceCache::new())
                        .expect("key resolves");
                    assert_eq!(remote, local, "{key:?} over {kind}");
                }
            }
        }
    }

    #[test]
    fn compute_trial_reports_unresolvable_descriptors() {
        let cache = InstanceCache::new();
        let bad_protocol = TrialKey {
            protocol: "no/such/protocol".into(),
            graph: "path(n=4)".into(),
            partitioner: DEFAULT_PARTITIONER_LABEL.into(),
            seed: 0,
        };
        let no_fault = FaultPlan::new();
        let err = compute_trial(&bad_protocol, TransportKind::InProc, &no_fault, &cache)
            .expect_err("bad");
        assert!(err.contains("unknown protocol key"), "{err}");
        let bad_graph = TrialKey {
            protocol: "edge/theorem2".into(),
            graph: "klein-bottle(n=4)".into(),
            ..bad_protocol.clone()
        };
        let err =
            compute_trial(&bad_graph, TransportKind::InProc, &no_fault, &cache).expect_err("bad");
        assert!(err.contains("bad graph spec"), "{err}");
        let bad_partitioner = TrialKey {
            graph: "path(n=4)".into(),
            partitioner: "coin-flip".into(),
            ..bad_graph
        };
        let err = compute_trial(&bad_partitioner, TransportKind::InProc, &no_fault, &cache)
            .expect_err("bad");
        assert!(err.contains("bad partitioner"), "{err}");
    }
}
