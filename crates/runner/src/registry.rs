//! The string-keyed protocol registry: every protocol the paper
//! defines (and every baseline it compares against), constructible by
//! name. Adding a scenario to the whole harness — benches, examples,
//! services — is one entry here.
//!
//! | key | paper reference | guarantee |
//! |-----|-----------------|-----------|
//! | `vertex/theorem1` | Theorem 1 | `(Δ+1)`-vertex, `O(n)` bits, `O(log log n · log Δ)` rounds |
//! | `edge/theorem2` | Theorem 2 | `(2Δ−1)`-edge, `O(n)` bits, `O(1)` rounds |
//! | `edge/theorem3-zero-comm` | Theorem 3 | `(2Δ)`-edge, zero communication |
//! | `edge/lemma5.1-bounded` | Lemma 5.1 | `(2Δ−1)`-edge for constant Δ, one round |
//! | `baseline/flin-mittal` | \[FM25\] | `(Δ+1)`-vertex, `O(n)` bits, `Ω(n)` rounds |
//! | `baseline/greedy-binary-search` | folklore | `(Δ+1)`-vertex, `O(n log² Δ)` bits |
//! | `baseline/send-everything` | trivial | `(Δ+1)`-vertex, `O(m log n)` bits, 1 round |
//! | `streaming/greedy-w` | §6.4 | weaker-(2Δ−1) via W-streaming simulation |
//! | `streaming/chunked-w` | §6.4 | proper edge coloring via chunked W-streaming |

use crate::instance::Instance;
use crate::protocol::{Outcome, Protocol};
use bichrome_comm::session::run_two_party_ctx;
use bichrome_comm::CommStats;
use bichrome_core::baselines::{flin_mittal, greedy_binary_search, send_everything, Baseline};
use bichrome_core::edge::{self, bounded, two_delta};
use bichrome_core::input::PartyInput;
use bichrome_core::rct::RctConfig;
use bichrome_core::vertex::vertex_coloring_party;
use bichrome_graph::coloring::EdgeColoring;
use bichrome_streaming::algorithms::{ChunkedWStreaming, GreedyWStreaming};
use bichrome_streaming::reduction::simulate_streaming_two_party;
use std::sync::Arc;

/// **Theorem 1**: `(Δ+1)`-vertex coloring — `Random-Color-Trial`
/// followed by D1LC with palette sparsification.
#[derive(Debug, Clone, Default)]
pub struct VertexTheorem1 {
    /// `Random-Color-Trial` tuning.
    pub config: RctConfig,
}

impl Protocol for VertexTheorem1 {
    fn name(&self) -> &str {
        "vertex/theorem1"
    }

    fn describe(&self) -> &str {
        "Theorem 1: (Δ+1)-vertex coloring, O(n) expected bits, O(log log n · log Δ) rounds"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let a = PartyInput::alice(&inst.partition);
        let b = PartyInput::bob(&inst.partition);
        let (cfg_a, cfg_b) = (self.config, self.config);
        let ((ca, rct), (cb, _), stats) = run_two_party_ctx(
            inst.seed,
            move |ctx| vertex_coloring_party(&a, &ctx, &cfg_a),
            move |ctx| vertex_coloring_party(&b, &ctx, &cfg_b),
        );
        if ca != cb {
            return Outcome::failed("parties disagree on the vertex coloring", stats);
        }
        // RCT-stage instrumentation rides along as metrics so
        // iteration-budget ablations (a1) are plain campaigns.
        Outcome::vertex(inst.graph(), ca, stats, inst.delta() + 1)
            .with_metric("rct_remaining", rct.remaining as f64)
            .with_metric("rct_iterations", rct.iterations_run as f64)
    }
}

/// **Theorem 2**: deterministic `(2Δ−1)`-edge coloring, dispatching
/// between Lemma 5.1 (`Δ ≤ 7`) and Algorithm 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeTheorem2;

impl Protocol for EdgeTheorem2 {
    fn name(&self) -> &str {
        "edge/theorem2"
    }

    fn describe(&self) -> &str {
        "Theorem 2: deterministic (2Δ−1)-edge coloring, O(n) bits, O(1) rounds"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let a = PartyInput::alice(&inst.partition);
        let b = PartyInput::bob(&inst.partition);
        let script = move |input: PartyInput| {
            move |ctx: bichrome_comm::session::PartyCtx| edge::theorem2_party(&input, &ctx)
        };
        let (alice, bob, stats) = run_two_party_ctx(inst.seed, script(a), script(b));
        let budget = (2 * inst.delta()).saturating_sub(1).max(1);
        merge_edge_outcome(inst, alice, bob, stats, budget)
    }
}

/// **Theorem 3**: `(2Δ)`-edge coloring with *zero* communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeTheorem3ZeroComm;

impl Protocol for EdgeTheorem3ZeroComm {
    fn name(&self) -> &str {
        "edge/theorem3-zero-comm"
    }

    fn describe(&self) -> &str {
        "Theorem 3: (2Δ)-edge coloring with zero communication"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let (alice, bob) = two_delta::solve_two_delta(&inst.partition);
        let budget = (2 * inst.delta()).max(1);
        merge_edge_outcome(inst, alice, bob, CommStats::default(), budget)
    }
}

/// **Lemma 5.1**: the one-round constant-Δ `(2Δ−1)` protocol, exposed
/// directly (Theorem 2 dispatches to it when `Δ ≤ 7`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeLemma51Bounded;

impl Protocol for EdgeLemma51Bounded {
    fn name(&self) -> &str {
        "edge/lemma5.1-bounded"
    }

    fn describe(&self) -> &str {
        "Lemma 5.1: one-round (2Δ−1)-edge coloring, O(Δ·n) bits (O(n) for constant Δ)"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        if inst.delta() == 0 {
            return merge_edge_outcome(
                inst,
                EdgeColoring::new(),
                EdgeColoring::new(),
                CommStats::default(),
                1,
            );
        }
        let a = PartyInput::alice(&inst.partition);
        let b = PartyInput::bob(&inst.partition);
        let script = move |input: PartyInput| {
            move |ctx: bichrome_comm::session::PartyCtx| bounded::bounded_delta_party(&input, &ctx)
        };
        let (alice, bob, stats) = run_two_party_ctx(inst.seed, script(a), script(b));
        merge_edge_outcome(
            inst,
            alice,
            bob,
            stats,
            (2 * inst.delta()).saturating_sub(1).max(1),
        )
    }
}

/// One of the paper's three comparison baselines, run through the
/// uniform interface.
#[derive(Debug, Clone, Copy)]
pub struct BaselineProtocol {
    which: Baseline,
    name: &'static str,
    describe: &'static str,
}

impl BaselineProtocol {
    /// The baseline protocol for `which`.
    pub fn new(which: Baseline) -> Self {
        let (name, describe) = match which {
            Baseline::FlinMittal => (
                "baseline/flin-mittal",
                "[FM25]: sequential random-order (Δ+1)-vertex coloring, O(n) bits, Ω(n) rounds",
            ),
            Baseline::GreedyBinarySearch => (
                "baseline/greedy-binary-search",
                "folklore: greedy + binary search, O(n log² Δ) bits, O(n log Δ) rounds",
            ),
            Baseline::SendEverything => (
                "baseline/send-everything",
                "trivial: exchange both edge sets in one round, O(m log n) bits",
            ),
        };
        BaselineProtocol {
            which,
            name,
            describe,
        }
    }
}

impl Protocol for BaselineProtocol {
    fn name(&self) -> &str {
        self.name
    }

    fn describe(&self) -> &str {
        self.describe
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let a = PartyInput::alice(&inst.partition);
        let b = PartyInput::bob(&inst.partition);
        let which = self.which;
        let script = move |input: PartyInput| {
            move |ctx: bichrome_comm::session::PartyCtx| match which {
                Baseline::FlinMittal => flin_mittal(&input, &ctx),
                Baseline::GreedyBinarySearch => greedy_binary_search(&input, &ctx),
                Baseline::SendEverything => send_everything(&input, &ctx),
            }
        };
        let (ca, cb, stats) = run_two_party_ctx(inst.seed, script(a), script(b));
        if ca != cb {
            return Outcome::failed("baseline parties disagree", stats);
        }
        Outcome::vertex(inst.graph(), ca, stats, inst.delta() + 1)
    }
}

/// The §6.4 streaming-to-two-party reduction over a W-streaming
/// algorithm.
#[derive(Debug, Clone, Copy)]
pub struct StreamingReduction {
    /// Which W-streaming algorithm drives the simulation.
    chunked: bool,
}

impl StreamingReduction {
    /// The reduction over the greedy `(2Δ−1)` W-streaming algorithm.
    pub fn greedy() -> Self {
        StreamingReduction { chunked: false }
    }

    /// The reduction over the chunked (√Δ̄-capacity) algorithm.
    pub fn chunked() -> Self {
        StreamingReduction { chunked: true }
    }
}

impl Protocol for StreamingReduction {
    fn name(&self) -> &str {
        if self.chunked {
            "streaming/chunked-w"
        } else {
            "streaming/greedy-w"
        }
    }

    fn describe(&self) -> &str {
        if self.chunked {
            "§6.4 reduction over chunked W-streaming: proper edge coloring, O(passes·state) bits"
        } else {
            "§6.4 reduction over greedy W-streaming: weaker-(2Δ−1) output, O(passes·state) bits"
        }
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let n = inst.n();
        let delta = inst.delta().max(1);
        let (output, stats) = if self.chunked {
            let sim = simulate_streaming_two_party(
                &inst.partition,
                move || ChunkedWStreaming::with_sqrt_delta_capacity(n, delta),
                inst.seed,
            );
            (sim.output, sim.stats)
        } else {
            let sim = simulate_streaming_two_party(
                &inst.partition,
                move || GreedyWStreaming::new(n, delta),
                inst.seed,
            );
            (sim.output, sim.stats)
        };
        match output.combined() {
            Ok(merged) => {
                // Greedy W-streaming promises the (2Δ−1) palette; the
                // chunked algorithm only promises a proper coloring.
                let budget = if self.chunked {
                    None
                } else {
                    Some(2 * delta - 1)
                };
                Outcome::edge(inst.graph(), merged, stats, budget)
            }
            Err(e) => Outcome::failed(format!("conflicting color reports on {e}"), stats),
        }
    }
}

fn merge_edge_outcome(
    inst: &Instance,
    alice: EdgeColoring,
    bob: EdgeColoring,
    stats: CommStats,
    budget: usize,
) -> Outcome {
    // Merge both parties into a coloring dense over the *whole*
    // graph's edge ids, so the validator pass takes its O(n+m)
    // array-indexed fast path.
    let mut merged = EdgeColoring::dense_for(inst.graph());
    for side in [&alice, &bob] {
        if let Err(e) = merged.merge(side) {
            return Outcome::failed(format!("parties both colored {e}"), stats);
        }
    }
    Outcome::edge(inst.graph(), merged, stats, Some(budget))
}

/// The string-keyed collection of every registered protocol.
#[derive(Clone)]
pub struct Registry {
    protocols: Vec<Arc<dyn Protocol>>,
}

impl Registry {
    /// Looks a protocol up by its registry key.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Protocol>> {
        self.protocols.iter().find(|p| p.name() == name).cloned()
    }

    /// All registry keys, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.protocols.iter().map(|p| p.name()).collect()
    }

    /// Iterates over the registered protocols.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Protocol>> {
        self.protocols.iter()
    }

    /// Number of registered protocols.
    pub fn len(&self) -> usize {
        self.protocols.len()
    }

    /// Whether the registry is empty (it never is).
    pub fn is_empty(&self) -> bool {
        self.protocols.is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

/// Every protocol in the workspace, keyed by name. See the
/// [module docs](self) for the key ↔ paper-theorem map.
pub fn registry() -> Registry {
    Registry {
        protocols: vec![
            Arc::new(VertexTheorem1::default()),
            Arc::new(EdgeTheorem2),
            Arc::new(EdgeTheorem3ZeroComm),
            Arc::new(EdgeLemma51Bounded),
            Arc::new(BaselineProtocol::new(Baseline::FlinMittal)),
            Arc::new(BaselineProtocol::new(Baseline::GreedyBinarySearch)),
            Arc::new(BaselineProtocol::new(Baseline::SendEverything)),
            Arc::new(StreamingReduction::greedy()),
            Arc::new(StreamingReduction::chunked()),
        ],
    }
}
