//! `bichrome-runner` — one API to configure, execute, repeat, and
//! report every coloring protocol in the workspace.
//!
//! The paper's protocols are all measured the same way (bits per
//! direction, rounds, validated output), so they all run through the
//! same three types:
//!
//! * [`Instance`] — a graph + adversarial edge partition + seed.
//! * [`Protocol`] — `name()` + `run(&Instance) -> Outcome`; the
//!   [`registry()`] enumerates every implementation by string key
//!   (`"vertex/theorem1"`, `"edge/theorem2"`, ... — see
//!   [`registry`](crate::registry()) docs for the theorem map).
//! * [`Campaign`] — grid-structured orchestration: sets of protocols
//!   × graph families × sizes × partitioners × seeds, executed as one
//!   flat parallel work queue into a [`CampaignReport`] with pivots,
//!   baseline deltas, and table / JSON / CSV output.
//! * [`TrialPlan`] — the single-cell special case (one protocol, one
//!   graph family), aggregating a serializable [`Report`].
//!
//! # Quickstart
//!
//! ```
//! use bichrome_runner::{registry, GraphSpec, TrialPlan};
//!
//! // Pick a protocol by key…
//! let proto = registry().get("vertex/theorem1").expect("registered");
//!
//! // …and run 8 seeded trials on near-regular graphs, in parallel.
//! let report = TrialPlan::new(proto)
//!     .graphs(GraphSpec::NearRegular { n: 80, d: 6 })
//!     .seeds(0..8)
//!     .parallel(true)
//!     .run();
//!
//! assert!(report.all_valid());
//! println!("{}", report.render_table());
//! let json = report.to_json();
//! assert!(json.contains("\"protocol\":\"vertex/theorem1\""));
//! ```
//!
//! Whole experiment grids — the shape of every table in the paper —
//! are one [`Campaign`]:
//!
//! ```
//! use bichrome_runner::{Campaign, GraphSpec, GroupBy};
//!
//! let report = Campaign::new()
//!     .protocol_keys(["vertex/theorem1", "baseline/flin-mittal"])
//!     .graphs([GraphSpec::NearRegular { n: 64, d: 6 }])
//!     .sizes([64, 128])
//!     .seeds(0..4)
//!     .baseline("baseline/flin-mittal")
//!     .run();
//! assert!(report.all_valid());
//! println!("{}", report.render_table());   // per-cell rows + deltas
//! let _csv = report.to_csv();              // machine-readable grid
//! ```
//!
//! Single runs use the same surface without a plan:
//!
//! ```
//! use bichrome_runner::{registry, Instance};
//! use bichrome_graph::{gen, partition::Partitioner};
//!
//! let g = gen::gnp(50, 0.1, 3);
//! let inst = Instance::new("demo", Partitioner::Alternating.split(&g), 7);
//! let out = registry().get("edge/theorem2").expect("registered").run(&inst);
//! assert!(out.verdict.is_valid());
//! println!("cost: {}", out.stats);
//! ```
//!
//! # Randomness and instance caching
//!
//! A trial's single `u64` seed fans out into independent graph /
//! partition / protocol-session streams through the tagged SplitMix64
//! derivation in [`seeds`] — the one place the whole derivation
//! scheme is defined and documented. Plans and campaigns enqueue lazy
//! instance *descriptors*; the shared executor resolves them on its
//! worker threads through a sharded concurrent cache
//! (`(spec, graph seed) → Arc<Graph>`,
//! `(spec, graph seed, partitioner) → Arc<EdgePartition>`), so a
//! P-protocol grid builds each distinct instance exactly once instead
//! of P times, and cache hits are bit-identical to fresh builds.
//! [`Campaign::run_with_stats`] exposes the dedup counters
//! (`graphs_built` vs `graphs_requested`) and the setup-vs-execute
//! worker-time split as [`ExecStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod campaign_file;
pub mod csv;
mod exec;
pub mod instance;
pub mod plan;
pub mod probes;
pub mod protocol;
pub mod registry;
mod scratch;
pub mod seeds;
pub mod table;
pub mod toml;

/// The deterministic fault plan a chaos campaign injects under every
/// trial, re-exported from its home in `bichrome_comm` (campaigns
/// carry it; trial leases ship it to remote workers).
pub use bichrome_comm::fault::FaultPlan;
/// The session-transport axis value, re-exported from its home in
/// `bichrome_comm` (campaigns carry it; trial descriptors ship it to
/// remote workers).
pub use bichrome_comm::transport::TransportKind;
/// The hand-written JSON codec, re-exported from its home in
/// [`bichrome_store`] (persistence is where the bytes live; the
/// runner serializes its reports and records through it).
pub use bichrome_store::json;
pub use campaign::{
    compute_trial, diff_reports, BaselineDelta, Campaign, CampaignCell, CampaignReport, GroupBy,
    PreparedRun,
};
pub use campaign_file::CampaignFile;
pub use exec::{CacheStats, ExecStats, InstanceCache};
pub use instance::{GraphSpec, Instance, ParseSpecError};
pub use plan::{Aggregate, Report, Summary, TrialPlan, TrialRecord};
pub use protocol::{Artifact, Outcome, Protocol, Verdict};
pub use registry::{registry, Registry};

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::gen;
    use bichrome_graph::partition::Partitioner;

    #[test]
    fn registry_has_all_protocols() {
        let reg = registry();
        assert!(reg.len() >= 7, "registry lists {} protocols", reg.len());
        for key in [
            "vertex/theorem1",
            "edge/theorem2",
            "edge/theorem3-zero-comm",
            "edge/lemma5.1-bounded",
            "baseline/flin-mittal",
            "baseline/greedy-binary-search",
            "baseline/send-everything",
            "streaming/greedy-w",
            "streaming/chunked-w",
        ] {
            let p = reg.get(key).unwrap_or_else(|| panic!("missing {key}"));
            assert_eq!(p.name(), key);
            assert!(!p.describe().is_empty(), "{key} has no description");
        }
        assert!(reg.get("no/such/protocol").is_none());
    }

    #[test]
    fn every_protocol_validates_on_a_common_instance() {
        let g = gen::gnm_max_degree(40, 100, 6, 1);
        let inst = Instance::new("smoke", Partitioner::Random(5).split(&g), 11);
        for proto in registry().iter() {
            let out = proto.run(&inst);
            assert!(
                out.verdict.is_valid(),
                "{} failed: {:?}",
                proto.name(),
                out.verdict
            );
        }
    }

    #[test]
    fn every_protocol_handles_empty_and_tiny_graphs() {
        for g in [gen::empty(5), gen::path(2)] {
            let inst = Instance::new("tiny", Partitioner::AllToBob.split(&g), 0);
            for proto in registry().iter() {
                let out = proto.run(&inst);
                assert!(
                    out.verdict.is_valid(),
                    "{} failed on {}: {:?}",
                    proto.name(),
                    inst.label,
                    out.verdict
                );
            }
        }
    }

    #[test]
    fn zero_comm_protocol_costs_zero_bits() {
        let g = gen::near_regular(30, 4, 2);
        let inst = Instance::new("zc", Partitioner::Alternating.split(&g), 3);
        let out = registry()
            .get("edge/theorem3-zero-comm")
            .expect("registered")
            .run(&inst);
        assert!(out.verdict.is_valid());
        assert_eq!(out.stats.total_bits(), 0);
        assert_eq!(out.stats.rounds, 0);
    }

    #[test]
    fn parallel_and_serial_plans_agree() {
        let reg = registry();
        let plan = |parallel: bool| {
            TrialPlan::new(reg.get("vertex/theorem1").expect("registered"))
                .graphs(GraphSpec::Gnp { n: 40, p: 0.12 })
                .seeds(0..6)
                .parallel(parallel)
                .run()
        };
        let par = plan(true);
        let ser = plan(false);
        assert_eq!(par, ser, "parallel execution must not change results");
        assert!(par.all_valid());
        assert_eq!(par.trials.len(), 6);
    }

    /// The acceptance check for the harness: a `TrialPlan` run (with
    /// rayon-parallel trials) reproduces, bit for bit and round for
    /// round, the numbers an e1-style hand-rolled loop produces from
    /// the same seeds.
    #[test]
    #[allow(deprecated)] // the hand-rolled side intentionally uses the old shim
    fn trial_plan_reproduces_hand_rolled_e1_numbers() {
        use bichrome_core::rct::RctConfig;
        use bichrome_core::vertex::solve_vertex_coloring;

        let (n, delta) = (96usize, 6usize);
        let seeds: Vec<u64> = (0..4).collect();

        // The historical e1 loop: bespoke generation, partitioning,
        // seeding, measurement.
        #[allow(deprecated)]
        let hand_rolled: Vec<(u64, u64)> = seeds
            .iter()
            .map(|&rep| {
                let g = gen::near_regular(n, delta, rep * 100 + delta as u64);
                let p = Partitioner::Random(rep).split(&g);
                let out = solve_vertex_coloring(&p, rep + 1, &RctConfig::default());
                (out.stats.total_bits(), out.stats.rounds)
            })
            .collect();

        // The same trials expressed as a TrialPlan with explicit
        // instances, executed in parallel.
        let instances = seeds.iter().map(|&rep| {
            let g = gen::near_regular(n, delta, rep * 100 + delta as u64);
            Instance::new("e1", Partitioner::Random(rep).split(&g), rep + 1)
        });
        let report = TrialPlan::new(registry().get("vertex/theorem1").expect("registered"))
            .instances(instances)
            .parallel(true)
            .run();

        let harness: Vec<(u64, u64)> = report
            .trials
            .iter()
            .map(|t| (t.total_bits(), t.rounds))
            .collect();
        assert_eq!(
            harness, hand_rolled,
            "same seeds must give same bits and rounds"
        );
        assert!(report.all_valid());
    }

    #[test]
    fn report_summary_and_json_are_consistent() {
        let report = TrialPlan::new(registry().get("baseline/send-everything").expect("reg"))
            .graphs(GraphSpec::Gnp { n: 30, p: 0.2 })
            .seeds(0..5)
            .run();
        assert_eq!(report.summary.trials, 5);
        assert!(report.all_valid());
        // send-everything is one round, always.
        assert_eq!(report.summary.rounds.max, 1.0);
        assert!(report.summary.total_bits.mean > 0.0);
        let json = report.to_json();
        let v = json::Value::parse(&json).expect("report JSON parses");
        let obj = v.as_object().expect("object");
        assert_eq!(obj["protocol"].as_str(), Some("baseline/send-everything"));
        let trials = match &obj["trials"] {
            json::Value::Array(a) => a,
            other => panic!("trials not an array: {other:?}"),
        };
        assert_eq!(trials.len(), 5);
        let table = report.render_table();
        assert!(table.contains("rounds"));
        assert!(table.contains("send-everything"));
    }

    #[test]
    fn invalid_instances_are_reported_not_panicked() {
        // Lemma 5.1 on a big-Δ graph still yields *some* outcome
        // object; the verdict tells the truth either way.
        let g = gen::complete(12);
        let inst = Instance::new("k12", Partitioner::Random(1).split(&g), 2);
        let out = registry()
            .get("edge/lemma5.1-bounded")
            .expect("registered")
            .run(&inst);
        match out.verdict {
            Verdict::Valid => {
                assert!(out.palette_budget.is_some());
            }
            Verdict::Invalid(msg) => assert!(!msg.is_empty()),
        }
    }
}
