//! Measurement probes: [`Protocol`] adapters for the workspace's
//! non-coloring experiments — `k-Slack-Int` sessions, the §2.3
//! learning reduction, the Section 6 lower-bound games, W-streaming
//! space audits, and `Random-Color-Trial` internals.
//!
//! Each probe runs one parameterized measurement per trial, bills any
//! communication through the usual [`CommStats`], reports its numbers
//! via [`Outcome::metrics`], and encodes its acceptance condition in
//! the verdict (e.g. "the found element is outside both sets", "the
//! win rate respects the Lemma 6.2 bound") — so grid experiments over
//! these quantities are ordinary [`crate::Campaign`]s and get the
//! same parallel executor, aggregation, and report formats as the
//! coloring protocols. Probes are parameterized (one instance per
//! sweep point), so they live here as constructors rather than in the
//! fixed-key [`crate::registry()`].

use crate::instance::Instance;
use crate::protocol::{Outcome, Protocol};
use bichrome_comm::session::run_two_party_ctx;
use bichrome_comm::CommStats;
use bichrome_core::input::PartyInput;
use bichrome_core::rct::{run_random_color_trial, RctConfig};
use bichrome_core::slack_int::{run_slack_int_session, run_slack_int_session_with_constant};
use bichrome_graph::coloring::VertexColoring;
use bichrome_lb::best_response::optimized_strategy;
use bichrome_lb::learning::run_learning_reduction;
use bichrome_lb::repetition::{guessing_success_rate, run_parallel_repetition};
use bichrome_lb::zec::{
    estimate_win_probability, exact_win_probability, strategy_suite, LabelingStrategy,
    RandomStrategy, ZEC_WIN_BOUND,
};
use bichrome_lb::zec_new::{estimate_zec_new_win, ColorOnly, HUB_POOL, ZEC_NEW_WIN_BOUND};
use bichrome_streaming::algorithms::{ChunkedWStreaming, GreedyWStreaming};
use bichrome_streaming::run_w_streaming;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Tolerance added to Monte-Carlo win-rate checks against the exact
/// game bounds.
const MC_TOLERANCE: f64 = 0.01;

/// Stream tag (see [`crate::seeds`]) for the learning probe's secret
/// string, salted by `n_bits` so distinct `(seed, n_bits)` sweep
/// points never share a secret stream (a raw `seed ^ n_bits` mix
/// collides, e.g. `5 ^ 1 == 4 ^ 0`).
const LEARNING_SECRET_TAG: u64 = 0x9A27_0010;

/// A `k-Slack-Int` session (Lemma A.2 / Lemma 3.1): universe `[m+1]`,
/// sets filling all but `k` of it, find a free element. Bits and
/// rounds land in the trial's `CommStats`; the verdict checks the
/// found element really is outside both sets. The input graph of the
/// instance is ignored — only its seed is used.
#[derive(Debug, Clone)]
pub struct SlackIntProbe {
    universe: usize,
    slack: usize,
    constant: Option<f64>,
    name: String,
}

impl SlackIntProbe {
    /// A probe at the paper's sampling constant.
    ///
    /// # Panics
    ///
    /// Panics if `slack` is zero or not smaller than `universe`.
    pub fn new(universe: usize, slack: usize) -> Self {
        assert!(
            slack > 0 && slack < universe,
            "slack must be in 1..universe"
        );
        SlackIntProbe {
            universe,
            slack,
            constant: None,
            name: format!("probe/slack-int(m={universe},k={slack})"),
        }
    }

    /// A probe sweeping Algorithm 3's sampling constant (the paper's
    /// value is 150) — the A2 ablation.
    ///
    /// # Panics
    ///
    /// Panics if `slack` is zero or not smaller than `universe`.
    pub fn with_constant(universe: usize, slack: usize, constant: f64) -> Self {
        let mut probe = SlackIntProbe::new(universe, slack);
        probe.constant = Some(constant);
        probe.name = format!("probe/slack-int(m={universe},k={slack},c={constant})");
        probe
    }

    /// The slack parameter `k`.
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// The analytical cost scale `log²((m+1)/k)` this probe's bits
    /// are compared against.
    pub fn predicted_bits_scale(&self) -> f64 {
        ((self.universe + 1) as f64 / self.slack as f64)
            .log2()
            .powi(2)
    }
}

impl Protocol for SlackIntProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        "Lemma A.2 probe: k-Slack-Int cost, expected O(log²((m+1)/k)) bits"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        // |X| + |Y| = m − k exactly: X takes the low half of the
        // occupied range, Y the high half.
        let occupied = (self.universe - self.slack) as u64;
        let x: Vec<u64> = (0..occupied / 2).collect();
        let y: Vec<u64> = (occupied / 2..occupied).collect();
        let (found, stats) = match self.constant {
            None => run_slack_int_session(self.universe, &x, &y, inst.seed),
            Some(c) => run_slack_int_session_with_constant(self.universe, &x, &y, inst.seed, c),
        };
        let outcome = if found >= occupied {
            Outcome::measured(stats)
        } else {
            Outcome::failed(
                format!("found element {found} is inside the occupied range 0..{occupied}"),
                stats,
            )
        };
        outcome.with_metric("predicted_bits_scale", self.predicted_bits_scale())
    }
}

/// The §2.3 learning reduction: Bob reconstructs Alice's `n`-bit
/// string from a `(Δ+1)`-coloring of the C4-gadget graph. The secret
/// string is drawn from the trial seed; the verdict checks exact
/// recovery; the protocol bits land in `CommStats` (Alice → Bob, the
/// direction the information flows).
#[derive(Debug, Clone)]
pub struct LearningProbe {
    n_bits: usize,
    name: String,
}

impl LearningProbe {
    /// A probe learning `n_bits`-bit strings.
    pub fn new(n_bits: usize) -> Self {
        LearningProbe {
            n_bits,
            name: format!("probe/learning(n={n_bits})"),
        }
    }
}

/// Alice's secret string for one learning-probe sweep point, drawn
/// from the [`crate::seeds::salted`] stream (tag + `n_bits` salt).
fn learning_secret(seed: u64, n_bits: usize) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(crate::seeds::salted(
        seed,
        LEARNING_SECRET_TAG,
        n_bits as u64,
    ));
    (0..n_bits).map(|_| rng.gen_bool(0.5)).collect()
}

impl Protocol for LearningProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        "§2.3 probe: recover Alice's n-bit string from a (Δ+1)-coloring — Ω(n) bits"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let secret = learning_secret(inst.seed, self.n_bits);
        let (recovered, comm) = run_learning_reduction(&secret, inst.seed);
        let stats = CommStats {
            bits_alice_to_bob: comm,
            rounds: 1,
            ..CommStats::default()
        };
        let outcome = if recovered == secret {
            Outcome::measured(stats)
        } else {
            Outcome::failed("Bob failed to recover Alice's string", stats)
        };
        outcome
            .with_metric("gadget_vertices", (4 * self.n_bits) as f64)
            .with_metric(
                "bits_per_learned_bit",
                comm as f64 / self.n_bits.max(1) as f64,
            )
    }
}

/// One ZEC-game strategy (Lemma 6.2) as a probe: `win_rate` is exact
/// for deterministic strategies (441 inputs) and Monte-Carlo seeded
/// by the trial otherwise; the verdict checks it respects the
/// `11024/11025` bound.
#[derive(Debug, Clone)]
pub struct ZecGameProbe {
    index: usize,
    trials: usize,
    name: String,
}

impl ZecGameProbe {
    /// One probe per strategy in the standard suite; `trials` bounds
    /// the Monte-Carlo work of the randomized members.
    pub fn suite(trials: usize) -> Vec<Arc<dyn Protocol>> {
        strategy_suite()
            .iter()
            .enumerate()
            .map(|(index, s)| {
                Arc::new(ZecGameProbe {
                    index,
                    trials,
                    name: format!("zec/{}", s.name()),
                }) as Arc<dyn Protocol>
            })
            .collect()
    }
}

impl Protocol for ZecGameProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        "Lemma 6.2 probe: ZEC-game win rate vs the 11024/11025 bound"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let suite = strategy_suite();
        let strategy = &suite[self.index];
        let (exact, rate) = if strategy.is_deterministic() {
            (true, exact_win_probability(strategy.as_ref()))
        } else {
            (
                false,
                estimate_win_probability(strategy.as_ref(), self.trials, inst.seed),
            )
        };
        let tolerance = if exact { 0.0 } else { MC_TOLERANCE };
        let outcome = if rate <= ZEC_WIN_BOUND + tolerance {
            Outcome::measured(CommStats::default())
        } else {
            Outcome::failed(
                format!("win rate {rate:.6} exceeds the Lemma 6.2 bound {ZEC_WIN_BOUND:.6}"),
                CommStats::default(),
            )
        };
        outcome
            .with_metric("win_rate", rate)
            .with_metric("exact", if exact { 1.0 } else { 0.0 })
    }
}

/// The strongest deterministic ZEC play we can construct: multi-start
/// best-response dynamics, evaluated exactly. Its win rate must still
/// sit below the Lemma 6.2 bound.
#[derive(Debug, Clone)]
pub struct BestResponseProbe {
    starts: u64,
    iterations: usize,
}

impl BestResponseProbe {
    /// Best-response dynamics from `starts` random tables, `iterations`
    /// improvement rounds each.
    pub fn new(starts: u64, iterations: usize) -> Self {
        BestResponseProbe { starts, iterations }
    }
}

impl Protocol for BestResponseProbe {
    fn name(&self) -> &str {
        "zec/best-response-optimum"
    }

    fn describe(&self) -> &str {
        "Lemma 6.2 probe: exact win rate of optimized deterministic ZEC play"
    }

    fn run(&self, _inst: &Instance) -> Outcome {
        let (_, rate) = optimized_strategy(self.starts, self.iterations);
        let outcome = if rate <= ZEC_WIN_BOUND {
            Outcome::measured(CommStats::default())
        } else {
            Outcome::failed(
                format!("optimized win rate {rate:.6} exceeds the bound {ZEC_WIN_BOUND:.6}"),
                CommStats::default(),
            )
        };
        outcome
            .with_metric("win_rate", rate)
            .with_metric("exact", 1.0)
    }
}

/// Parallel repetition (Lemma 6.4): the empirical probability of
/// winning all `instances` independent ZEC games with the random
/// strategy, against the `v^n` prediction.
#[derive(Debug, Clone)]
pub struct RepetitionProbe {
    instances: usize,
    trials: usize,
    name: String,
}

impl RepetitionProbe {
    /// A probe playing `instances` parallel games per trial.
    pub fn new(instances: usize, trials: usize) -> Self {
        RepetitionProbe {
            instances,
            trials,
            name: format!("zec/repetition(n={instances})"),
        }
    }
}

impl Protocol for RepetitionProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        "Lemma 6.4 probe: win-all rate of n parallel ZEC instances vs v^n"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let out = run_parallel_repetition(&RandomStrategy, self.instances, self.trials, inst.seed);
        Outcome::measured(CommStats::default())
            .with_metric("win_all", out.win_all_rate())
            .with_metric("predicted", out.predicted())
            .with_metric("per_instance", out.per_instance_rate)
    }
}

/// Transcript guessing (Lemma 6.1): the rate at which both parties
/// guess the same `c`-bit pattern, against the `4^{−c}` prediction.
#[derive(Debug, Clone)]
pub struct GuessingProbe {
    pattern_bits: u32,
    trials: usize,
    name: String,
}

impl GuessingProbe {
    /// A probe guessing `pattern_bits`-bit transcripts.
    pub fn new(pattern_bits: u32, trials: usize) -> Self {
        GuessingProbe {
            pattern_bits,
            trials,
            name: format!("zec/guessing(c={pattern_bits})"),
        }
    }
}

impl Protocol for GuessingProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn describe(&self) -> &str {
        "Lemma 6.1 probe: both-guess-the-transcript rate vs 4^-c"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let rate = guessing_success_rate(self.pattern_bits, self.trials, inst.seed);
        Outcome::measured(CommStats::default())
            .with_metric("success", rate)
            .with_metric("predicted", 0.25f64.powi(self.pattern_bits as i32))
    }
}

/// The §6.4 ZEC-NEW game with the shifted-labeling strategy, against
/// the `33074/33075` bound.
#[derive(Debug, Clone)]
pub struct ZecNewProbe {
    trials: usize,
}

impl ZecNewProbe {
    /// A Monte-Carlo probe with `trials` plays per trial seed.
    pub fn new(trials: usize) -> Self {
        ZecNewProbe { trials }
    }
}

impl Protocol for ZecNewProbe {
    fn name(&self) -> &str {
        "zec-new/shifted-labeling"
    }

    fn describe(&self) -> &str {
        "§6.4 probe: ZEC-NEW win rate vs the 33074/33075 bound"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let rate = estimate_zec_new_win(
            &ColorOnly(LabelingStrategy::shifted()),
            HUB_POOL,
            self.trials,
            inst.seed,
        );
        let outcome = if rate <= ZEC_NEW_WIN_BOUND + MC_TOLERANCE {
            Outcome::measured(CommStats::default())
        } else {
            Outcome::failed(
                format!("win rate {rate:.6} exceeds the ZEC-NEW bound {ZEC_NEW_WIN_BOUND:.6}"),
                CommStats::default(),
            )
        };
        outcome
            .with_metric("win_rate", rate)
            .with_metric("hub_pool", HUB_POOL as f64)
    }
}

/// A W-streaming edge-coloring pass over the instance graph (§6.4 /
/// Corollary 1.2): the artifact is the streamed coloring (validated
/// as usual), `state_bits` metrics record the space the algorithm
/// actually used. No two-party communication is involved — contrast
/// with the `streaming/*` registry reductions, which *simulate* these
/// algorithms across two parties and bill `passes × state` bits.
#[derive(Debug, Clone, Copy)]
pub struct WStreamingSpaceProbe {
    chunked: bool,
}

impl WStreamingSpaceProbe {
    /// The greedy `(2Δ−1)`-color algorithm (Θ(nΔ) state).
    pub fn greedy() -> Self {
        WStreamingSpaceProbe { chunked: false }
    }

    /// The chunked `Õ(n√Δ)`-state algorithm (more colors).
    pub fn chunked() -> Self {
        WStreamingSpaceProbe { chunked: true }
    }
}

impl Protocol for WStreamingSpaceProbe {
    fn name(&self) -> &str {
        if self.chunked {
            "probe/w-stream-chunked"
        } else {
            "probe/w-stream-greedy"
        }
    }

    fn describe(&self) -> &str {
        if self.chunked {
            "§6.4 probe: chunked W-streaming pass — Õ(n√Δ) state, ω(Δ) colors"
        } else {
            "§6.4 probe: greedy W-streaming pass — (2Δ−1) colors, Θ(nΔ) state"
        }
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let g = inst.graph();
        let n = g.num_vertices();
        let d = g.max_degree().max(1);
        let (coloring, space, budget) = if self.chunked {
            let mut alg = ChunkedWStreaming::with_sqrt_delta_capacity(n, d);
            let (c, s) = run_w_streaming(&mut alg, g.edges());
            (c, s, None)
        } else {
            let mut alg = GreedyWStreaming::new(n, d);
            let (c, s) = run_w_streaming(&mut alg, g.edges());
            (c, s, Some(2 * d - 1))
        };
        Outcome::edge(g, coloring, CommStats::default(), budget)
            .with_metric("state_bits", space.max_state_bits as f64)
            .with_metric(
                "state_bits_per_vertex",
                space.max_state_bits as f64 / n.max(1) as f64,
            )
    }
}

/// `Random-Color-Trial` internals (Lemmas 4.3–4.5, 4.13): runs just
/// the RCT stage two-party and reports the active-set trajectory —
/// `active_iter_NN` metrics (1-based iteration index), the leftover
/// count, and iterations executed. Every trial emits all
/// [`MAX_ITER_METRICS`] keys, zero-padded past its own termination,
/// so cross-seed aggregation counts finished trials as 0 active
/// vertices instead of silently conditioning the mean on survivors.
/// The verdict checks the two parties' public partial colorings
/// agree.
#[derive(Debug, Clone, Default)]
pub struct RctDecayProbe {
    /// RCT tuning (`None` iterations = the paper's budget).
    pub config: RctConfig,
}

/// Cap on per-iteration metrics emitted by [`RctDecayProbe`] (the
/// decay is geometric; nothing interesting survives this long).
pub const MAX_ITER_METRICS: usize = 24;

/// The 1-vertex placeholder graph axis for graph-free probes (the
/// slack-int, learning, and game probes only read the instance seed):
/// `Campaign::new().protocols(...).graphs([unit_graph()])`.
pub fn unit_graph() -> crate::instance::GraphSpec {
    crate::instance::GraphSpec::Empty { n: 1 }
}

impl Protocol for RctDecayProbe {
    fn name(&self) -> &str {
        "probe/rct-decay"
    }

    fn describe(&self) -> &str {
        "Lemma 4.1 probe: Random-Color-Trial active-set decay and leftover size"
    }

    fn run(&self, inst: &Instance) -> Outcome {
        let n = inst.n();
        let a = PartyInput::alice(&inst.partition);
        let b = PartyInput::bob(&inst.partition);
        let (cfg_a, cfg_b) = (self.config, self.config);
        let party = |input: PartyInput, cfg: RctConfig| {
            move |ctx: bichrome_comm::session::PartyCtx| {
                let mut coloring = VertexColoring::new(n);
                let report = run_random_color_trial(&input, &ctx, &mut coloring, &cfg);
                (report, coloring)
            }
        };
        let ((rep_a, ca), (_rep_b, cb), stats) =
            run_two_party_ctx(inst.seed, party(a, cfg_a), party(b, cfg_b));
        let mut outcome = if ca == cb {
            Outcome::measured(stats)
        } else {
            Outcome::failed("parties disagree on the partial RCT coloring", stats)
        };
        outcome = outcome
            .with_metric("remaining", rep_a.remaining as f64)
            .with_metric("iterations_run", rep_a.iterations_run as f64)
            .with_metric("colored", ca.num_colored() as f64);
        for i in 0..MAX_ITER_METRICS {
            let active = rep_a.active_per_iteration.get(i).copied().unwrap_or(0);
            outcome = outcome.with_metric(format!("active_iter_{:02}", i + 1), active as f64);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::instance::GraphSpec;

    /// The regression the tagged mix fixes: `seed ^ n_bits` aliases
    /// sweep points — e.g. `5 ^ 33 == 4 ^ 32 == 36` — so those two
    /// points drew the *same* secret stream, and the shared prefix of
    /// their secrets was identical. Under the salted derivation the
    /// prefixes must disagree.
    #[test]
    fn xor_colliding_sweep_points_draw_distinct_secrets() {
        for ((seed_a, bits_a), (seed_b, bits_b)) in
            [((5u64, 33usize), (4u64, 32usize)), ((7, 33), (6, 32))]
        {
            assert_eq!(
                seed_a ^ bits_a as u64,
                seed_b ^ bits_b as u64,
                "test pairs must collide under the old xor mix"
            );
            let shared = bits_a.min(bits_b);
            let sa = learning_secret(seed_a, bits_a);
            let sb = learning_secret(seed_b, bits_b);
            assert_ne!(
                sa[..shared],
                sb[..shared],
                "({seed_a},{bits_a}) vs ({seed_b},{bits_b}): secrets must not share a stream"
            );
        }
    }

    #[test]
    fn slack_int_probe_validates_and_scales() {
        let report = Campaign::new()
            .protocols([
                Arc::new(SlackIntProbe::new(256, 255)) as Arc<dyn Protocol>,
                Arc::new(SlackIntProbe::new(256, 1)) as Arc<dyn Protocol>,
            ])
            .graphs([unit_graph()])
            .seeds(0..5)
            .run();
        assert!(report.all_valid(), "{}", report.render_table());
        // Loose instances (k ≈ m) cost fewer bits than tight (k = 1).
        let loose = report.cells[0].summary().total_bits.mean;
        let tight = report.cells[1].summary().total_bits.mean;
        assert!(loose < tight, "loose {loose} should undercut tight {tight}");
    }

    #[test]
    fn slack_int_probe_reports_a_failed_find_as_invalid() {
        // Sanity: verdicts come from the acceptance check, so a valid
        // run must report the analytic scale metric too.
        let probe = SlackIntProbe::with_constant(64, 8, 150.0);
        let g = unit_graph().build(0);
        let inst = Instance::new(
            "unit",
            bichrome_graph::partition::Partitioner::AllToBob.split(&g),
            3,
        );
        let out = probe.run(&inst);
        assert!(out.verdict.is_valid());
        assert!(out.metrics["predicted_bits_scale"] > 0.0);
    }

    #[test]
    fn learning_probe_recovers_and_bills_linear_bits() {
        let report = Campaign::new()
            .protocols([Arc::new(LearningProbe::new(16)) as Arc<dyn Protocol>])
            .graphs([unit_graph()])
            .seeds(0..3)
            .run();
        assert!(report.all_valid());
        let s = report.cells[0].summary();
        assert!(s.total_bits.mean >= 16.0, "must pay at least n bits");
        assert!(s.metric("bits_per_learned_bit").mean >= 1.0);
    }

    #[test]
    fn zec_probes_respect_the_lemma_bounds() {
        let mut protos = ZecGameProbe::suite(20_000);
        protos.push(Arc::new(ZecNewProbe::new(20_000)));
        protos.push(Arc::new(RepetitionProbe::new(4, 5_000)));
        protos.push(Arc::new(GuessingProbe::new(2, 20_000)));
        let report = Campaign::new()
            .protocols(protos)
            .graphs([unit_graph()])
            .seeds([11])
            .run();
        assert!(report.all_valid(), "{}", report.render_table());
        for cell in &report.cells {
            if cell.protocol.starts_with("zec/") && cell.summary().metrics.contains_key("win_rate")
            {
                let rate = cell.summary().metric("win_rate").mean;
                assert!(
                    rate > 0.5,
                    "{}: implausibly low win rate {rate}",
                    cell.protocol
                );
            }
        }
    }

    #[test]
    fn w_streaming_probe_colors_the_instance_graph() {
        let report = Campaign::new()
            .protocols([
                Arc::new(WStreamingSpaceProbe::greedy()) as Arc<dyn Protocol>,
                Arc::new(WStreamingSpaceProbe::chunked()) as Arc<dyn Protocol>,
            ])
            .graphs([GraphSpec::GnmMaxDegree {
                n: 400,
                m: 4300,
                dmax: 32,
            }])
            .seeds(0..2)
            .run();
        assert!(report.all_valid(), "{}", report.render_table());
        let greedy = report.cells[0].summary().metric("state_bits").mean;
        let chunked = report.cells[1].summary().metric("state_bits").mean;
        assert!(
            chunked < greedy,
            "chunked state {chunked} must undercut greedy {greedy}"
        );
    }

    #[test]
    fn rct_decay_probe_reports_a_shrinking_active_set() {
        let probe = RctDecayProbe::default();
        let g = GraphSpec::NearRegular { n: 256, d: 8 }.build(5);
        let inst = Instance::new(
            "rct",
            bichrome_graph::partition::Partitioner::Random(2).split(&g),
            7,
        );
        let out = probe.run(&inst);
        assert!(out.verdict.is_valid());
        assert_eq!(out.metrics["active_iter_01"], 256.0);
        // Every trial emits the full zero-padded trajectory so
        // cross-seed means count finished trials as 0, not as
        // missing.
        let trajectory: Vec<f64> = (1..=MAX_ITER_METRICS)
            .map(|i| out.metrics[&format!("active_iter_{i:02}")])
            .collect();
        assert_eq!(trajectory.len(), MAX_ITER_METRICS);
        assert!(
            trajectory.last() < trajectory.first(),
            "active set must shrink: {trajectory:?}"
        );
        let iterations_run = out.metrics["iterations_run"] as usize;
        for (i, &v) in trajectory.iter().enumerate() {
            if i >= iterations_run {
                assert_eq!(v, 0.0, "iteration {} past termination must pad to 0", i + 1);
            }
        }
    }
}
