//! The trial-seed derivation scheme — **the** one place that defines
//! how a trial's single `u64` seed fans out into the independent
//! random streams a trial consumes.
//!
//! # Why derivation instead of reuse
//!
//! A trial has several independent sources of randomness: the graph
//! generator, the default random edge partitioner, the two-party
//! protocol session (public coin, private coins), and probe-local
//! draws such as the learning probe's secret string. All of them
//! expand a `u64` seed through the *same* RNG construction
//! (`StdRng::seed_from_u64`), so feeding two of them the same raw
//! value makes their "independent" streams bit-identical — e.g. the
//! graph's coin flips would be correlated with the protocol session's
//! public coin, quietly biasing exactly the statistics the experiments
//! report.
//!
//! # The scheme
//!
//! Every sub-stream is derived from the trial seed through a tagged
//! SplitMix64 mix (the [`PublicCoin::subcoin`] construction):
//!
//! ```text
//! trial seed s ──┬── graph_seed(s)     = subcoin(s, GRAPH_TAG)      → GraphSpec::build
//!                ├── partition_seed(s) = subcoin(s, PARTITION_TAG)  → Partitioner::Random
//!                └── protocol_seed(s)  = subcoin(s, PROTOCOL_TAG)   → protocol session
//! ```
//!
//! Probe-local streams add a salt under their own tag via
//! [`salted`], so e.g. the learning probe's secret for `n_bits = b`
//! never collides with another `(seed, b)` combination the way the
//! old `seed ^ b` mix did (`5 ^ 1 == 4 ^ 0`).
//!
//! Both the [`crate::Campaign`] and [`crate::TrialPlan`] layers (and
//! [`crate::Instance::from_spec`]) derive through these functions, so
//! a campaign cell remains bit-identical to the single-cell trial
//! plan it replaced, and cached instance materialization in the
//! executor reproduces exactly what an eager build would.
//!
//! Explicitly constructed instances ([`crate::Instance::new`]) are
//! the escape hatch: they take the protocol-session seed verbatim and
//! perform no derivation.

use bichrome_comm::PublicCoin;

/// Stream tag for the graph-generator seed.
const GRAPH_TAG: u64 = 0x9A27_0002;

/// Stream tag for the default per-seed random edge partitioner.
///
/// (Kept at the value the pre-derivation `mix_partition_seed` used,
/// so the partition stream is stable across the de-aliasing change.)
const PARTITION_TAG: u64 = 0x9A27_0001;

/// Stream tag for the protocol-session seed.
const PROTOCOL_TAG: u64 = 0x9A27_0003;

/// Derives one tagged sub-seed from a trial seed.
///
/// Distinct tags give independent-looking streams; the same
/// `(seed, tag)` always gives the same value. This is the
/// [`PublicCoin::subcoin`] SplitMix64 mix.
pub fn derive(trial_seed: u64, tag: u64) -> u64 {
    PublicCoin::new(trial_seed).subcoin(tag).seed()
}

/// Derives a salted sub-seed: one tagged stream further split by a
/// per-use salt (e.g. a sweep parameter). Unlike a raw
/// `seed ^ salt` mix, distinct `(seed, salt)` pairs do not collide.
pub fn salted(trial_seed: u64, tag: u64, salt: u64) -> u64 {
    PublicCoin::new(trial_seed)
        .subcoin(tag)
        .subcoin(salt)
        .seed()
}

/// The graph-generator seed of a trial.
pub fn graph_seed(trial_seed: u64) -> u64 {
    derive(trial_seed, GRAPH_TAG)
}

/// The seed of a trial's default random edge partitioner.
pub fn partition_seed(trial_seed: u64) -> u64 {
    derive(trial_seed, PARTITION_TAG)
}

/// The protocol-session seed of a trial (public coin, private coins,
/// session plumbing).
pub fn protocol_seed(trial_seed: u64) -> u64 {
    derive(trial_seed, PROTOCOL_TAG)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_streams_are_pairwise_distinct() {
        for seed in (0..200).chain([u64::MAX, u64::MAX / 2]) {
            let g = graph_seed(seed);
            let p = partition_seed(seed);
            let s = protocol_seed(seed);
            assert_ne!(g, p, "graph vs partition stream at {seed}");
            assert_ne!(g, s, "graph vs protocol stream at {seed}");
            assert_ne!(p, s, "partition vs protocol stream at {seed}");
            // None of them alias the raw trial seed either.
            assert_ne!(g, seed);
            assert_ne!(p, seed);
            assert_ne!(s, seed);
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(graph_seed(42), graph_seed(42));
        assert_eq!(protocol_seed(42), protocol_seed(42));
        assert_ne!(graph_seed(42), graph_seed(43));
    }

    #[test]
    fn salted_streams_do_not_collide_like_xor() {
        // The bug this replaces: `seed ^ salt` maps (5,1) and (4,0)
        // to the same stream. The tagged mix must not.
        const TAG: u64 = 0xABCD;
        assert_ne!(salted(5, TAG, 1), salted(4, TAG, 0));
        assert_ne!(salted(1, TAG, 0), salted(0, TAG, 1));
        // And a small grid is collision-free.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            for salt in 0..32 {
                assert!(
                    seen.insert(salted(seed, TAG, salt)),
                    "collision at ({seed},{salt})"
                );
            }
        }
    }
}
