//! The unified protocol interface: every coloring protocol in the
//! workspace — vertex, edge, baseline, streaming-reduction — runs
//! through [`Protocol::run`] and returns the same [`Outcome`] shape,
//! so harness code (trial plans, benches, services) never needs
//! per-protocol plumbing.

use crate::instance::Instance;
use crate::scratch::with_scratch;
use bichrome_comm::CommStats;
use bichrome_graph::coloring::{
    validate_vertex_coloring_with_palette, EdgeColoring, VertexColoring,
};
use bichrome_graph::Graph;
use std::collections::BTreeMap;

/// The coloring a protocol produced, in whichever shape the problem
/// calls for.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A full vertex coloring (identical on both sides).
    Vertex(VertexColoring),
    /// A merged edge coloring covering the whole graph.
    Edge(EdgeColoring),
    /// No artifact (the protocol failed before producing one).
    None,
}

impl Artifact {
    /// Number of distinct colors in the artifact (0 when empty).
    pub fn colors_used(&self) -> usize {
        match self {
            Artifact::Vertex(c) => c.num_distinct_colors(),
            Artifact::Edge(c) => c.num_distinct_colors(),
            Artifact::None => 0,
        }
    }
}

/// Ground-truth judgement of an outcome, produced by the
/// `bichrome-graph` validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The artifact passed validation.
    Valid,
    /// The artifact failed validation (message from the validator) or
    /// the protocol could not run on this instance.
    Invalid(String),
}

impl Verdict {
    /// Whether the outcome validated.
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// The uniform result of one protocol execution: the coloring, the
/// exact communication bill, and the validator's verdict.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// What the protocol produced.
    pub artifact: Artifact,
    /// Bits per direction, rounds, and per-phase breakdown.
    pub stats: CommStats,
    /// Validation result (checked against the *whole* graph).
    pub verdict: Verdict,
    /// The palette budget the artifact was validated against, if the
    /// protocol has one (`Δ+1`, `2Δ−1`, `2Δ`, ...).
    pub palette_budget: Option<usize>,
    /// Protocol-specific side measurements (e.g. `rct_remaining`,
    /// `state_bits`, `win_rate`), aggregated per key by trial plans
    /// and campaigns. Empty for protocols with nothing extra to say.
    pub metrics: BTreeMap<String, f64>,
}

impl Outcome {
    /// A validated vertex-coloring outcome.
    pub fn vertex(g: &Graph, coloring: VertexColoring, stats: CommStats, budget: usize) -> Self {
        let verdict = {
            let _validate_span = bichrome_obs::span("trial/validate");
            match validate_vertex_coloring_with_palette(g, &coloring, budget) {
                Ok(()) => Verdict::Valid,
                Err(e) => Verdict::Invalid(e.to_string()),
            }
        };
        Outcome {
            artifact: Artifact::Vertex(coloring),
            stats,
            verdict,
            palette_budget: Some(budget),
            metrics: BTreeMap::new(),
        }
    }

    /// A validated edge-coloring outcome; `budget = None` checks
    /// properness only.
    ///
    /// Validation runs through the per-worker scratch
    /// ([`ColorMarks`](bichrome_graph::coloring::ColorMarks) behind a
    /// thread-local), so repeated trials on one worker validate with
    /// zero per-trial allocation.
    pub fn edge(
        g: &Graph,
        coloring: EdgeColoring,
        stats: CommStats,
        budget: Option<usize>,
    ) -> Self {
        let result = {
            let _validate_span = bichrome_obs::span("trial/validate");
            with_scratch(|s| match budget {
                Some(b) => s.marks.check_edge_coloring_with_palette(g, &coloring, b),
                None => s.marks.check_edge_coloring(g, &coloring),
            })
        };
        let verdict = match result {
            Ok(()) => Verdict::Valid,
            Err(e) => Verdict::Invalid(e.to_string()),
        };
        Outcome {
            artifact: Artifact::Edge(coloring),
            stats,
            verdict,
            palette_budget: budget,
            metrics: BTreeMap::new(),
        }
    }

    /// A valid outcome with no coloring artifact — for measurement
    /// protocols (probes) whose acceptance condition is checked by the
    /// caller before construction.
    pub fn measured(stats: CommStats) -> Self {
        Outcome {
            artifact: Artifact::None,
            stats,
            verdict: Verdict::Valid,
            palette_budget: None,
            metrics: BTreeMap::new(),
        }
    }

    /// An outcome for a run that failed before producing an artifact
    /// (or whose acceptance check failed).
    pub fn failed(reason: impl Into<String>, stats: CommStats) -> Self {
        Outcome {
            artifact: Artifact::None,
            stats,
            verdict: Verdict::Invalid(reason.into()),
            palette_budget: None,
            metrics: BTreeMap::new(),
        }
    }

    /// Attaches one named side measurement (builder-style).
    pub fn with_metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(key.into(), value);
        self
    }
}

/// A two-party coloring protocol, uniformly configurable and
/// executable.
///
/// Implementations are stateless aside from configuration, and
/// `Send + Sync` so trial plans can run them from worker threads.
pub trait Protocol: Send + Sync {
    /// The registry key, e.g. `"vertex/theorem1"`.
    fn name(&self) -> &str;

    /// A one-line human description (paper reference and guarantee).
    fn describe(&self) -> &str {
        ""
    }

    /// Executes the protocol on `inst` and reports the outcome.
    fn run(&self, inst: &Instance) -> Outcome;
}
