//! Declarative campaign files: a `[campaign]` TOML table parsed onto
//! the runner's existing `FromStr` surfaces (`GraphSpec`,
//! `Partitioner`, registry keys) and assembled into a
//! [`Campaign`].
//!
//! ```toml
//! [campaign]
//! protocols    = ["vertex/theorem1", "baseline/send-everything"]
//! graphs       = ["near-regular(n=64,d=6)", "gnp(n=64,p=0.1)"]
//! sizes        = [64, 128]           # optional: rescale every family
//! partitioners = ["alternating"]     # optional: default = per-seed random
//! seeds        = "0..8"              # or an explicit list: [0, 1, 2]
//! baseline     = "baseline/send-everything"   # optional
//! store        = "results/store"     # optional: persistent result store
//! parallel     = true                # optional: default true
//! transport    = "inproc"            # optional: inproc | pipe | tcp
//! fault        = "sever@3,delay:1"   # optional: deterministic link faults
//! ```

use crate::registry::registry;
use crate::toml::{self, TomlValue};
use crate::{Campaign, GraphSpec};
use bichrome_comm::fault::FaultPlan;
use bichrome_comm::transport::TransportKind;
use bichrome_graph::partition::Partitioner;

/// A parsed, validated campaign declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignFile {
    /// Registry keys on the protocol axis.
    pub protocols: Vec<String>,
    /// Graph-spec axis.
    pub graphs: Vec<GraphSpec>,
    /// Size axis (empty = each spec at its own size).
    pub sizes: Vec<usize>,
    /// Partitioner axis (empty = the per-seed random default).
    pub partitioners: Vec<Partitioner>,
    /// The trial seeds.
    pub seeds: Vec<u64>,
    /// Baseline protocol label, if declared.
    pub baseline: Option<String>,
    /// Persistent store directory, if declared.
    pub store: Option<String>,
    /// Whether to run the queue in parallel (default true).
    pub parallel: bool,
    /// The wire every trial's two-party session runs over (default
    /// in-process; the recorded bits and rounds are the same either
    /// way).
    pub transport: TransportKind,
    /// Deterministic link faults injected under every trial (default
    /// none; reports stay byte-identical because faults are recovered
    /// below the meter).
    pub fault: FaultPlan,
}

impl CampaignFile {
    /// Parses and validates a campaign file: every graph spec,
    /// partitioner, and protocol key is checked here, so a typo'd
    /// declaration errors up front instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn parse(text: &str) -> Result<CampaignFile, String> {
        let doc = toml::parse(text)?;
        let table = doc
            .get("campaign")
            .ok_or("campaign file has no [campaign] section")?;
        for key in table.keys() {
            if !matches!(
                key.as_str(),
                "protocols"
                    | "graphs"
                    | "sizes"
                    | "partitioners"
                    | "seeds"
                    | "baseline"
                    | "store"
                    | "parallel"
                    | "transport"
                    | "fault"
            ) {
                return Err(format!("[campaign] has unknown key {key:?}"));
            }
        }
        let str_list = |key: &str| -> Result<Vec<String>, String> {
            match table.get(key) {
                None => Ok(Vec::new()),
                Some(TomlValue::Array(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or(format!("{key:?} must be an array of strings"))
                    })
                    .collect(),
                Some(_) => Err(format!("{key:?} must be an array of strings")),
            }
        };

        let reg = registry();
        let protocols = str_list("protocols")?;
        if protocols.is_empty() {
            return Err("campaign declares no protocols".to_string());
        }
        for key in &protocols {
            if reg.get(key).is_none() {
                return Err(format!(
                    "unknown protocol key {key:?}; registry has: {}",
                    reg.names().join(", ")
                ));
            }
        }

        let graphs = str_list("graphs")?
            .iter()
            .map(|s| {
                s.parse::<GraphSpec>()
                    .map_err(|e| format!("graph {s:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if graphs.is_empty() {
            return Err("campaign declares no graphs".to_string());
        }

        let partitioners = str_list("partitioners")?
            .iter()
            .map(|s| {
                s.parse::<Partitioner>()
                    .map_err(|e| format!("partitioner {s:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let sizes = match table.get("sizes") {
            None => Vec::new(),
            Some(TomlValue::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_int()
                        .map(|x| x as usize)
                        .ok_or("\"sizes\" must be an array of integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("\"sizes\" must be an array of integers".to_string()),
        };

        let seeds = match table.get("seeds") {
            None => return Err("campaign declares no seeds".to_string()),
            Some(TomlValue::Str(range)) => parse_seed_range(range)?,
            Some(TomlValue::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_int()
                        .ok_or("\"seeds\" list must contain integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => {
                return Err(
                    "\"seeds\" must be a \"start..end\" string or an integer list".to_string(),
                )
            }
        };
        if seeds.is_empty() {
            return Err("campaign declares an empty seed set".to_string());
        }

        let opt_str = |key: &str| -> Result<Option<String>, String> {
            match table.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or(format!("{key:?} must be a string")),
            }
        };
        let baseline = opt_str("baseline")?;
        if let Some(b) = &baseline {
            if !protocols.contains(b) {
                return Err(format!(
                    "baseline {b:?} is not on the protocol axis {protocols:?}"
                ));
            }
        }

        let parallel = match table.get("parallel") {
            None => true,
            Some(TomlValue::Bool(b)) => *b,
            Some(_) => return Err("\"parallel\" must be a bool".to_string()),
        };

        let transport = match opt_str("transport")? {
            None => TransportKind::default(),
            Some(s) => s
                .parse::<TransportKind>()
                .map_err(|e| format!("transport {s:?}: {e}"))?,
        };

        let fault = match opt_str("fault")? {
            None => FaultPlan::new(),
            Some(s) => s
                .parse::<FaultPlan>()
                .map_err(|e| format!("fault {s:?}: {e}"))?,
        };

        Ok(CampaignFile {
            protocols,
            graphs,
            sizes,
            partitioners,
            seeds,
            baseline,
            store: opt_str("store")?,
            parallel,
            transport,
            fault,
        })
    }

    /// Assembles the declared [`Campaign`]. `store_override`, when
    /// given (the `--store` flag), wins over the file's `store` key.
    pub fn to_campaign(&self, store_override: Option<&str>) -> Campaign {
        let mut c = Campaign::new()
            .protocol_keys(&self.protocols)
            .graphs(self.graphs.iter().copied())
            .sizes(self.sizes.iter().copied())
            .partitioners(self.partitioners.iter().copied())
            .seeds(self.seeds.iter().copied())
            .parallel(self.parallel)
            .transport(self.transport)
            .fault(self.fault.clone());
        if let Some(b) = &self.baseline {
            c = c.baseline(b.clone());
        }
        if let Some(store) = store_override
            .map(str::to_string)
            .or_else(|| self.store.clone())
        {
            c = c.with_store(store);
        }
        c
    }

    /// The store path the run will use (`--store` override first,
    /// then the file's `store` key).
    pub fn store_path<'a>(&'a self, store_override: Option<&'a str>) -> Option<&'a str> {
        store_override.or(self.store.as_deref())
    }
}

/// Parses an exclusive `"start..end"` seed range.
fn parse_seed_range(text: &str) -> Result<Vec<u64>, String> {
    let (start, end) = text
        .split_once("..")
        .ok_or(format!("seed range {text:?} is not \"start..end\""))?;
    let start: u64 = start
        .trim()
        .parse()
        .map_err(|_| format!("bad seed range start {start:?}"))?;
    let end: u64 = end
        .trim()
        .parse()
        .map_err(|_| format!("bad seed range end {end:?}"))?;
    if end < start {
        return Err(format!("seed range {text:?} is empty (end < start)"));
    }
    Ok((start..end).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        [campaign]
        protocols    = ["edge/theorem2", "baseline/send-everything"]
        graphs       = ["near-regular(n=24,d=4)", "gnp(n=24,p=0.2)"]
        sizes        = [24, 48]
        partitioners = ["alternating", "random(7)"]
        seeds        = "0..3"
        baseline     = "baseline/send-everything"
        store        = "out/store"
        parallel     = false
        transport    = "pipe"
        fault        = "delay:1,sever@2"
    "#;

    #[test]
    fn parses_the_full_surface() {
        let f = CampaignFile::parse(GOOD).expect("parses");
        assert_eq!(f.protocols.len(), 2);
        assert_eq!(f.graphs[1], GraphSpec::Gnp { n: 24, p: 0.2 });
        assert_eq!(f.sizes, vec![24, 48]);
        assert_eq!(f.partitioners[1], Partitioner::Random(7));
        assert_eq!(f.seeds, vec![0, 1, 2]);
        assert_eq!(f.baseline.as_deref(), Some("baseline/send-everything"));
        assert_eq!(f.store.as_deref(), Some("out/store"));
        assert!(!f.parallel);
        assert_eq!(f.transport, TransportKind::Pipe);
        assert_eq!(f.fault, FaultPlan::new().sever_at(2).delay_ms(1));
        let campaign = f.to_campaign(None);
        assert_eq!(campaign.cell_count(), 2 * 4 * 2);
    }

    #[test]
    fn seed_lists_work_too() {
        let f = CampaignFile::parse(
            r#"
            [campaign]
            protocols = ["edge/theorem2"]
            graphs = ["path(n=5)"]
            seeds = [4, 9, 16]
            "#,
        )
        .expect("parses");
        assert_eq!(f.seeds, vec![4, 9, 16]);
        assert!(f.parallel, "parallel defaults to true");
        assert_eq!(f.store, None);
        assert_eq!(f.transport, TransportKind::InProc, "inproc by default");
        assert!(f.fault.is_noop(), "no faults by default");
    }

    #[test]
    fn fault_plans_parse_and_typos_error() {
        let f = CampaignFile::parse(
            &GOOD.replace("\"delay:1,sever@2\"", "\"sever@3,corrupt@1,short:2\""),
        )
        .expect("parses");
        assert_eq!(f.fault, FaultPlan::new().sever_at(3).corrupt_at(1).short(2));
        let err = CampaignFile::parse(&GOOD.replace("\"delay:1,sever@2\"", "\"gremlins\""))
            .expect_err("unknown fault clause");
        assert!(err.contains("fault"), "{err}");
        assert!(err.contains("gremlins"), "{err}");
    }

    #[test]
    fn transport_axis_values_parse_and_typos_error() {
        for (value, kind) in [
            ("inproc", TransportKind::InProc),
            ("pipe", TransportKind::Pipe),
            ("tcp", TransportKind::Tcp),
        ] {
            let f = CampaignFile::parse(&GOOD.replace("\"pipe\"", &format!("{value:?}")))
                .expect("parses");
            assert_eq!(f.transport, kind);
        }
        let err = CampaignFile::parse(&GOOD.replace("\"pipe\"", "\"carrier-pigeon\""))
            .expect_err("unknown transport");
        assert!(err.contains("carrier-pigeon"), "{err}");
        assert!(err.contains("inproc|pipe|tcp"), "{err}");
    }

    #[test]
    fn bad_declarations_error_up_front() {
        // Mangling any axis entry must surface the offending string.
        for mangle in ["edge/theorem2", "near-regular(n=24,d=4)", "alternating"] {
            let text = GOOD.replace(mangle, &format!("{mangle}-typo"));
            let err = CampaignFile::parse(&text).expect_err("must fail");
            assert!(err.contains("typo"), "{mangle}: {err}");
        }
        let err = CampaignFile::parse(&GOOD.replace("seeds        = \"0..3\"", ""))
            .expect_err("no seeds");
        assert!(err.contains("no seeds"), "{err}");
        let err = CampaignFile::parse(&GOOD.replace(
            "baseline     = \"baseline/send-everything\"",
            "baseline = \"edge/theorem3-zero-comm\"",
        ))
        .expect_err("baseline off-axis");
        assert!(err.contains("not on the protocol axis"), "{err}");
        let err = CampaignFile::parse(&GOOD.replace("[campaign]", "[campain]"))
            .expect_err("section typo");
        assert!(err.contains("[campaign]"), "{err}");
        let err = CampaignFile::parse(&format!("{GOOD}\nfrobs = 1")).expect_err("unknown key");
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn seed_range_edges() {
        assert_eq!(parse_seed_range("5..8").expect("parses"), vec![5, 6, 7]);
        assert_eq!(parse_seed_range("5..5").expect("parses"), Vec::<u64>::new());
        assert!(parse_seed_range("8..5").is_err(), "reversed range");
        assert!(parse_seed_range("5").is_err(), "not a range");
        assert!(parse_seed_range("a..b").is_err(), "not numbers");
    }

    #[test]
    fn store_override_beats_the_file() {
        let f = CampaignFile::parse(GOOD).expect("parses");
        assert_eq!(f.store_path(None), Some("out/store"));
        assert_eq!(f.store_path(Some("elsewhere")), Some("elsewhere"));
    }
}
