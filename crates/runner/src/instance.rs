//! Problem instances: a graph, an adversarial edge partition, and a
//! seed, bundled so every protocol can be configured and executed the
//! same way.

use bichrome_graph::gen;
use bichrome_graph::partition::{EdgePartition, Partitioner};
use bichrome_graph::Graph;

/// A declarative description of an input graph family, buildable at
/// any seed. This is what [`crate::TrialPlan::graphs`] accepts: the
/// plan instantiates one graph per trial seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphSpec {
    /// `n` isolated vertices.
    Empty {
        /// Number of vertices.
        n: usize,
    },
    /// A path on `n` vertices.
    Path {
        /// Number of vertices.
        n: usize,
    },
    /// A cycle on `n` vertices.
    Cycle {
        /// Number of vertices.
        n: usize,
    },
    /// The complete graph `K_n`.
    Complete {
        /// Number of vertices.
        n: usize,
    },
    /// A star with `n − 1` leaves.
    Star {
        /// Number of vertices.
        n: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// A random near-`d`-regular graph.
    NearRegular {
        /// Number of vertices.
        n: usize,
        /// Target degree.
        d: usize,
    },
    /// A random graph with `m` edges and maximum degree at most
    /// `dmax`.
    GnmMaxDegree {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
        /// Maximum-degree cap.
        dmax: usize,
    },
}

impl GraphSpec {
    /// Materializes the graph at the given seed (deterministic; the
    /// seed is ignored by the deterministic families).
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphSpec::Empty { n } => gen::empty(n),
            GraphSpec::Path { n } => gen::path(n),
            GraphSpec::Cycle { n } => gen::cycle(n),
            GraphSpec::Complete { n } => gen::complete(n),
            GraphSpec::Star { n } => gen::star(n),
            GraphSpec::Gnp { n, p } => gen::gnp(n, p, seed),
            GraphSpec::NearRegular { n, d } => gen::near_regular(n, d, seed),
            GraphSpec::GnmMaxDegree { n, m, dmax } => gen::gnm_max_degree(n, m, dmax, seed),
        }
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphSpec::Empty { n } => write!(f, "empty(n={n})"),
            GraphSpec::Path { n } => write!(f, "path(n={n})"),
            GraphSpec::Cycle { n } => write!(f, "cycle(n={n})"),
            GraphSpec::Complete { n } => write!(f, "complete(n={n})"),
            GraphSpec::Star { n } => write!(f, "star(n={n})"),
            GraphSpec::Gnp { n, p } => write!(f, "gnp(n={n},p={p})"),
            GraphSpec::NearRegular { n, d } => write!(f, "near-regular(n={n},d={d})"),
            GraphSpec::GnmMaxDegree { n, m, dmax } => {
                write!(f, "gnm(n={n},m={m},dmax={dmax})")
            }
        }
    }
}

/// One concrete trial input: the partitioned graph plus the seed fed
/// to the protocol session (public randomness, private randomness,
/// session plumbing).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable label (graph family / origin), carried into
    /// trial records.
    pub label: String,
    /// The adversarially split input graph.
    pub partition: EdgePartition,
    /// Seed for the protocol session.
    pub seed: u64,
}

impl Instance {
    /// An instance from explicit parts.
    pub fn new(label: impl Into<String>, partition: EdgePartition, seed: u64) -> Self {
        Instance {
            label: label.into(),
            partition,
            seed,
        }
    }

    /// Builds `spec` at `graph_seed`, splits it with `partitioner`,
    /// and tags the protocol run with `seed`.
    pub fn from_spec(
        spec: &GraphSpec,
        partitioner: Partitioner,
        graph_seed: u64,
        seed: u64,
    ) -> Self {
        let g = spec.build(graph_seed);
        Instance {
            label: spec.to_string(),
            partition: partitioner.split(&g),
            seed,
        }
    }

    /// The whole (unsplit) input graph.
    pub fn graph(&self) -> &Graph {
        self.partition.whole()
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.graph().num_vertices()
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        self.graph().num_edges()
    }

    /// Maximum degree `Δ` of the whole graph.
    pub fn delta(&self) -> usize {
        self.graph().max_degree()
    }
}
