//! Problem instances: a graph, an adversarial edge partition, and a
//! seed, bundled so every protocol can be configured and executed the
//! same way.

use crate::seeds;
use bichrome_graph::gen;
use bichrome_graph::partition::{EdgePartition, Partitioner};
use bichrome_graph::Graph;
use std::sync::Arc;

/// A declarative description of an input graph family, buildable at
/// any seed. This is what [`crate::TrialPlan::graphs`] accepts: the
/// plan instantiates one graph per trial seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphSpec {
    /// `n` isolated vertices.
    Empty {
        /// Number of vertices.
        n: usize,
    },
    /// A path on `n` vertices.
    Path {
        /// Number of vertices.
        n: usize,
    },
    /// A cycle on `n` vertices.
    Cycle {
        /// Number of vertices.
        n: usize,
    },
    /// The complete graph `K_n`.
    Complete {
        /// Number of vertices.
        n: usize,
    },
    /// A star with `n − 1` leaves.
    Star {
        /// Number of vertices.
        n: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// A random near-`d`-regular graph.
    NearRegular {
        /// Number of vertices.
        n: usize,
        /// Target degree.
        d: usize,
    },
    /// A random graph with `m` edges and maximum degree at most
    /// `dmax`.
    GnmMaxDegree {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
        /// Maximum-degree cap.
        dmax: usize,
    },
}

impl GraphSpec {
    /// Materializes the graph at the given seed (deterministic; the
    /// seed is ignored by the deterministic families).
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphSpec::Empty { n } => gen::empty(n),
            GraphSpec::Path { n } => gen::path(n),
            GraphSpec::Cycle { n } => gen::cycle(n),
            GraphSpec::Complete { n } => gen::complete(n),
            GraphSpec::Star { n } => gen::star(n),
            GraphSpec::Gnp { n, p } => gen::gnp(n, p, seed),
            GraphSpec::NearRegular { n, d } => gen::near_regular(n, d, seed),
            GraphSpec::GnmMaxDegree { n, m, dmax } => gen::gnm_max_degree(n, m, dmax, seed),
        }
    }

    /// The family name without parameters (`"near-regular"`, `"gnp"`,
    /// ...) — the campaign's `group_by`-family key.
    pub fn family(&self) -> &'static str {
        match self {
            GraphSpec::Empty { .. } => "empty",
            GraphSpec::Path { .. } => "path",
            GraphSpec::Cycle { .. } => "cycle",
            GraphSpec::Complete { .. } => "complete",
            GraphSpec::Star { .. } => "star",
            GraphSpec::Gnp { .. } => "gnp",
            GraphSpec::NearRegular { .. } => "near-regular",
            GraphSpec::GnmMaxDegree { .. } => "gnm",
        }
    }

    /// The number of vertices the spec builds.
    pub fn num_vertices(&self) -> usize {
        match *self {
            GraphSpec::Empty { n }
            | GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Complete { n }
            | GraphSpec::Star { n }
            | GraphSpec::Gnp { n, .. }
            | GraphSpec::NearRegular { n, .. }
            | GraphSpec::GnmMaxDegree { n, .. } => n,
        }
    }

    /// The size-scaling hook behind [`crate::Campaign::sizes`]: the
    /// same family re-parameterized to `n` vertices. Density-style
    /// parameters (`p`, `d`, `dmax`) are kept; the absolute edge
    /// count of [`GraphSpec::GnmMaxDegree`] is scaled proportionally
    /// so the average degree is preserved.
    pub fn scaled_to(&self, n: usize) -> GraphSpec {
        match *self {
            GraphSpec::Empty { .. } => GraphSpec::Empty { n },
            GraphSpec::Path { .. } => GraphSpec::Path { n },
            GraphSpec::Cycle { .. } => GraphSpec::Cycle { n },
            GraphSpec::Complete { .. } => GraphSpec::Complete { n },
            GraphSpec::Star { .. } => GraphSpec::Star { n },
            GraphSpec::Gnp { p, .. } => GraphSpec::Gnp { n, p },
            GraphSpec::NearRegular { d, .. } => GraphSpec::NearRegular { n, d },
            GraphSpec::GnmMaxDegree { n: n0, m, dmax } => GraphSpec::GnmMaxDegree {
                n,
                m: (m * n).checked_div(n0).unwrap_or(m),
                dmax,
            },
        }
    }
}

/// Why a [`GraphSpec`] or [`Partitioner`] string failed to parse —
/// the typed error behind declaring campaign grids from CLI args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpecError {
    /// The family name before `(` is not one of the known families.
    UnknownFamily(String),
    /// A required field of this family is absent.
    MissingField {
        /// The family being parsed.
        family: String,
        /// The `k` of the missing `k=v`.
        field: &'static str,
    },
    /// A field value failed to parse as a number.
    BadValue {
        /// The `k` of the offending `k=v`.
        field: String,
        /// The unparseable `v`.
        value: String,
    },
    /// A field this family does not take, or a duplicate of one it
    /// does — rejected rather than silently ignored, so a
    /// fat-fingered CLI grid errors instead of running a quietly
    /// different experiment.
    UnexpectedField {
        /// The family being parsed.
        family: String,
        /// The unexpected or repeated `k`.
        field: String,
    },
    /// The string is not of the shape `family(k=v,...)`.
    Malformed(String),
}

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSpecError::UnknownFamily(fam) => write!(f, "unknown graph family {fam:?}"),
            ParseSpecError::MissingField { family, field } => {
                write!(f, "family {family:?} is missing field {field:?}")
            }
            ParseSpecError::BadValue { field, value } => {
                write!(f, "field {field:?} has unparseable value {value:?}")
            }
            ParseSpecError::UnexpectedField { family, field } => {
                write!(
                    f,
                    "family {family:?} does not take a (second) field {field:?}"
                )
            }
            ParseSpecError::Malformed(s) => {
                write!(f, "{s:?} is not of the shape \"family(k=v,...)\"")
            }
        }
    }
}

impl std::error::Error for ParseSpecError {}

/// The `k=v` fields of a spec string.
type SpecFields<'a> = Vec<(&'a str, &'a str)>;

/// Splits `"family(k=v,k=v)"` into the family name and its `k=v`
/// fields (shared by the [`GraphSpec`] parser and, on the graph-crate
/// side, mirrored by the `Partitioner` parser).
fn split_spec(s: &str) -> Result<(&str, SpecFields<'_>), ParseSpecError> {
    let s = s.trim();
    let Some(open) = s.find('(') else {
        // A bare family name is fine for field-free parsing; callers
        // decide whether fields were required.
        return Ok((s, Vec::new()));
    };
    let Some(body) = s[open + 1..].strip_suffix(')') else {
        return Err(ParseSpecError::Malformed(s.to_string()));
    };
    let name = &s[..open];
    let mut fields = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((k, v)) => fields.push((k.trim(), v.trim())),
            None => return Err(ParseSpecError::Malformed(s.to_string())),
        }
    }
    Ok((name, fields))
}

impl std::str::FromStr for GraphSpec {
    type Err = ParseSpecError;

    /// Parses the round-trip [`Display`](std::fmt::Display) form,
    /// e.g. `"near-regular(n=80,d=6)"` or `"gnp(n=50,p=0.1)"`.
    /// Strict: unknown and duplicate fields are errors, not noise.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (family, fields) = split_spec(s)?;
        let expected: &[&str] = match family {
            "empty" | "path" | "cycle" | "complete" | "star" => &["n"],
            "gnp" => &["n", "p"],
            "near-regular" => &["n", "d"],
            "gnm" => &["n", "m", "dmax"],
            other => return Err(ParseSpecError::UnknownFamily(other.to_string())),
        };
        for (i, (key, _)) in fields.iter().enumerate() {
            if !expected.contains(key) || fields[..i].iter().any(|(k, _)| k == key) {
                return Err(ParseSpecError::UnexpectedField {
                    family: family.to_string(),
                    field: key.to_string(),
                });
            }
        }
        let lookup = |key: &'static str| -> Result<&str, ParseSpecError> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or(ParseSpecError::MissingField {
                    family: family.to_string(),
                    field: key,
                })
        };
        let parse_usize = |key: &'static str| -> Result<usize, ParseSpecError> {
            let v = lookup(key)?;
            v.parse().map_err(|_| ParseSpecError::BadValue {
                field: key.to_string(),
                value: v.to_string(),
            })
        };
        let parse_f64 = |key: &'static str| -> Result<f64, ParseSpecError> {
            let v = lookup(key)?;
            v.parse().map_err(|_| ParseSpecError::BadValue {
                field: key.to_string(),
                value: v.to_string(),
            })
        };
        match family {
            "empty" => Ok(GraphSpec::Empty {
                n: parse_usize("n")?,
            }),
            "path" => Ok(GraphSpec::Path {
                n: parse_usize("n")?,
            }),
            "cycle" => Ok(GraphSpec::Cycle {
                n: parse_usize("n")?,
            }),
            "complete" => Ok(GraphSpec::Complete {
                n: parse_usize("n")?,
            }),
            "star" => Ok(GraphSpec::Star {
                n: parse_usize("n")?,
            }),
            "gnp" => Ok(GraphSpec::Gnp {
                n: parse_usize("n")?,
                p: parse_f64("p")?,
            }),
            "near-regular" => Ok(GraphSpec::NearRegular {
                n: parse_usize("n")?,
                d: parse_usize("d")?,
            }),
            "gnm" => Ok(GraphSpec::GnmMaxDegree {
                n: parse_usize("n")?,
                m: parse_usize("m")?,
                dmax: parse_usize("dmax")?,
            }),
            other => Err(ParseSpecError::UnknownFamily(other.to_string())),
        }
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphSpec::Empty { n } => write!(f, "empty(n={n})"),
            GraphSpec::Path { n } => write!(f, "path(n={n})"),
            GraphSpec::Cycle { n } => write!(f, "cycle(n={n})"),
            GraphSpec::Complete { n } => write!(f, "complete(n={n})"),
            GraphSpec::Star { n } => write!(f, "star(n={n})"),
            GraphSpec::Gnp { n, p } => write!(f, "gnp(n={n},p={p})"),
            GraphSpec::NearRegular { n, d } => write!(f, "near-regular(n={n},d={d})"),
            GraphSpec::GnmMaxDegree { n, m, dmax } => {
                write!(f, "gnm(n={n},m={m},dmax={dmax})")
            }
        }
    }
}

/// One concrete trial input: the partitioned graph plus the seed fed
/// to the protocol session (public randomness, private randomness,
/// session plumbing).
///
/// The partition is held behind an [`Arc`] so the executor's
/// instance cache can hand the *same* materialized graph and
/// subgraphs to every trial that shares them (all protocols of a
/// campaign cell column, for example) instead of cloning them per
/// trial.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable label (graph family / origin), carried into
    /// trial records.
    pub label: String,
    /// The adversarially split input graph (shared, not owned — see
    /// the struct docs).
    pub partition: Arc<EdgePartition>,
    /// The trial seed the instance was derived from — the value
    /// reported in trial records. Equal to [`Instance::seed`] for
    /// explicitly constructed instances.
    pub trial_seed: u64,
    /// Seed for the protocol session. Derived from the trial seed via
    /// [`crate::seeds::protocol_seed`] when the instance comes from a
    /// spec; taken verbatim by [`Instance::new`].
    pub seed: u64,
}

impl Instance {
    /// An instance from explicit parts: `seed` is used verbatim as
    /// the protocol-session seed (no derivation — the escape hatch
    /// for exact reproduction of historical experiment setups).
    pub fn new(
        label: impl Into<String>,
        partition: impl Into<Arc<EdgePartition>>,
        seed: u64,
    ) -> Self {
        Instance {
            label: label.into(),
            partition: partition.into(),
            trial_seed: seed,
            seed,
        }
    }

    /// Builds `spec` for the given trial seed and splits it with
    /// `partitioner`, deriving the graph and protocol-session
    /// sub-seeds through the [`crate::seeds`] scheme so the two
    /// streams are independent.
    pub fn from_spec(spec: &GraphSpec, partitioner: Partitioner, trial_seed: u64) -> Self {
        let g = spec.build(seeds::graph_seed(trial_seed));
        Instance {
            label: spec.to_string(),
            partition: Arc::new(partitioner.split(&g)),
            trial_seed,
            seed: seeds::protocol_seed(trial_seed),
        }
    }

    /// The whole (unsplit) input graph.
    pub fn graph(&self) -> &Graph {
        self.partition.whole()
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.graph().num_vertices()
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        self.graph().num_edges()
    }

    /// Maximum degree `Δ` of the whole graph.
    pub fn delta(&self) -> usize {
        self.graph().max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_display_round_trips() {
        let specs = [
            GraphSpec::Empty { n: 5 },
            GraphSpec::Path { n: 2 },
            GraphSpec::Cycle { n: 9 },
            GraphSpec::Complete { n: 12 },
            GraphSpec::Star { n: 8 },
            GraphSpec::Gnp { n: 50, p: 0.1 },
            GraphSpec::NearRegular { n: 80, d: 6 },
            GraphSpec::GnmMaxDegree {
                n: 60,
                m: 150,
                dmax: 8,
            },
        ];
        for spec in specs {
            let text = spec.to_string();
            let back: GraphSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, spec, "{text} must round-trip");
        }
    }

    #[test]
    fn spec_parsing_accepts_whitespace_and_reordered_fields() {
        let spec: GraphSpec = " gnm( dmax=8 , n=60, m=150 ) ".parse().expect("parses");
        assert_eq!(
            spec,
            GraphSpec::GnmMaxDegree {
                n: 60,
                m: 150,
                dmax: 8
            }
        );
    }

    #[test]
    fn spec_parsing_rejects_malformed_input_with_typed_errors() {
        assert_eq!(
            "torus(n=5)".parse::<GraphSpec>(),
            Err(ParseSpecError::UnknownFamily("torus".into()))
        );
        assert_eq!(
            "gnp(n=5)".parse::<GraphSpec>(),
            Err(ParseSpecError::MissingField {
                family: "gnp".into(),
                field: "p",
            })
        );
        assert_eq!(
            "gnp(n=5,p=high)".parse::<GraphSpec>(),
            Err(ParseSpecError::BadValue {
                field: "p".into(),
                value: "high".into(),
            })
        );
        assert_eq!(
            "gnp(n=5,p=0.1".parse::<GraphSpec>(),
            Err(ParseSpecError::Malformed("gnp(n=5,p=0.1".into()))
        );
        assert_eq!(
            "cycle(9)".parse::<GraphSpec>(),
            Err(ParseSpecError::Malformed("cycle(9)".into()))
        );
        assert!("near-regular".parse::<GraphSpec>().is_err());
    }

    #[test]
    fn spec_parsing_rejects_unknown_and_duplicate_fields() {
        // A junk field would silently change the experiment if
        // dropped; a duplicate would silently pick one value.
        assert_eq!(
            "gnp(n=5,p=0.1,frobs=2)".parse::<GraphSpec>(),
            Err(ParseSpecError::UnexpectedField {
                family: "gnp".into(),
                field: "frobs".into(),
            })
        );
        assert_eq!(
            "gnm(n=60,m=150,dmax=8,m=999)".parse::<GraphSpec>(),
            Err(ParseSpecError::UnexpectedField {
                family: "gnm".into(),
                field: "m".into(),
            })
        );
    }

    #[test]
    fn scaled_to_preserves_density_parameters() {
        assert_eq!(
            GraphSpec::NearRegular { n: 80, d: 6 }.scaled_to(160),
            GraphSpec::NearRegular { n: 160, d: 6 }
        );
        assert_eq!(
            GraphSpec::Gnp { n: 50, p: 0.1 }.scaled_to(25),
            GraphSpec::Gnp { n: 25, p: 0.1 }
        );
        // Absolute edge counts scale proportionally with n.
        assert_eq!(
            GraphSpec::GnmMaxDegree {
                n: 60,
                m: 150,
                dmax: 8
            }
            .scaled_to(120),
            GraphSpec::GnmMaxDegree {
                n: 120,
                m: 300,
                dmax: 8
            }
        );
        assert_eq!(
            GraphSpec::Star { n: 8 }.scaled_to(3),
            GraphSpec::Star { n: 3 }
        );
        assert_eq!(GraphSpec::Complete { n: 4 }.num_vertices(), 4);
        assert_eq!(GraphSpec::Path { n: 4 }.family(), "path");
    }
}
