//! A minimal TOML-subset parser for campaign files (the offline
//! environment has no `toml` crate).
//!
//! Supported: `#` comments, `[section]` headers, `key = value` pairs
//! with basic strings (`"..."` with `\"`, `\\`, `\n`, `\t` escapes),
//! unsigned integers, booleans, and single-line arrays of strings or
//! integers (trailing comma allowed). That is exactly the shape a
//! `campaign.toml` needs; anything else is a parse error with a line
//! number, never a silent skip.

use std::collections::BTreeMap;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// An unsigned integer (the subset has no negative numbers).
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            TomlValue::Int(x) => Some(*x),
            _ => None,
        }
    }
}

/// A `[section]`'s key → value map.
pub type TomlTable = BTreeMap<String, TomlValue>;

/// Parses a TOML-subset document into section → table (keys before
/// any `[section]` header land in the `""` section).
///
/// # Errors
///
/// Returns `"line N: ..."` describing the first offending line.
pub fn parse(text: &str) -> Result<BTreeMap<String, TomlTable>, String> {
    let mut doc: BTreeMap<String, TomlTable> = BTreeMap::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('[') {
            let Some(name) = body.strip_suffix(']') else {
                return Err(at(format!("unclosed section header {line:?}")));
            };
            section = name.trim().to_string();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at(format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(at("empty key".to_string()));
        }
        let value = parse_value(value.trim()).map_err(at)?;
        let table = doc.entry(section.clone()).or_default();
        if table.insert(key.to_string(), value).is_some() {
            return Err(at(format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (pos, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..pos],
            _ => {}
        }
    }
    line
}

/// Parses one value: string, integer, boolean, or single-line array.
fn parse_value(text: &str) -> Result<TomlValue, String> {
    if text.starts_with('"') {
        let (s, rest) = parse_string(text)?;
        if !rest.trim().is_empty() {
            return Err(format!("trailing {:?} after string", rest.trim()));
        }
        return Ok(TomlValue::Str(s));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("unclosed array {text:?}"));
        };
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (item, after) = if rest.starts_with('"') {
                let (s, after) = parse_string(rest)?;
                (TomlValue::Str(s), after)
            } else {
                let end = rest.find(',').unwrap_or(rest.len());
                (parse_scalar(rest[..end].trim())?, &rest[end..])
            };
            items.push(item);
            rest = after.trim_start();
            match rest.strip_prefix(',') {
                Some(after_comma) => rest = after_comma.trim_start(),
                None if rest.is_empty() => break,
                None => return Err(format!("expected `,` between array items in {text:?}")),
            }
        }
        return Ok(TomlValue::Array(items));
    }
    parse_scalar(text)
}

/// Parses a bare scalar: integer or boolean.
fn parse_scalar(text: &str) -> Result<TomlValue, String> {
    match text {
        "true" => Ok(TomlValue::Bool(true)),
        "false" => Ok(TomlValue::Bool(false)),
        _ => text.parse::<u64>().map(TomlValue::Int).map_err(|_| {
            format!(
                "unsupported value {text:?} (expected string, unsigned integer, bool, or array)"
            )
        }),
    }
}

/// Parses a leading `"..."` string, returning it and the remainder.
fn parse_string(text: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((pos, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[pos + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                got => return Err(format!("bad escape {:?} in {text:?}", got.map(|(_, c)| c))),
            },
            c => out.push(c),
        }
    }
    Err(format!("unterminated string {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_campaign_shaped_document() {
        let doc = parse(
            r#"
            # a campaign
            [campaign]
            protocols = ["vertex/theorem1", "baseline/send-everything"]
            graphs = ["near-regular(n=64,d=6)"]   # spec strings
            sizes = [64, 128,]
            seeds = "0..8"
            parallel = true
            trials = 20
            "#,
        )
        .expect("parses");
        let c = &doc["campaign"];
        assert_eq!(
            c["protocols"],
            TomlValue::Array(vec![
                TomlValue::Str("vertex/theorem1".into()),
                TomlValue::Str("baseline/send-everything".into()),
            ])
        );
        assert_eq!(
            c["sizes"],
            TomlValue::Array(vec![TomlValue::Int(64), TomlValue::Int(128)])
        );
        assert_eq!(c["seeds"], TomlValue::Str("0..8".into()));
        assert_eq!(c["parallel"], TomlValue::Bool(true));
        assert_eq!(c["trials"], TomlValue::Int(20));
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let doc = parse(r##"label = "a # b"  # real comment"##).expect("parses");
        assert_eq!(doc[""]["label"], TomlValue::Str("a # b".into()));
    }

    #[test]
    fn escapes_round_trip() {
        let doc = parse(r#"s = "quote \" slash \\ nl \n tab \t""#).expect("parses");
        assert_eq!(
            doc[""]["s"],
            TomlValue::Str("quote \" slash \\ nl \n tab \t".into())
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, want) in [
            ("x 1", "line 1"),
            ("\n[open", "line 2"),
            ("k = [1, 2", "unclosed array"),
            ("k = -3", "unsupported value"),
            ("k = 1\nk = 2", "duplicate key"),
            ("k = \"open", "unterminated string"),
            ("k = [1 2]", "unsupported value"),
            ("k = [\"a\" \"b\"]", "expected `,`"),
        ] {
            let err = parse(text).expect_err(text);
            assert!(err.contains(want), "{text:?} → {err}");
        }
    }

    #[test]
    fn empty_sections_and_arrays_are_fine() {
        let doc = parse("[a]\n[b]\nxs = []").expect("parses");
        assert!(doc["a"].is_empty());
        assert_eq!(doc["b"]["xs"], TomlValue::Array(vec![]));
    }
}
