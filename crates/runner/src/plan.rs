//! Repeated-trial execution: a builder-style [`TrialPlan`] runs one
//! protocol over many instances — rayon-parallel across seeds — and
//! aggregates the outcomes into a [`Report`] with JSON and text-table
//! output. This replaces the hand-rolled trial loops the experiment
//! binaries used to copy-paste.

use crate::exec::{self, WorkItem, WorkSource};
use crate::instance::{GraphSpec, Instance};
use crate::protocol::{Outcome, Protocol, Verdict};
use crate::seeds;
use crate::table::Table;
use bichrome_graph::partition::Partitioner;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builder for a batch of repeated trials of one protocol.
///
/// # Example
///
/// ```
/// use bichrome_runner::{registry, GraphSpec, TrialPlan};
///
/// let proto = registry().get("edge/theorem2").expect("registered");
/// let report = TrialPlan::new(proto)
///     .graphs(GraphSpec::GnmMaxDegree { n: 60, m: 150, dmax: 8 })
///     .seeds(0..8)
///     .parallel(true)
///     .run();
/// assert!(report.all_valid());
/// assert_eq!(report.trials.len(), 8);
/// ```
pub struct TrialPlan {
    protocol: Arc<dyn Protocol>,
    graphs: Option<GraphSpec>,
    partitioner: Option<Partitioner>,
    seeds: Vec<u64>,
    explicit: Vec<Instance>,
    parallel: bool,
}

impl TrialPlan {
    /// A plan for `protocol` with no instances yet.
    pub fn new(protocol: Arc<dyn Protocol>) -> Self {
        TrialPlan {
            protocol,
            graphs: None,
            partitioner: None,
            seeds: Vec::new(),
            explicit: Vec::new(),
            parallel: true,
        }
    }

    /// Generates one instance per seed from this graph family.
    pub fn graphs(mut self, spec: GraphSpec) -> Self {
        self.graphs = Some(spec);
        self
    }

    /// Fixes the edge partitioner. Default: a fresh random adversary
    /// per trial — `Partitioner::Random` keyed by
    /// [`crate::seeds::partition_seed`], so the split is decorrelated
    /// from the graph generator's and the protocol session's streams
    /// (see the [`crate::seeds`] scheme).
    pub fn partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = Some(p);
        self
    }

    /// The trial seeds. Each seed feeds the graph generator (when
    /// [`TrialPlan::graphs`] is used) and the protocol session.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Appends explicitly constructed instances (escape hatch for
    /// exact reproduction of historical experiment setups).
    pub fn instances(mut self, insts: impl IntoIterator<Item = Instance>) -> Self {
        self.explicit.extend(insts);
        self
    }

    /// Whether to run trials in parallel across worker threads
    /// (default: true). Trial results are identical either way; each
    /// trial's randomness is derived only from its own seed.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Enqueues the plan's work: explicit instances pass through
    /// ready-made; spec × seed trials stay lazy descriptors, resolved
    /// by the executor's shared instance cache inside the workers.
    fn build_queue(&mut self) -> Vec<WorkItem> {
        let mut queue: Vec<WorkItem> = std::mem::take(&mut self.explicit)
            .into_iter()
            .map(|instance| WorkItem {
                protocol: Arc::clone(&self.protocol),
                source: WorkSource::Ready(instance),
                threads: 1,
            })
            .collect();
        if let Some(spec) = self.graphs {
            for &seed in &self.seeds {
                let partitioner = self
                    .partitioner
                    .unwrap_or(Partitioner::Random(seeds::partition_seed(seed)));
                queue.push(WorkItem {
                    protocol: Arc::clone(&self.protocol),
                    source: WorkSource::Lazy {
                        spec,
                        partitioner,
                        trial_seed: seed,
                    },
                    threads: 1,
                });
            }
        }
        exec::assign_budgets(&mut queue, self.parallel);
        queue
    }

    /// Runs every trial through the shared executor (the same one
    /// that powers [`crate::Campaign`] grids) and aggregates a
    /// [`Report`].
    ///
    /// # Panics
    ///
    /// Panics if the plan has no instances (no `graphs`+`seeds` and no
    /// explicit `instances`).
    pub fn run(mut self) -> Report {
        let queue = self.build_queue();
        assert!(
            !queue.is_empty(),
            "TrialPlan has no instances: set .graphs(..).seeds(..) or .instances(..)"
        );
        let (trials, _stats) = exec::execute(&queue, self.parallel, None);
        Report::new(self.protocol.name().to_string(), trials)
    }
}

impl std::fmt::Debug for TrialPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialPlan")
            .field("protocol", &self.protocol.name())
            .field("graphs", &self.graphs)
            .field("seeds", &self.seeds.len())
            .field("explicit", &self.explicit.len())
            .field("parallel", &self.parallel)
            .finish()
    }
}

/// One trial's flattened result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Instance label (graph family).
    pub label: String,
    /// The trial seed.
    pub seed: u64,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Maximum degree of the input graph.
    pub delta: usize,
    /// Bits Alice sent to Bob.
    pub bits_alice_to_bob: u64,
    /// Bits Bob sent to Alice.
    pub bits_bob_to_alice: u64,
    /// Communication rounds.
    pub rounds: u64,
    /// Distinct colors in the artifact.
    pub colors_used: usize,
    /// Palette budget validated against, if any.
    pub palette_budget: Option<usize>,
    /// Whether the validators accepted the outcome.
    pub valid: bool,
    /// Validator / failure message when invalid.
    pub error: Option<String>,
    /// Protocol-specific side measurements, copied from
    /// [`Outcome::metrics`].
    pub metrics: BTreeMap<String, f64>,
}

impl TrialRecord {
    /// Flattens one executed [`Outcome`] into a record, annotated with
    /// the instance it ran on.
    ///
    /// The meter's per-phase bit totals ([`CommStats::bits_by_phase`](
    /// bichrome_comm::CommStats)) are surfaced as `phase_bits/<name>`
    /// metric entries: phases used to be recorded in the stats but
    /// dropped from the campaign `metrics` channel, so they never
    /// aggregated in reports. The entries are deterministic protocol
    /// data (bits, not wall time), so records stay bit-identical
    /// across schedules, transports, and observability settings.
    pub fn from_outcome(inst: &Instance, outcome: Outcome) -> Self {
        let mut metrics = outcome.metrics;
        for (phase, &bits) in &outcome.stats.bits_by_phase {
            metrics.insert(format!("phase_bits/{phase}"), bits as f64);
        }
        TrialRecord {
            label: inst.label.clone(),
            seed: inst.trial_seed,
            n: inst.n(),
            m: inst.m(),
            delta: inst.delta(),
            bits_alice_to_bob: outcome.stats.bits_alice_to_bob,
            bits_bob_to_alice: outcome.stats.bits_bob_to_alice,
            rounds: outcome.stats.rounds,
            colors_used: outcome.artifact.colors_used(),
            palette_budget: outcome.palette_budget,
            valid: outcome.verdict.is_valid(),
            error: match &outcome.verdict {
                Verdict::Valid => None,
                Verdict::Invalid(msg) => Some(msg.clone()),
            },
            metrics,
        }
    }

    /// Total bits in both directions.
    pub fn total_bits(&self) -> u64 {
        self.bits_alice_to_bob + self.bits_bob_to_alice
    }

    /// Serializes the record as one single-line JSON object — the
    /// payload format the campaign store persists and
    /// [`TrialRecord::from_json`] decodes. Every field round-trips
    /// bit-exactly (finite `f64` metrics render in Rust's shortest
    /// round-trippable form; non-finite values as tagged strings).
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Writer::object();
        o.field_str("label", &self.label);
        o.field_u64("seed", self.seed);
        o.field_u64("n", self.n as u64);
        o.field_u64("m", self.m as u64);
        o.field_u64("delta", self.delta as u64);
        o.field_u64("bits_alice_to_bob", self.bits_alice_to_bob);
        o.field_u64("bits_bob_to_alice", self.bits_bob_to_alice);
        o.field_u64("rounds", self.rounds);
        o.field_u64("colors_used", self.colors_used as u64);
        match self.palette_budget {
            Some(b) => o.field_u64("palette_budget", b as u64),
            None => o.field_null("palette_budget"),
        }
        o.field_bool("valid", self.valid);
        match &self.error {
            Some(e) => o.field_str("error", e),
            None => o.field_null("error"),
        }
        if !self.metrics.is_empty() {
            let mut m = crate::json::Writer::object();
            for (k, &v) in &self.metrics {
                if v.is_finite() {
                    m.field_f64(k, v);
                } else if v.is_nan() {
                    m.field_str(k, "NaN");
                } else if v > 0.0 {
                    m.field_str(k, "Infinity");
                } else {
                    m.field_str(k, "-Infinity");
                }
            }
            o.field_raw("metrics", &m.finish());
        }
        o.finish()
    }

    /// Decodes a record serialized by [`TrialRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape error.
    pub fn from_json(text: &str) -> Result<TrialRecord, String> {
        use crate::json::Value;
        let v = Value::parse(text)?;
        let obj = v.as_object().ok_or("trial record is not a JSON object")?;
        let get = |field: &str| obj.get(field).ok_or(format!("missing field {field:?}"));
        let get_u64 = |field: &str| {
            get(field)?
                .as_u64()
                .ok_or(format!("field {field:?} is not an unsigned integer"))
        };
        // The seed is a full-range u64; take it from the raw text so
        // it never rounds through the parser's f64 numbers. The first
        // unescaped `"seed":` is this record's own field ("label",
        // the only field before it, is an escaped JSON string).
        let seed_at = text.find("\"seed\":").ok_or("missing field \"seed\"")? + "\"seed\":".len();
        let after = &text[seed_at..];
        let digits = &after[..after
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(after.len())];
        let seed: u64 = digits
            .parse()
            .map_err(|_| format!("seed {digits:?} is not a u64"))?;
        let mut metrics = BTreeMap::new();
        if let Some(m) = obj.get("metrics") {
            let m = m.as_object().ok_or("field \"metrics\" is not an object")?;
            for (k, v) in m {
                let x = match v {
                    Value::Number(x) => *x,
                    Value::String(s) => match s.as_str() {
                        "NaN" => f64::NAN,
                        "Infinity" => f64::INFINITY,
                        "-Infinity" => f64::NEG_INFINITY,
                        other => return Err(format!("metric {k:?} has bad value {other:?}")),
                    },
                    other => return Err(format!("metric {k:?} is not a number: {other:?}")),
                };
                metrics.insert(k.clone(), x);
            }
        }
        Ok(TrialRecord {
            label: get("label")?
                .as_str()
                .ok_or("field \"label\" is not a string")?
                .to_string(),
            seed,
            n: get_u64("n")? as usize,
            m: get_u64("m")? as usize,
            delta: get_u64("delta")? as usize,
            bits_alice_to_bob: get_u64("bits_alice_to_bob")?,
            bits_bob_to_alice: get_u64("bits_bob_to_alice")?,
            rounds: get_u64("rounds")?,
            colors_used: get_u64("colors_used")? as usize,
            palette_budget: match get("palette_budget")? {
                Value::Null => None,
                v => Some(
                    v.as_u64()
                        .ok_or("field \"palette_budget\" is not an unsigned integer")?
                        as usize,
                ),
            },
            valid: match get("valid")? {
                Value::Bool(b) => *b,
                other => return Err(format!("field \"valid\" is not a bool: {other:?}")),
            },
            error: match get("error")? {
                Value::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or("field \"error\" is not a string")?
                        .to_string(),
                ),
            },
            metrics,
        })
    }
}

/// Mean / population-stddev / min / max / p50 / p95 of one metric
/// across trials.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank 50th percentile — always an actual
    /// sample value, never an interpolation).
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
}

impl Aggregate {
    /// Aggregates a sample (all zeros when empty).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Aggregate::default();
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Aggregate {
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted non-empty sample:
/// the smallest value with at least `p`% of the sample at or below it
/// (`sorted[⌈p/100 · N⌉ − 1]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Cross-trial summary of a [`Report`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    /// Number of trials.
    pub trials: usize,
    /// Number of trials the validators accepted.
    pub valid: usize,
    /// Total-bits aggregate.
    pub total_bits: Aggregate,
    /// Rounds aggregate.
    pub rounds: Aggregate,
    /// Bits-per-vertex aggregate (total bits / n).
    pub bits_per_vertex: Aggregate,
    /// Colors-used aggregate.
    pub colors: Aggregate,
    /// Per-key aggregates of the protocols' side measurements
    /// ([`TrialRecord::metrics`]); a key is aggregated over the trials
    /// that reported it.
    pub metrics: BTreeMap<String, Aggregate>,
}

impl Summary {
    /// Aggregates a set of trial records. This is the *one*
    /// statistics implementation in the workspace; experiment binaries
    /// reuse it instead of hand-rolling mean/stddev.
    pub fn of(trials: &[TrialRecord]) -> Self {
        let bits: Vec<f64> = trials.iter().map(|t| t.total_bits() as f64).collect();
        let rounds: Vec<f64> = trials.iter().map(|t| t.rounds as f64).collect();
        let colors: Vec<f64> = trials.iter().map(|t| t.colors_used as f64).collect();
        let bpv: Vec<f64> = trials
            .iter()
            .map(|t| {
                if t.n == 0 {
                    0.0
                } else {
                    t.total_bits() as f64 / t.n as f64
                }
            })
            .collect();
        let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for t in trials {
            for (k, &v) in &t.metrics {
                samples.entry(k).or_default().push(v);
            }
        }
        Summary {
            trials: trials.len(),
            valid: trials.iter().filter(|t| t.valid).count(),
            total_bits: Aggregate::of(&bits),
            rounds: Aggregate::of(&rounds),
            bits_per_vertex: Aggregate::of(&bpv),
            colors: Aggregate::of(&colors),
            metrics: samples
                .into_iter()
                .map(|(k, xs)| (k.to_string(), Aggregate::of(&xs)))
                .collect(),
        }
    }

    /// The aggregate for one metric key (zeros when no trial reported
    /// it) — convenience for table-printing code.
    pub fn metric(&self, key: &str) -> Aggregate {
        self.metrics.get(key).copied().unwrap_or_default()
    }
}

/// The aggregated result of a [`TrialPlan`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Registry key of the protocol that ran.
    pub protocol: String,
    /// Every trial, in instance order.
    pub trials: Vec<TrialRecord>,
    /// Cross-trial aggregates.
    pub summary: Summary,
}

impl Report {
    /// Builds a report (computing the summary) from raw trials.
    pub fn new(protocol: String, trials: Vec<TrialRecord>) -> Self {
        let summary = Summary::of(&trials);
        Report {
            protocol,
            trials,
            summary,
        }
    }

    /// Whether every trial validated.
    pub fn all_valid(&self) -> bool {
        self.summary.valid == self.summary.trials
    }

    /// Renders the per-trial table plus a summary line.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(&[
            "trial",
            "label",
            "seed",
            "n",
            "m",
            "Δ",
            "bits A→B",
            "bits B→A",
            "total",
            "rounds",
            "colors",
            "ok",
        ]);
        for (i, r) in self.trials.iter().enumerate() {
            t.row(&[
                &i.to_string(),
                &r.label,
                &r.seed.to_string(),
                &r.n.to_string(),
                &r.m.to_string(),
                &r.delta.to_string(),
                &r.bits_alice_to_bob.to_string(),
                &r.bits_bob_to_alice.to_string(),
                &r.total_bits().to_string(),
                &r.rounds.to_string(),
                &r.colors_used.to_string(),
                if r.valid { "✓" } else { "✗" },
            ]);
        }
        let s = &self.summary;
        format!(
            "{}\n{}: {}/{} valid · bits {:.1} ± {:.1} (max {:.0}) · rounds {:.1} ± {:.1} (max {:.0}) · bits/n {:.2}\n",
            t.render(),
            self.protocol,
            s.valid,
            s.trials,
            s.total_bits.mean,
            s.total_bits.stddev,
            s.total_bits.max,
            s.rounds.mean,
            s.rounds.stddev,
            s.rounds.max,
            s.bits_per_vertex.mean,
        )
    }

    /// Serializes the full report (trials + summary) as JSON.
    pub fn to_json(&self) -> String {
        let mut w = crate::json::Writer::object();
        w.field_str("protocol", &self.protocol);
        w.field_raw("summary", &{
            let mut s = crate::json::Writer::object();
            s.field_u64("trials", self.summary.trials as u64);
            s.field_u64("valid", self.summary.valid as u64);
            s.field_raw("total_bits", &aggregate_json(&self.summary.total_bits));
            s.field_raw("rounds", &aggregate_json(&self.summary.rounds));
            s.field_raw(
                "bits_per_vertex",
                &aggregate_json(&self.summary.bits_per_vertex),
            );
            s.field_raw("colors", &aggregate_json(&self.summary.colors));
            if !self.summary.metrics.is_empty() {
                let mut m = crate::json::Writer::object();
                for (k, a) in &self.summary.metrics {
                    m.field_raw(k, &aggregate_json(a));
                }
                s.field_raw("metrics", &m.finish());
            }
            s.finish()
        });
        let trials: Vec<String> = self.trials.iter().map(TrialRecord::to_json).collect();
        w.field_raw("trials", &format!("[{}]", trials.join(",")));
        w.finish()
    }
}

fn aggregate_json(a: &Aggregate) -> String {
    let mut w = crate::json::Writer::object();
    w.field_f64("mean", a.mean);
    w.field_f64("stddev", a.stddev);
    w.field_f64("min", a.min);
    w.field_f64("max", a.max);
    w.field_f64("p50", a.p50);
    w.field_f64("p95", a.p95);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let a = Aggregate::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.p50, 20.0, "⌈0.5·4⌉ = rank 2");
        assert_eq!(a.p95, 40.0, "⌈0.95·4⌉ = rank 4");
        let b = Aggregate::of(&[7.0]);
        assert_eq!((b.p50, b.p95), (7.0, 7.0));
        let c = Aggregate::of(&(1..=100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(c.p50, 50.0);
        assert_eq!(c.p95, 95.0);
        assert_eq!(Aggregate::of(&[]).p95, 0.0, "empty sample stays zeroed");
    }

    #[test]
    fn trial_record_json_round_trips_bit_exactly() {
        let mut metrics = BTreeMap::new();
        metrics.insert("rct_remaining".to_string(), 0.1 + 0.2); // 0.30000000000000004
        metrics.insert("space_bound".to_string(), f64::INFINITY);
        metrics.insert("slack \"quoted\"\n".to_string(), -7.25);
        let record = TrialRecord {
            label: "near-regular(n=24,d=4)".to_string(),
            seed: u64::MAX,
            n: 24,
            m: 48,
            delta: 5,
            bits_alice_to_bob: 120,
            bits_bob_to_alice: 64,
            rounds: 3,
            colors_used: 6,
            palette_budget: Some(9),
            valid: false,
            error: Some("validator said no,\nwith a newline".to_string()),
            metrics,
        };
        let json = record.to_json();
        assert!(!json.contains('\n'), "payload must be single-line");
        let back = TrialRecord::from_json(&json).expect("parses");
        assert_eq!(
            back, record,
            "round-trip must be exact (incl. the u64::MAX seed)"
        );

        // And the minimal record (no metrics, no budget, no error).
        let bare = TrialRecord {
            label: "e1".to_string(),
            seed: 0,
            n: 0,
            m: 0,
            delta: 0,
            bits_alice_to_bob: 0,
            bits_bob_to_alice: 0,
            rounds: 0,
            colors_used: 0,
            palette_budget: None,
            valid: true,
            error: None,
            metrics: BTreeMap::new(),
        };
        assert_eq!(
            TrialRecord::from_json(&bare.to_json()).expect("parses"),
            bare
        );
        assert!(TrialRecord::from_json("{}").is_err());
        assert!(TrialRecord::from_json("not json").is_err());
    }
}
