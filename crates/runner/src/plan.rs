//! Repeated-trial execution: a builder-style [`TrialPlan`] runs one
//! protocol over many instances — rayon-parallel across seeds — and
//! aggregates the outcomes into a [`Report`] with JSON and text-table
//! output. This replaces the hand-rolled trial loops the experiment
//! binaries used to copy-paste.

use crate::exec::{self, WorkItem, WorkSource};
use crate::instance::{GraphSpec, Instance};
use crate::protocol::{Outcome, Protocol, Verdict};
use crate::seeds;
use crate::table::Table;
use bichrome_graph::partition::Partitioner;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builder for a batch of repeated trials of one protocol.
///
/// # Example
///
/// ```
/// use bichrome_runner::{registry, GraphSpec, TrialPlan};
///
/// let proto = registry().get("edge/theorem2").expect("registered");
/// let report = TrialPlan::new(proto)
///     .graphs(GraphSpec::GnmMaxDegree { n: 60, m: 150, dmax: 8 })
///     .seeds(0..8)
///     .parallel(true)
///     .run();
/// assert!(report.all_valid());
/// assert_eq!(report.trials.len(), 8);
/// ```
pub struct TrialPlan {
    protocol: Arc<dyn Protocol>,
    graphs: Option<GraphSpec>,
    partitioner: Option<Partitioner>,
    seeds: Vec<u64>,
    explicit: Vec<Instance>,
    parallel: bool,
}

impl TrialPlan {
    /// A plan for `protocol` with no instances yet.
    pub fn new(protocol: Arc<dyn Protocol>) -> Self {
        TrialPlan {
            protocol,
            graphs: None,
            partitioner: None,
            seeds: Vec::new(),
            explicit: Vec::new(),
            parallel: true,
        }
    }

    /// Generates one instance per seed from this graph family.
    pub fn graphs(mut self, spec: GraphSpec) -> Self {
        self.graphs = Some(spec);
        self
    }

    /// Fixes the edge partitioner. Default: a fresh random adversary
    /// per trial — `Partitioner::Random` keyed by
    /// [`crate::seeds::partition_seed`], so the split is decorrelated
    /// from the graph generator's and the protocol session's streams
    /// (see the [`crate::seeds`] scheme).
    pub fn partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = Some(p);
        self
    }

    /// The trial seeds. Each seed feeds the graph generator (when
    /// [`TrialPlan::graphs`] is used) and the protocol session.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Appends explicitly constructed instances (escape hatch for
    /// exact reproduction of historical experiment setups).
    pub fn instances(mut self, insts: impl IntoIterator<Item = Instance>) -> Self {
        self.explicit.extend(insts);
        self
    }

    /// Whether to run trials in parallel across worker threads
    /// (default: true). Trial results are identical either way; each
    /// trial's randomness is derived only from its own seed.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Enqueues the plan's work: explicit instances pass through
    /// ready-made; spec × seed trials stay lazy descriptors, resolved
    /// by the executor's shared instance cache inside the workers.
    fn build_queue(&mut self) -> Vec<WorkItem> {
        let mut queue: Vec<WorkItem> = std::mem::take(&mut self.explicit)
            .into_iter()
            .map(|instance| WorkItem {
                protocol: Arc::clone(&self.protocol),
                source: WorkSource::Ready(instance),
            })
            .collect();
        if let Some(spec) = self.graphs {
            for &seed in &self.seeds {
                let partitioner = self
                    .partitioner
                    .unwrap_or(Partitioner::Random(seeds::partition_seed(seed)));
                queue.push(WorkItem {
                    protocol: Arc::clone(&self.protocol),
                    source: WorkSource::Lazy {
                        spec,
                        partitioner,
                        trial_seed: seed,
                    },
                });
            }
        }
        queue
    }

    /// Runs every trial through the shared executor (the same one
    /// that powers [`crate::Campaign`] grids) and aggregates a
    /// [`Report`].
    ///
    /// # Panics
    ///
    /// Panics if the plan has no instances (no `graphs`+`seeds` and no
    /// explicit `instances`).
    pub fn run(mut self) -> Report {
        let queue = self.build_queue();
        assert!(
            !queue.is_empty(),
            "TrialPlan has no instances: set .graphs(..).seeds(..) or .instances(..)"
        );
        let (trials, _stats) = exec::execute(&queue, self.parallel);
        Report::new(self.protocol.name().to_string(), trials)
    }
}

impl std::fmt::Debug for TrialPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialPlan")
            .field("protocol", &self.protocol.name())
            .field("graphs", &self.graphs)
            .field("seeds", &self.seeds.len())
            .field("explicit", &self.explicit.len())
            .field("parallel", &self.parallel)
            .finish()
    }
}

/// One trial's flattened result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Instance label (graph family).
    pub label: String,
    /// The trial seed.
    pub seed: u64,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Maximum degree of the input graph.
    pub delta: usize,
    /// Bits Alice sent to Bob.
    pub bits_alice_to_bob: u64,
    /// Bits Bob sent to Alice.
    pub bits_bob_to_alice: u64,
    /// Communication rounds.
    pub rounds: u64,
    /// Distinct colors in the artifact.
    pub colors_used: usize,
    /// Palette budget validated against, if any.
    pub palette_budget: Option<usize>,
    /// Whether the validators accepted the outcome.
    pub valid: bool,
    /// Validator / failure message when invalid.
    pub error: Option<String>,
    /// Protocol-specific side measurements, copied from
    /// [`Outcome::metrics`].
    pub metrics: BTreeMap<String, f64>,
}

impl TrialRecord {
    /// Flattens one executed [`Outcome`] into a record, annotated with
    /// the instance it ran on.
    pub fn from_outcome(inst: &Instance, outcome: Outcome) -> Self {
        TrialRecord {
            label: inst.label.clone(),
            seed: inst.trial_seed,
            n: inst.n(),
            m: inst.m(),
            delta: inst.delta(),
            bits_alice_to_bob: outcome.stats.bits_alice_to_bob,
            bits_bob_to_alice: outcome.stats.bits_bob_to_alice,
            rounds: outcome.stats.rounds,
            colors_used: outcome.artifact.colors_used(),
            palette_budget: outcome.palette_budget,
            valid: outcome.verdict.is_valid(),
            error: match &outcome.verdict {
                Verdict::Valid => None,
                Verdict::Invalid(msg) => Some(msg.clone()),
            },
            metrics: outcome.metrics,
        }
    }

    /// Total bits in both directions.
    pub fn total_bits(&self) -> u64 {
        self.bits_alice_to_bob + self.bits_bob_to_alice
    }
}

/// Mean / population-stddev / min / max of one metric across trials.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Aggregate {
    /// Aggregates a sample (all zeros when empty).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Aggregate::default();
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Aggregate {
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Cross-trial summary of a [`Report`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    /// Number of trials.
    pub trials: usize,
    /// Number of trials the validators accepted.
    pub valid: usize,
    /// Total-bits aggregate.
    pub total_bits: Aggregate,
    /// Rounds aggregate.
    pub rounds: Aggregate,
    /// Bits-per-vertex aggregate (total bits / n).
    pub bits_per_vertex: Aggregate,
    /// Colors-used aggregate.
    pub colors: Aggregate,
    /// Per-key aggregates of the protocols' side measurements
    /// ([`TrialRecord::metrics`]); a key is aggregated over the trials
    /// that reported it.
    pub metrics: BTreeMap<String, Aggregate>,
}

impl Summary {
    /// Aggregates a set of trial records. This is the *one*
    /// statistics implementation in the workspace; experiment binaries
    /// reuse it instead of hand-rolling mean/stddev.
    pub fn of(trials: &[TrialRecord]) -> Self {
        let bits: Vec<f64> = trials.iter().map(|t| t.total_bits() as f64).collect();
        let rounds: Vec<f64> = trials.iter().map(|t| t.rounds as f64).collect();
        let colors: Vec<f64> = trials.iter().map(|t| t.colors_used as f64).collect();
        let bpv: Vec<f64> = trials
            .iter()
            .map(|t| {
                if t.n == 0 {
                    0.0
                } else {
                    t.total_bits() as f64 / t.n as f64
                }
            })
            .collect();
        let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for t in trials {
            for (k, &v) in &t.metrics {
                samples.entry(k).or_default().push(v);
            }
        }
        Summary {
            trials: trials.len(),
            valid: trials.iter().filter(|t| t.valid).count(),
            total_bits: Aggregate::of(&bits),
            rounds: Aggregate::of(&rounds),
            bits_per_vertex: Aggregate::of(&bpv),
            colors: Aggregate::of(&colors),
            metrics: samples
                .into_iter()
                .map(|(k, xs)| (k.to_string(), Aggregate::of(&xs)))
                .collect(),
        }
    }

    /// The aggregate for one metric key (zeros when no trial reported
    /// it) — convenience for table-printing code.
    pub fn metric(&self, key: &str) -> Aggregate {
        self.metrics.get(key).copied().unwrap_or_default()
    }
}

/// The aggregated result of a [`TrialPlan`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Registry key of the protocol that ran.
    pub protocol: String,
    /// Every trial, in instance order.
    pub trials: Vec<TrialRecord>,
    /// Cross-trial aggregates.
    pub summary: Summary,
}

impl Report {
    /// Builds a report (computing the summary) from raw trials.
    pub fn new(protocol: String, trials: Vec<TrialRecord>) -> Self {
        let summary = Summary::of(&trials);
        Report {
            protocol,
            trials,
            summary,
        }
    }

    /// Whether every trial validated.
    pub fn all_valid(&self) -> bool {
        self.summary.valid == self.summary.trials
    }

    /// Renders the per-trial table plus a summary line.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(&[
            "trial",
            "label",
            "seed",
            "n",
            "m",
            "Δ",
            "bits A→B",
            "bits B→A",
            "total",
            "rounds",
            "colors",
            "ok",
        ]);
        for (i, r) in self.trials.iter().enumerate() {
            t.row(&[
                &i.to_string(),
                &r.label,
                &r.seed.to_string(),
                &r.n.to_string(),
                &r.m.to_string(),
                &r.delta.to_string(),
                &r.bits_alice_to_bob.to_string(),
                &r.bits_bob_to_alice.to_string(),
                &r.total_bits().to_string(),
                &r.rounds.to_string(),
                &r.colors_used.to_string(),
                if r.valid { "✓" } else { "✗" },
            ]);
        }
        let s = &self.summary;
        format!(
            "{}\n{}: {}/{} valid · bits {:.1} ± {:.1} (max {:.0}) · rounds {:.1} ± {:.1} (max {:.0}) · bits/n {:.2}\n",
            t.render(),
            self.protocol,
            s.valid,
            s.trials,
            s.total_bits.mean,
            s.total_bits.stddev,
            s.total_bits.max,
            s.rounds.mean,
            s.rounds.stddev,
            s.rounds.max,
            s.bits_per_vertex.mean,
        )
    }

    /// Serializes the full report (trials + summary) as JSON.
    pub fn to_json(&self) -> String {
        let mut w = crate::json::Writer::object();
        w.field_str("protocol", &self.protocol);
        w.field_raw("summary", &{
            let mut s = crate::json::Writer::object();
            s.field_u64("trials", self.summary.trials as u64);
            s.field_u64("valid", self.summary.valid as u64);
            s.field_raw("total_bits", &aggregate_json(&self.summary.total_bits));
            s.field_raw("rounds", &aggregate_json(&self.summary.rounds));
            s.field_raw(
                "bits_per_vertex",
                &aggregate_json(&self.summary.bits_per_vertex),
            );
            s.field_raw("colors", &aggregate_json(&self.summary.colors));
            if !self.summary.metrics.is_empty() {
                let mut m = crate::json::Writer::object();
                for (k, a) in &self.summary.metrics {
                    m.field_raw(k, &aggregate_json(a));
                }
                s.field_raw("metrics", &m.finish());
            }
            s.finish()
        });
        let trials: Vec<String> = self
            .trials
            .iter()
            .map(|t| {
                let mut o = crate::json::Writer::object();
                o.field_str("label", &t.label);
                o.field_u64("seed", t.seed);
                o.field_u64("n", t.n as u64);
                o.field_u64("m", t.m as u64);
                o.field_u64("delta", t.delta as u64);
                o.field_u64("bits_alice_to_bob", t.bits_alice_to_bob);
                o.field_u64("bits_bob_to_alice", t.bits_bob_to_alice);
                o.field_u64("rounds", t.rounds);
                o.field_u64("colors_used", t.colors_used as u64);
                match t.palette_budget {
                    Some(b) => o.field_u64("palette_budget", b as u64),
                    None => o.field_null("palette_budget"),
                }
                o.field_bool("valid", t.valid);
                match &t.error {
                    Some(e) => o.field_str("error", e),
                    None => o.field_null("error"),
                }
                if !t.metrics.is_empty() {
                    let mut m = crate::json::Writer::object();
                    for (k, &v) in &t.metrics {
                        m.field_f64(k, v);
                    }
                    o.field_raw("metrics", &m.finish());
                }
                o.finish()
            })
            .collect();
        w.field_raw("trials", &format!("[{}]", trials.join(",")));
        w.finish()
    }
}

fn aggregate_json(a: &Aggregate) -> String {
    let mut w = crate::json::Writer::object();
    w.field_f64("mean", a.mean);
    w.field_f64("stddev", a.stddev);
    w.field_f64("min", a.min);
    w.field_f64("max", a.max);
    w.finish()
}
