//! Plain-text table rendering for [`crate::Report`]s (right-aligned
//! columns, same look as the experiment binaries' tables).

/// A plain-text table with right-aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header's.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Renders to an aligned string (with trailing newline).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let width = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| width(h)).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(width(&row[c]));
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&" ".repeat(widths[c] - width(cell)));
                line.push_str(cell);
            }
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["col", "n"]);
        t.row(&["x", "12345"]).row(&["longer", "7"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("12345"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_arity() {
        Table::new(&["a"]).row(&["1", "2"]);
    }
}
