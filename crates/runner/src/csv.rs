//! A minimal RFC-4180-style CSV writer (the offline environment has
//! no `csv` crate). Fields containing commas, quotes, or newlines are
//! quoted — graph-spec labels like `near-regular(n=80,d=6)` need it —
//! and row arity is checked against the header.

/// Builder for one CSV document.
#[derive(Debug)]
pub struct Csv {
    columns: usize,
    buf: String,
}

impl Csv {
    /// Starts a document with the given header row.
    pub fn new(header: &[&str]) -> Self {
        let mut csv = Csv {
            columns: header.len(),
            buf: String::new(),
        };
        csv.raw_row(header);
        csv
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, fields: &[&str]) {
        assert_eq!(
            fields.len(),
            self.columns,
            "CSV row arity {} does not match header arity {}",
            fields.len(),
            self.columns
        );
        self.raw_row(fields);
    }

    fn raw_row(&mut self, fields: &[&str]) {
        for (i, field) in fields.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&escape(field));
        }
        self.buf.push('\n');
    }

    /// The document text (header + rows, `\n` line endings).
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Quotes a field if (and only if) it needs quoting.
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_only_when_needed() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn builds_a_document() {
        let mut csv = Csv::new(&["name", "value"]);
        csv.row(&["near-regular(n=80,d=6)", "42"]);
        assert_eq!(csv.finish(), "name,value\n\"near-regular(n=80,d=6)\",42\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        Csv::new(&["a"]).row(&["1", "2"]);
    }
}
