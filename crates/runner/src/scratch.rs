//! Per-worker validation scratch.
//!
//! Every trial the executor runs ends in a validator pass
//! ([`crate::Outcome::edge`] / [`crate::Outcome::vertex`]). The
//! scratch those validators need — the timestamp-marked
//! [`ColorMarks`] buffers — lives here in one thread-local slot, so
//! it is allocated **once per worker thread** and reused by every
//! trial that worker executes, not rebuilt per trial. Serial and
//! parallel execution both route through it: `exec::execute`'s trial
//! closure runs on whichever thread owns the work item, and that
//! thread's scratch services the validation.
//!
//! `exec`'s `validator_scratch_is_reused_across_trials` test pins the
//! contract: after a warm-up run, a whole second run of the queue
//! must leave the scratch's allocation counter untouched.

use bichrome_graph::coloring::ColorMarks;
use std::cell::RefCell;

/// The buffers a worker reuses across the trials it executes.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Edge-coloring validator scratch (one slot per color).
    pub marks: ColorMarks,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with the calling worker's scratch.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_stable_per_thread() {
        // Growing in one closure is visible in the next: same slot.
        let before = with_scratch(|s| s.marks.allocations());
        let g = bichrome_graph::gen::cycle(6);
        let c = bichrome_graph::greedy::greedy_edge_coloring(&g);
        with_scratch(|s| {
            s.marks
                .check_edge_coloring(&g, &c)
                .expect("cycle coloring valid");
        });
        let after = with_scratch(|s| s.marks.allocations());
        assert!(after >= before);
    }
}
