//! The one shared trial executor behind both [`crate::TrialPlan`]
//! (a single cell) and [`crate::Campaign`] (a whole grid).
//!
//! Work arrives as a *flat* queue of [`WorkItem`]s — the campaign
//! layer flattens its cross-product of cells × seeds into this queue
//! rather than nesting per-plan parallelism, so one `par_iter` fans
//! the entire grid across worker threads. Every item's randomness
//! derives only from its own cell and seed, so the parallel and
//! serial schedules produce bit-identical records.
//!
//! # Lazy, shared instance materialization
//!
//! A work item does not carry a pre-built [`Instance`]; it carries a
//! lazy *descriptor* (`spec` + `partitioner` + trial seed) that the
//! worker resolves right before running the protocol, through a
//! sharded concurrent cache:
//!
//! ```text
//! (spec, graph_seed)              → Arc<Graph>
//! (spec, graph_seed, partitioner) → Arc<EdgePartition>
//! ```
//!
//! This fixes three problems of eager construction at once: setup
//! work happens *on* the worker threads instead of serially before
//! them; at most one materialized graph/partition exists per distinct
//! key instead of one per trial (a P-protocol grid runs all P
//! protocols on the *same* `Arc`s, which is also the campaign's
//! apples-to-apples contract); and memory is bounded by the number of
//! distinct instances, not the number of trials.
//!
//! Cache hits are bit-identical to fresh builds — generators are
//! deterministic per seed and every build happens exactly once per
//! key (a per-key [`OnceLock`]), so lazy/cached execution equals an
//! eager uncached build record for record. [`ExecStats`] reports the
//! dedup win (`graphs_built` vs `graphs_requested`) and the
//! setup-vs-execute worker-time split (cumulative across threads, so
//! it can exceed wall time under parallelism).

use crate::instance::{GraphSpec, Instance};
use crate::plan::TrialRecord;
use crate::protocol::Protocol;
use crate::seeds;
use bichrome_graph::partition::{EdgePartition, Partitioner};
use bichrome_graph::Graph;
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Where a work item's instance comes from.
pub(crate) enum WorkSource {
    /// Lazy: resolved inside the worker through the shared instance
    /// cache. Graph, partition, and protocol sub-seeds derive from
    /// `trial_seed` via [`crate::seeds`].
    Lazy {
        /// The graph family to build.
        spec: GraphSpec,
        /// The edge partitioner to split it with.
        partitioner: Partitioner,
        /// The trial seed every sub-stream derives from.
        trial_seed: u64,
    },
    /// A pre-built instance, passed through untouched (the
    /// [`crate::TrialPlan::instances`] escape hatch).
    Ready(Instance),
}

/// One unit of work: run `protocol` on the instance described by
/// `source`. The queue is cell-major, so callers recover per-cell
/// grouping by chunking the returned records.
pub(crate) struct WorkItem {
    /// The protocol to execute.
    pub protocol: Arc<dyn Protocol>,
    /// The instance to run it on (usually lazy — see [`WorkSource`]).
    pub source: WorkSource,
    /// Advisory intra-trial thread budget, installed as the ambient
    /// [`bichrome_comm::intra_budget`] around `Protocol::run` so the
    /// protocol layers can parallelize *inside* the trial. Derived
    /// from queue occupancy by [`assign_budgets`]; purely a scheduling
    /// hint — records are bit-identical at any value.
    pub threads: usize,
}

/// Thread budget each trial of a `pending`-item queue gets on a
/// machine with `workers` worker threads: the leftover capacity
/// divided evenly, at least 1. A campaign of 4 giant cells on 16
/// cores hands each trial 4 threads; a 1000-cell grid stays at
/// 1 thread per trial.
pub(crate) fn intra_trial_budget(pending: usize, workers: usize) -> usize {
    workers.checked_div(pending).unwrap_or(workers).max(1)
}

/// Installs each item's intra-trial thread budget: queue occupancy
/// divided into the worker pool under parallel execution, the whole
/// machine per trial under serial execution (trials then run one at a
/// time, so each may saturate it).
pub(crate) fn assign_budgets(queue: &mut [WorkItem], parallel: bool) {
    let workers = rayon::current_num_threads();
    let budget = if parallel {
        intra_trial_budget(queue.len(), workers)
    } else {
        workers.max(1)
    };
    for item in queue {
        item.threads = budget;
    }
}

/// Counters and timings from one executor run — how much instance
/// materialization was deduplicated by the cache, how the wall time
/// split between building instances and running protocols, and (when
/// a campaign ran against a persistent store) how many trials were
/// served from disk instead of being recomputed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Trials actually executed by this run.
    pub trials_computed: u64,
    /// Trials skipped because the campaign's persistent store already
    /// held their record (0 when no store is attached).
    pub trials_skipped: u64,
    /// Lazy trials that needed a graph (one per lazy work item).
    pub graphs_requested: u64,
    /// Graphs actually built — exactly one per distinct
    /// `(spec, graph_seed)` key.
    pub graphs_built: u64,
    /// Lazy trials that needed an edge partition.
    pub partitions_requested: u64,
    /// Partitions actually built — exactly one per distinct
    /// `(spec, graph_seed, partitioner)` key.
    pub partitions_built: u64,
    /// Cumulative nanoseconds spent *building* graphs and partitions
    /// (cache misses only), summed across threads. Waiting on another
    /// worker's in-flight build is deliberately not counted, so a
    /// build shared by many trials contributes its cost once, not
    /// once per waiter.
    pub setup_nanos: u64,
    /// Cumulative nanoseconds workers spent inside `Protocol::run`,
    /// summed across threads.
    pub run_nanos: u64,
    /// Largest intra-trial thread budget any item of the run carried
    /// (1 when every trial ran single-threaded inside).
    pub intra_threads: u64,
}

impl ExecStats {
    /// Fraction of graph requests served from cache (0 when nothing
    /// was requested).
    pub fn graph_cache_hit_rate(&self) -> f64 {
        if self.graphs_requested == 0 {
            0.0
        } else {
            1.0 - self.graphs_built as f64 / self.graphs_requested as f64
        }
    }

    /// Fraction of partition requests served from cache (0 when
    /// nothing was requested).
    pub fn partition_cache_hit_rate(&self) -> f64 {
        if self.partitions_requested == 0 {
            0.0
        } else {
            1.0 - self.partitions_built as f64 / self.partitions_requested as f64
        }
    }
}

/// The human-readable one-liner the experiment binaries and the CLI
/// print after a run. The phrase `computed N trials` is load-bearing:
/// CI greps for `computed 0 trials` to assert a warm-store run did no
/// work.
impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exec: computed {} trials ({} skipped via store) · graphs built {}/{} \
             ({:.0}% cache hits) · partitions built {}/{} ({:.0}% cache hits) · \
             setup {:.3}s vs execute {:.3}s worker time · intra-trial threads ≤ {}",
            self.trials_computed,
            self.trials_skipped,
            self.graphs_built,
            self.graphs_requested,
            100.0 * self.graph_cache_hit_rate(),
            self.partitions_built,
            self.partitions_requested,
            100.0 * self.partition_cache_hit_rate(),
            self.setup_nanos as f64 / 1e9,
            self.run_nanos as f64 / 1e9,
            self.intra_threads.max(1),
        )
    }
}

/// Shard count of the concurrent caches (a small power of two; keys
/// hash-distribute across shards to keep lock contention low).
const SHARDS: usize = 16;

/// A sharded `key → value` cache with exactly-once construction:
/// the shard lock is held only to look up the per-key cell, and the
/// build itself runs under the cell's [`OnceLock`], so concurrent
/// builds of *different* keys in the same shard do not serialize and
/// the same key is never built twice.
struct Sharded<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
    requested: AtomicU64,
    built: AtomicU64,
    build_nanos: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Sharded<K, V> {
    fn new() -> Self {
        Sharded {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            requested: AtomicU64::new(0),
            built: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
        }
    }

    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        self.requested.fetch_add(1, Ordering::Relaxed);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[hasher.finish() as usize % SHARDS];
        let cell = {
            let mut map = shard.lock().expect("cache shard poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(|| {
            // Time only the build itself: workers blocked here on
            // another thread's in-flight build must not re-bill it.
            let started = Instant::now();
            self.built.fetch_add(1, Ordering::Relaxed);
            let value = build();
            self.build_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            value
        })
        .clone()
    }
}

/// Cache key of a materialized graph. The spec is keyed by its
/// canonical `Display` form (which round-trips every parameter,
/// including `p`).
#[derive(PartialEq, Eq, Hash)]
struct GraphKey {
    spec: String,
    graph_seed: u64,
}

/// Cache key of a materialized edge partition.
#[derive(PartialEq, Eq, Hash)]
struct PartitionKey {
    spec: String,
    graph_seed: u64,
    partitioner: Partitioner,
}

/// Cumulative counters of one [`InstanceCache`]: how much instance
/// materialization was deduplicated, and the time spent on actual
/// builds (cache misses only, summed across threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lazy trials that needed a graph.
    pub graphs_requested: u64,
    /// Graphs actually built — exactly one per distinct
    /// `(spec, graph_seed)` key.
    pub graphs_built: u64,
    /// Lazy trials that needed an edge partition.
    pub partitions_requested: u64,
    /// Partitions actually built — exactly one per distinct
    /// `(spec, graph_seed, partitioner)` key.
    pub partitions_built: u64,
    /// Cumulative nanoseconds spent building (cache misses only).
    pub setup_nanos: u64,
}

/// The shared `(spec, seed) → Arc<Graph>` / partition cache trials
/// resolve their instances through. One is created per `execute`
/// call for one-shot runs; a long-lived service (the `bichrome`
/// daemon) keeps a single cache at process scope so concurrent
/// overlapping campaigns build each distinct instance exactly once
/// between them.
pub struct InstanceCache {
    graphs: Sharded<GraphKey, Arc<Graph>>,
    partitions: Sharded<PartitionKey, Arc<EdgePartition>>,
}

impl Default for InstanceCache {
    fn default() -> Self {
        InstanceCache::new()
    }
}

impl InstanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        InstanceCache {
            graphs: Sharded::new(),
            partitions: Sharded::new(),
        }
    }

    /// A snapshot of the cache's cumulative request/build counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            graphs_requested: self.graphs.requested.load(Ordering::Relaxed),
            graphs_built: self.graphs.built.load(Ordering::Relaxed),
            partitions_requested: self.partitions.requested.load(Ordering::Relaxed),
            partitions_built: self.partitions.built.load(Ordering::Relaxed),
            setup_nanos: self.graphs.build_nanos.load(Ordering::Relaxed)
                + self.partitions.build_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resolves one lazy descriptor to an [`Instance`], building the
    /// graph and partition at most once per distinct key. The result
    /// is bit-identical to [`Instance::from_spec`] on the same
    /// arguments.
    fn instance(&self, spec: &GraphSpec, partitioner: Partitioner, trial_seed: u64) -> Instance {
        let label = spec.to_string();
        let graph_seed = seeds::graph_seed(trial_seed);
        let graph = self.graphs.get_or_build(
            GraphKey {
                spec: label.clone(),
                graph_seed,
            },
            || Arc::new(spec.build(graph_seed)),
        );
        let partition = self.partitions.get_or_build(
            PartitionKey {
                spec: label.clone(),
                graph_seed,
                partitioner,
            },
            || Arc::new(partitioner.split(&graph)),
        );
        Instance {
            label,
            partition,
            trial_seed,
            seed: seeds::protocol_seed(trial_seed),
        }
    }
}

/// A per-record completion hook: called with `(queue index, record)`
/// on the worker thread that finished the trial, *before* the run as
/// a whole completes — this is how the campaign store flushes records
/// as workers finish, so a killed run keeps everything already done.
/// Must be `Sync`: under parallel execution it runs concurrently.
pub(crate) type RecordHook<'a> = &'a (dyn Fn(usize, &TrialRecord) + Sync);

/// Executes the whole queue — `par_iter` across *all* items when
/// `parallel` — and returns one record per item, in queue order, plus
/// the run's [`ExecStats`]. Records are bit-identical regardless of
/// `parallel` and of cache hit/miss patterns. `on_record`, if given,
/// observes every record as its worker finishes it (indexed by queue
/// position; invocation *order* across items is scheduling-dependent).
pub(crate) fn execute(
    queue: &[WorkItem],
    parallel: bool,
    on_record: Option<RecordHook<'_>>,
) -> (Vec<TrialRecord>, ExecStats) {
    let cache = InstanceCache::new();
    let run_nanos = AtomicU64::new(0);
    let trial = |&(i, item): &(usize, &WorkItem)| -> TrialRecord {
        let (record, nanos) = run_item(item, &cache);
        run_nanos.fetch_add(nanos, Ordering::Relaxed);
        if let Some(hook) = on_record {
            hook(i, &record);
        }
        record
    };
    let indexed: Vec<(usize, &WorkItem)> = queue.iter().enumerate().collect();
    let records = if parallel {
        indexed.par_iter().map(trial).collect()
    } else {
        indexed.iter().map(trial).collect()
    };
    let mut stats = stats_from(
        &cache,
        queue.len() as u64,
        run_nanos.load(Ordering::Relaxed),
    );
    stats.intra_threads = queue.iter().map(|it| it.threads as u64).max().unwrap_or(1);
    (records, stats)
}

/// Runs one work item against `cache`, returning the record and the
/// nanoseconds spent inside `Protocol::run`. This is the unit the
/// daemon's multiplexed executor schedules directly (one task per
/// pending trial), bypassing [`execute`]'s per-call queue.
pub(crate) fn run_item(item: &WorkItem, cache: &InstanceCache) -> (TrialRecord, u64) {
    let budget = item.threads as u64;
    let _trial_span = bichrome_obs::span_tagged("trial/run", "threads", budget);
    let resolved;
    let instance: &Instance = match &item.source {
        WorkSource::Ready(instance) => instance,
        WorkSource::Lazy {
            spec,
            partitioner,
            trial_seed,
        } => {
            let _setup_span = bichrome_obs::span_tagged("trial/setup", "threads", budget);
            resolved = cache.instance(spec, *partitioner, *trial_seed);
            &resolved
        }
    };
    let run_started = Instant::now();
    let outcome = {
        let _execute_span = bichrome_obs::span_tagged("trial/execute", "threads", budget);
        bichrome_comm::with_intra_budget(item.threads, || item.protocol.run(instance))
    };
    let record = TrialRecord::from_outcome(instance, outcome);
    let nanos = run_started.elapsed().as_nanos() as u64;
    trial_metrics().observe(nanos);
    (record, nanos)
}

/// The cached process-registry handle for per-trial execution time
/// (`bichrome_exec_trials_total` rides along as the histogram's
/// count; a separate counter keeps the family greppable on its own).
fn trial_metrics() -> &'static TrialMetrics {
    static METRICS: OnceLock<TrialMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TrialMetrics {
        trials: bichrome_obs::counter("bichrome_exec_trials_total"),
        trial_nanos: bichrome_obs::histogram("bichrome_exec_trial_nanos"),
    })
}

struct TrialMetrics {
    trials: bichrome_obs::Counter,
    trial_nanos: bichrome_obs::Histogram,
}

impl TrialMetrics {
    fn observe(&self, nanos: u64) {
        self.trials.inc();
        self.trial_nanos.observe(nanos);
    }
}

/// Assembles an [`ExecStats`] from a cache snapshot plus the caller's
/// trial count and cumulative protocol-run time.
pub(crate) fn stats_from(cache: &InstanceCache, trials_computed: u64, run_nanos: u64) -> ExecStats {
    let cs = cache.stats();
    ExecStats {
        trials_computed,
        trials_skipped: 0,
        graphs_requested: cs.graphs_requested,
        graphs_built: cs.graphs_built,
        partitions_requested: cs.partitions_requested,
        partitions_built: cs.partitions_built,
        setup_nanos: cs.setup_nanos,
        run_nanos,
        intra_threads: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    /// A queue repeating the same (spec, seed) column across several
    /// protocols — the shape whose redundancy the cache removes.
    fn shared_column_queue(protocols: &[&str], seeds: std::ops::Range<u64>) -> Vec<WorkItem> {
        let spec = GraphSpec::NearRegular { n: 24, d: 4 };
        let reg = registry();
        let mut queue = Vec::new();
        for key in protocols {
            for seed in seeds.clone() {
                queue.push(WorkItem {
                    protocol: reg.get(key).expect("registered"),
                    source: WorkSource::Lazy {
                        spec,
                        partitioner: Partitioner::Alternating,
                        trial_seed: seed,
                    },
                    threads: 1,
                });
            }
        }
        queue
    }

    #[test]
    fn each_distinct_graph_is_built_exactly_once() {
        let queue = shared_column_queue(
            &[
                "vertex/theorem1",
                "edge/theorem2",
                "baseline/send-everything",
            ],
            0..4,
        );
        for parallel in [false, true] {
            let (records, stats) = execute(&queue, parallel, None);
            assert_eq!(records.len(), 12);
            assert_eq!(stats.graphs_requested, 12, "parallel={parallel}");
            assert_eq!(stats.graphs_built, 4, "one graph per seed");
            assert_eq!(stats.partitions_requested, 12);
            assert_eq!(stats.partitions_built, 4, "one partition per seed");
            assert!(stats.graph_cache_hit_rate() > 0.6);
        }
    }

    #[test]
    fn cached_resolution_is_bit_identical_to_eager_from_spec() {
        let queue = shared_column_queue(&["edge/theorem2", "vertex/theorem1"], 0..3);
        let (records, _) = execute(&queue, true, None);
        let reg = registry();
        let spec = GraphSpec::NearRegular { n: 24, d: 4 };
        let mut i = 0;
        for key in ["edge/theorem2", "vertex/theorem1"] {
            let proto = reg.get(key).expect("registered");
            for seed in 0..3 {
                let inst = Instance::from_spec(&spec, Partitioner::Alternating, seed);
                let expected = TrialRecord::from_outcome(&inst, proto.run(&inst));
                assert_eq!(records[i], expected, "{key} seed {seed}");
                i += 1;
            }
        }
    }

    #[test]
    fn ready_items_pass_through_untouched() {
        let g = bichrome_graph::gen::cycle(8);
        let inst = Instance::new("ready", Partitioner::Alternating.split(&g), 7);
        let queue = vec![WorkItem {
            protocol: registry().get("edge/theorem2").expect("registered"),
            source: WorkSource::Ready(inst.clone()),
            threads: 1,
        }];
        let (records, stats) = execute(&queue, false, None);
        assert_eq!(records[0].seed, 7);
        assert_eq!(records[0].label, "ready");
        assert_eq!(stats.graphs_requested, 0, "no lazy resolution happened");
        assert_eq!(stats.graphs_built, 0);
    }

    #[test]
    fn stats_time_split_covers_the_run() {
        let queue = shared_column_queue(&["vertex/theorem1"], 0..2);
        let (_, stats) = execute(&queue, false, None);
        assert!(stats.run_nanos > 0, "protocol runs take measurable time");
        assert!(stats.setup_nanos > 0, "two graphs were actually built");
    }

    #[test]
    fn validator_scratch_is_reused_across_trials() {
        // Zero per-trial allocation in the validator pass: after a
        // warm-up run, re-executing the whole queue must not grow the
        // per-worker ColorMarks scratch at all. Serial execution keeps
        // every trial (and therefore every validation) on this thread,
        // so this thread's scratch counter is the whole story.
        let queue = shared_column_queue(
            &[
                "edge/theorem2",
                "edge/theorem3-zero-comm",
                "edge/lemma5.1-bounded",
            ],
            0..4,
        );
        let (_, _) = execute(&queue, false, None);
        let warm = crate::scratch::with_scratch(|s| s.marks.allocations());
        let (records, _) = execute(&queue, false, None);
        assert_eq!(records.len(), 12);
        let after = crate::scratch::with_scratch(|s| s.marks.allocations());
        assert_eq!(
            after, warm,
            "a warm worker scratch must validate trial after trial without allocating"
        );
    }
}
