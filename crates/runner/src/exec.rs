//! The one shared trial executor behind both [`crate::TrialPlan`]
//! (a single cell) and [`crate::Campaign`] (a whole grid).
//!
//! Work arrives as a *flat* queue of `(protocol, instance)` items —
//! the campaign layer flattens its cross-product of cells × seeds
//! into this queue rather than nesting per-plan parallelism, so one
//! `par_iter` fans the entire grid across worker threads. Every
//! item's randomness derives only from its own instance, so the
//! parallel and serial schedules produce bit-identical records.

use crate::instance::Instance;
use crate::plan::TrialRecord;
use crate::protocol::Protocol;
use rayon::prelude::*;
use std::sync::Arc;

/// One unit of work: run `protocol` on `instance`. The queue is
/// cell-major, so callers recover per-cell grouping by chunking the
/// returned records.
pub(crate) struct WorkItem {
    /// The protocol to execute.
    pub protocol: Arc<dyn Protocol>,
    /// The input instance.
    pub instance: Instance,
}

/// Executes the whole queue — `par_iter` across *all* items when
/// `parallel` — and returns one record per item, in queue order.
pub(crate) fn execute(queue: &[WorkItem], parallel: bool) -> Vec<TrialRecord> {
    let trial = |item: &WorkItem| -> TrialRecord {
        let outcome = item.protocol.run(&item.instance);
        TrialRecord::from_outcome(&item.instance, outcome)
    };
    if parallel {
        queue.par_iter().map(trial).collect()
    } else {
        queue.iter().map(trial).collect()
    }
}
