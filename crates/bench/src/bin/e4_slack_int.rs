//! **E4** — the `k-Slack-Int` cost curve (Lemma A.2 / Lemma 3.1):
//! regenerates the EXPERIMENTS.md cost-vs-slack table — expected bits
//! `O(log²((m+1)/k))` and rounds `O(log((m+1)/k))` over a slack sweep
//! at fixed universe size.
//!
//! Driven by the one-line campaign
//! `Campaign::new().protocols(ks.map(SlackIntProbe::new)).graphs([empty(n=1)]).seeds(0..25)` —
//! the slack sweep is the protocol axis; the probe's verdict checks
//! every found element really is free.

use bichrome_bench::Table;
use bichrome_runner::probes::{unit_graph, SlackIntProbe};
use bichrome_runner::{Campaign, Protocol};
use std::sync::Arc;

fn main() {
    println!("E4: k-Slack-Int — cost vs slack (Lemma A.2)\n");
    let m = 1024usize;
    let slacks = [1023usize, 512, 256, 64, 16, 4, 1];

    let report = Campaign::new()
        .protocols(
            slacks
                .iter()
                .map(|&k| Arc::new(SlackIntProbe::new(m, k)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds(0..25)
        .run();
    assert!(
        report.all_valid(),
        "every found element must be outside both sets"
    );

    let mut t = Table::new(&[
        "k (slack)",
        "log²((m+1)/k)",
        "bits mean",
        "bits sd",
        "rounds mean",
    ]);
    for (cell, &k) in report.cells.iter().zip(&slacks) {
        let s = cell.summary();
        t.row(&[
            &k.to_string(),
            &format!("{:.1}", s.metric("predicted_bits_scale").mean),
            &format!("{:.1}", s.total_bits.mean),
            &format!("{:.1}", s.total_bits.stddev),
            &format!("{:.1}", s.rounds.mean),
        ]);
    }
    t.print();
    println!(
        "\nClaim check: measured bits track the log²((m+1)/k) column up to a \
         constant factor — tight instances (k = 1) cost polylog(m), loose \
         ones (k ≈ m) cost O(1)."
    );
}
