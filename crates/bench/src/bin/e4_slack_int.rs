//! **E4** — the `k-Slack-Int` cost curve (Lemma A.2 / Lemma 3.1):
//! expected bits `O(log²((m+1)/k))` and rounds `O(log((m+1)/k))`,
//! measured over a slack sweep at fixed universe size.

use bichrome_bench::{mean, stddev, Table};
use bichrome_core::slack_int::run_slack_int_session;

fn main() {
    println!("E4: k-Slack-Int — cost vs slack (Lemma A.2)\n");
    let m = 1024usize;
    let reps = 25u64;
    let mut t = Table::new(&[
        "k (slack)",
        "log²((m+1)/k)",
        "bits mean",
        "bits sd",
        "rounds mean",
    ]);
    for &k in &[1023usize, 512, 256, 64, 16, 4, 1] {
        // |X| + |Y| = m − k exactly: X takes the low half of the
        // occupied range, Y the high half.
        let occupied = m - k;
        let x: Vec<u64> = (0..(occupied as u64) / 2).collect();
        let y: Vec<u64> = ((occupied as u64) / 2..occupied as u64).collect();
        let mut bits = Vec::new();
        let mut rounds = Vec::new();
        for seed in 0..reps {
            let (e, stats) = run_slack_int_session(m, &x, &y, seed * 31 + k as u64);
            assert!(
                e >= occupied as u64,
                "found element must be outside both sets"
            );
            bits.push(stats.total_bits() as f64);
            rounds.push(stats.rounds as f64);
        }
        let ratio = ((m + 1) as f64 / k as f64).log2().powi(2);
        t.row(&[
            &k.to_string(),
            &format!("{ratio:.1}"),
            &format!("{:.1}", mean(&bits)),
            &format!("{:.1}", stddev(&bits)),
            &format!("{:.1}", mean(&rounds)),
        ]);
    }
    t.print();
    println!(
        "\nClaim check: measured bits track the log²((m+1)/k) column up to a \
         constant factor — tight instances (k = 1) cost polylog(m), loose \
         ones (k ≈ m) cost O(1)."
    );
}
