//! **E8** — the learning reduction (§2.3): Bob reconstructs Alice's
//! n-bit string from any `(Δ+1)`-coloring of the C4-gadget graph, so
//! protocols must pay Ω(n) bits. Measures recovery accuracy and the
//! protocol bits actually spent as n grows.

use bichrome_bench::Table;
use bichrome_lb::learning::run_learning_reduction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E8: learning-problem reduction for (Δ+1)-vertex coloring (§2.3)\n");
    let mut t = Table::new(&[
        "string bits n",
        "gadget vertices",
        "recovered ok",
        "protocol bits",
        "bits per learned bit",
    ]);
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let (recovered, comm) = run_learning_reduction(&bits, 9);
        let ok = recovered == bits;
        t.row(&[
            &n.to_string(),
            &(4 * n).to_string(),
            if ok { "yes" } else { "NO" },
            &comm.to_string(),
            &format!("{:.1}", comm as f64 / n as f64),
        ]);
        assert!(ok, "recovery must always succeed");
    }
    t.print();
    println!(
        "\nClaim check: recovery always succeeds — a correct protocol \
         necessarily transfers Alice's n bits to Bob, so its communication \
         is Ω(n) (Flin–Mittal's lower bound, reproduced constructively). \
         The measured bits grow linearly in n, matching Theorem 1's O(n) \
         upper bound from above."
    );
}
