//! **E8** — the learning reduction (§2.3): regenerates the
//! EXPERIMENTS.md recovery table — Bob reconstructs Alice's n-bit
//! string from any `(Δ+1)`-coloring of the C4-gadget graph, so
//! protocols must pay Ω(n) bits.
//!
//! Driven by the one-line campaign
//! `Campaign::new().protocols(ns.map(LearningProbe::new)).graphs([empty(n=1)]).seeds(0..3)`;
//! the probe's verdict *is* the recovery check, so `all_valid()`
//! asserts recovery always succeeds.

use bichrome_bench::Table;
use bichrome_runner::probes::{unit_graph, LearningProbe};
use bichrome_runner::{Campaign, Protocol};
use std::sync::Arc;

fn main() {
    println!("E8: learning-problem reduction for (Δ+1)-vertex coloring (§2.3)\n");
    let sizes = [8usize, 16, 32, 64, 128, 256];

    let report = Campaign::new()
        .protocols(
            sizes
                .iter()
                .map(|&n| Arc::new(LearningProbe::new(n)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds(0..3)
        .run();
    assert!(report.all_valid(), "recovery must always succeed");

    let mut t = Table::new(&[
        "string bits n",
        "gadget vertices",
        "recovered ok",
        "protocol bits",
        "bits per learned bit",
    ]);
    for (cell, &n) in report.cells.iter().zip(&sizes) {
        let s = cell.summary();
        t.row(&[
            &n.to_string(),
            &format!("{:.0}", s.metric("gadget_vertices").mean),
            if s.valid == s.trials { "yes" } else { "NO" },
            &format!("{:.0}", s.total_bits.mean),
            &format!("{:.1}", s.metric("bits_per_learned_bit").mean),
        ]);
    }
    t.print();
    println!(
        "\nClaim check: recovery always succeeds — a correct protocol \
         necessarily transfers Alice's n bits to Bob, so its communication \
         is Ω(n) (Flin–Mittal's lower bound, reproduced constructively). \
         The measured bits grow linearly in n, matching Theorem 1's O(n) \
         upper bound from above."
    );
}
