//! **bench-campaign** — the repo's perf-trajectory benchmark: runs a
//! fixed smoke grid (every registry protocol × 3 graph families ×
//! 4 seeds) through the campaign executor and writes
//! `BENCH_campaign.json` — cells/sec, trials/sec, total bits, wall
//! time — so CI can chart orchestration throughput across PRs.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_campaign [out.json]
//! ```

use bichrome_runner::{registry, Campaign, GraphSpec};
use std::time::Instant;

/// The fixed smoke grid: small enough for CI, wide enough to touch
/// every protocol and the three main graph families.
fn smoke_grid() -> Campaign {
    Campaign::new()
        .protocol_keys(registry().names())
        .graphs([
            GraphSpec::NearRegular { n: 64, d: 6 },
            GraphSpec::Gnp { n: 64, p: 0.1 },
            GraphSpec::GnmMaxDegree {
                n: 64,
                m: 160,
                dmax: 8,
            },
        ])
        .seeds(0..4)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let campaign = smoke_grid();
    let cells = campaign.cell_count();
    println!("bench-campaign: running the {cells}-cell smoke grid...");

    let started = Instant::now();
    let report = campaign.run();
    let wall = started.elapsed();

    assert!(
        report.all_valid(),
        "the smoke grid must be validator-valid:\n{}",
        report.render_table()
    );
    let wall_secs = wall.as_secs_f64();
    let trials = report.total_trials();

    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "campaign-smoke-grid");
    w.field_u64("cells", report.cells.len() as u64);
    w.field_u64("trials", trials as u64);
    w.field_u64("total_bits", report.total_bits());
    w.field_bool("all_valid", true);
    w.field_f64("wall_seconds", wall_secs);
    w.field_f64("cells_per_sec", report.cells.len() as f64 / wall_secs);
    w.field_f64("trials_per_sec", trials as f64 / wall_secs);
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("{}", report.render_table());
    println!(
        "wall {wall_secs:.3}s · {:.1} cells/sec · {:.1} trials/sec → {out_path}",
        report.cells.len() as f64 / wall_secs,
        trials as f64 / wall_secs,
    );
}
