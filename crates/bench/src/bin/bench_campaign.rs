//! **bench-campaign** — the repo's perf-trajectory benchmark: runs a
//! fixed smoke grid (every registry protocol × 3 graph families ×
//! 4 seeds) through the campaign executor and writes
//! `BENCH_campaign.json` — cells/sec, trials/sec, total bits, wall
//! time, the setup-vs-execute split, the instance-cache dedup
//! counters (`graphs_built` vs `graphs_requested`), and the
//! persistent-store cold-vs-warm timings (a cold run populates a
//! fresh store; the warm re-run must skip every trial) — so CI can
//! chart orchestration throughput across PRs.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_campaign [out.json]
//! ```

use bichrome_runner::{registry, Campaign, GraphSpec};
use std::ops::Range;
use std::time::Instant;

/// The smoke grid's graph families — shared by the grid builder and
/// the exactly-once-build assertion so they can't drift apart.
const GRAPHS: [GraphSpec; 3] = [
    GraphSpec::NearRegular { n: 64, d: 6 },
    GraphSpec::Gnp { n: 64, p: 0.1 },
    GraphSpec::GnmMaxDegree {
        n: 64,
        m: 160,
        dmax: 8,
    },
];

/// The smoke grid's trial seeds.
const SEEDS: Range<u64> = 0..4;

/// The fixed smoke grid: small enough for CI, wide enough to touch
/// every protocol and the three main graph families.
fn smoke_grid() -> Campaign {
    Campaign::new()
        .protocol_keys(registry().names())
        .graphs(GRAPHS)
        .seeds(SEEDS)
}

/// The grid's distinct (spec, seed) instance columns. With lazy
/// cached materialization each column is built exactly once, however
/// many protocols share it.
fn distinct_instances() -> u64 {
    (GRAPHS.len() as u64) * (SEEDS.end - SEEDS.start)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let campaign = smoke_grid();
    let cells = campaign.cell_count();
    println!("bench-campaign: running the {cells}-cell smoke grid...");

    let started = Instant::now();
    let (report, stats) = campaign.run_with_stats();
    let wall = started.elapsed();

    assert!(
        report.all_valid(),
        "the smoke grid must be validator-valid:\n{}",
        report.render_table()
    );
    assert_eq!(
        stats.graphs_built,
        distinct_instances(),
        "each (spec, seed) graph must be built exactly once"
    );
    assert_eq!(
        stats.partitions_built,
        distinct_instances(),
        "each (spec, seed, partitioner) split must be built exactly once"
    );
    let wall_secs = wall.as_secs_f64();
    let trials = report.total_trials();
    let setup_secs = stats.setup_nanos as f64 / 1e9;
    let execute_secs = stats.run_nanos as f64 / 1e9;

    // Store trajectory: cold (computes + persists the whole grid)
    // vs warm (every trial served from disk, zero computed).
    let store_dir =
        std::env::temp_dir().join(format!("bichrome-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let started = Instant::now();
    let (cold_report, cold_stats) = smoke_grid().with_store(&store_dir).run_with_stats();
    let store_cold_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let (warm_report, warm_stats) = smoke_grid().with_store(&store_dir).run_with_stats();
    let store_warm_secs = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&store_dir);
    assert_eq!(cold_report, report, "a cold store must not change results");
    assert_eq!(
        warm_report, report,
        "a warm store must reproduce bit-identically"
    );
    assert_eq!(
        cold_stats.trials_computed as usize, trials,
        "the cold run computes the whole grid"
    );
    assert_eq!(
        warm_stats.trials_computed, 0,
        "the warm run must skip every trial"
    );
    assert_eq!(warm_stats.trials_skipped as usize, trials);

    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "campaign-smoke-grid");
    w.field_u64("cells", report.cells.len() as u64);
    w.field_u64("trials", trials as u64);
    w.field_u64("total_bits", report.total_bits());
    w.field_bool("all_valid", true);
    w.field_f64("wall_seconds", wall_secs);
    w.field_f64("cells_per_sec", report.cells.len() as f64 / wall_secs);
    w.field_f64("trials_per_sec", trials as f64 / wall_secs);
    // Setup-vs-execute split (cumulative worker time, summed across
    // threads — may exceed wall time under parallelism; setup counts
    // actual builds only, never time blocked on a shared build).
    w.field_f64("setup_seconds", setup_secs);
    w.field_f64("execute_seconds", execute_secs);
    // Instance-cache dedup: the trajectory CI charts hits winning.
    w.field_u64("graphs_requested", stats.graphs_requested);
    w.field_u64("graphs_built", stats.graphs_built);
    w.field_u64("partitions_requested", stats.partitions_requested);
    w.field_u64("partitions_built", stats.partitions_built);
    w.field_f64("graph_cache_hit_rate", stats.graph_cache_hit_rate());
    // Persistent-store trajectory: cold populate vs warm all-skipped.
    w.field_f64("store_cold_seconds", store_cold_secs);
    w.field_f64("store_warm_seconds", store_warm_secs);
    w.field_u64("store_warm_trials_skipped", warm_stats.trials_skipped);
    w.field_u64("store_warm_trials_computed", warm_stats.trials_computed);
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("{}", report.render_table());
    println!(
        "wall {wall_secs:.3}s · {:.1} cells/sec · {:.1} trials/sec → {out_path}",
        report.cells.len() as f64 / wall_secs,
        trials as f64 / wall_secs,
    );
    println!("{stats}");
    println!(
        "store: cold {store_cold_secs:.3}s → warm {store_warm_secs:.3}s · warm run: {warm_stats}"
    );
}
