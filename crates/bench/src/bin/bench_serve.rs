//! **bench-serve** — the daemon + store-format benchmark: writes
//! `BENCH_serve.json` so CI can chart three things across PRs:
//!
//! 1. **Daemon throughput.** A real daemon on a Unix socket, driven
//!    by 1 / 4 / 16 concurrent socket clients submitting disjoint
//!    seed windows of the same grid — jobs/sec and trials/sec per
//!    client count.
//! 2. **Warm-store open.** Authors the *same* 10⁵-record store in
//!    both formats — a legacy v1 `trials.jsonl` and the v2 binary
//!    segments — and times `Store::open_existing` on each
//!    (best-of-3). The v2 binary decode must beat the v1 JSON-line
//!    parse; the binary asserts it.
//! 3. **Write batching.** Appends the same record stream with
//!    `flush_every` 1 (per-record flush, the v1-era behavior) vs 64
//!    (the daemon default) and records both timings.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_serve [out.json]
//! ```

use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, Listener};
use bichrome_store::{v1, Store, StoreConfig, TrialKey};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Records authored into the open-timing stores (one per key).
const OPEN_RECORDS: u64 = 100_000;

/// Records appended in each write-batching pass.
const BATCH_RECORDS: u64 = 20_000;

/// Jobs submitted per client-count scale (split evenly across the
/// clients), each a disjoint 4-seed window → nothing is served warm.
const JOBS_PER_SCALE: u64 = 16;

/// Trials per submitted job (one protocol × one graph × 4 seeds).
const TRIALS_PER_JOB: u64 = 4;

/// A scratch directory under the system temp dir (removed by the
/// caller once the benchmark is done with it).
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bichrome-bench-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The synthetic trial identity stream shared by every store-side
/// measurement, so v1 and v2 hold byte-identical data.
fn nth_key(i: u64) -> TrialKey {
    TrialKey {
        protocol: "edge/theorem3-zero-comm".to_string(),
        graph: format!("near-regular(n=64,d=6)#{}", i % 97),
        partitioner: "random".to_string(),
        seed: i,
    }
}

/// A realistic-size record payload (~100 bytes, like a real trial).
fn nth_record(i: u64) -> String {
    format!(
        "{{\"bits\":{},\"rounds\":{},\"valid\":true,\"colors\":[{},{}],\"elapsed_nanos\":{}}}",
        3 * i + 7,
        1 + i % 5,
        i % 2,
        (i + 1) % 2,
        1000 + i
    )
}

/// Authors a v1-format store: pinned `meta.json` plus a JSON-lines
/// `trials.jsonl`, exactly as a pre-segment build would have left it.
fn author_v1(dir: &Path, n: u64) {
    std::fs::create_dir_all(dir).expect("mkdir v1 store");
    std::fs::write(
        dir.join("meta.json"),
        "{\"magic\":\"bichrome-store\",\"format_version\":1}\n",
    )
    .expect("write v1 meta");
    let mut log = String::new();
    for i in 0..n {
        log.push_str(&v1::encode_line(&nth_key(i), &nth_record(i)));
    }
    std::fs::write(dir.join("trials.jsonl"), log).expect("write v1 log");
}

/// Authors the same records as a v2 store (binary segments).
fn author_v2(dir: &Path, n: u64) {
    let config = StoreConfig {
        flush_every: 4096,
        ..StoreConfig::default()
    };
    let mut store = Store::open_or_create_with(dir, config).expect("create v2 store");
    for i in 0..n {
        store.append(nth_key(i), nth_record(i)).expect("append");
    }
    drop(store); // flushes the active segment
}

/// Best-of-3 `Store::open_existing` timing; also sanity-checks the
/// record count so the two formats provably hold the same data.
fn time_open(dir: &Path, n: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let store = Store::open_existing(dir).expect("open");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(store.len() as u64, n, "store must hold all {n} records");
        assert!(store.salvage().is_none(), "clean store must not salvage");
        best = best.min(secs);
    }
    best
}

/// Times appending `BATCH_RECORDS` fresh records with the given
/// flush cadence (fresh directory per pass; drop flushes the tail).
/// Each append also lands in a per-cadence obs histogram
/// (`bench_append_nanos`), the source of the written percentiles.
fn time_batched_append(flush_every: usize) -> f64 {
    let dir = scratch(&format!("batch-{flush_every}"));
    let config = StoreConfig {
        flush_every,
        ..StoreConfig::default()
    };
    let hist = append_hist(flush_every);
    let mut store = Store::open_or_create_with(&dir, config).expect("create");
    let started = Instant::now();
    for i in 0..BATCH_RECORDS {
        let one = Instant::now();
        store.append(nth_key(i), nth_record(i)).expect("append");
        hist.observe(one.elapsed().as_nanos() as u64);
    }
    drop(store);
    let secs = started.elapsed().as_secs_f64();
    let reopened = Store::open_existing(&dir).expect("reopen");
    assert_eq!(
        reopened.len() as u64,
        BATCH_RECORDS,
        "batched writes must all be durable after drop"
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    secs
}

/// The per-flush-cadence append-latency histogram.
fn append_hist(flush_every: usize) -> bichrome_obs::Histogram {
    bichrome_obs::histogram_labeled(
        "bench_append_nanos",
        &[("flush_every", &flush_every.to_string())],
    )
}

/// The campaign TOML for one submitted job: a disjoint 4-seed window
/// so every job computes all of its trials (no warm skips).
fn job_toml(job: u64) -> String {
    format!(
        "[campaign]\n\
         protocols = [\"edge/theorem3-zero-comm\"]\n\
         graphs    = [\"near-regular(n=48,d=4)\"]\n\
         seeds     = \"{}..{}\"\n",
        job * TRIALS_PER_JOB,
        (job + 1) * TRIALS_PER_JOB
    )
}

/// Runs `JOBS_PER_SCALE` submit+watch round trips against a fresh
/// daemon, split across `clients` concurrent socket clients; returns
/// wall seconds.
fn time_daemon_scale(clients: u64) -> f64 {
    assert_eq!(JOBS_PER_SCALE % clients, 0, "jobs must split evenly");
    let dir = scratch(&format!("daemon-{clients}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let daemon = Daemon::start(dir.join("store"), DaemonConfig::default()).expect("start daemon");
    let addr = Addr::Unix(dir.join("daemon.sock"));
    let listener = Listener::bind(&addr).expect("bind");
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || daemon.serve(listener))
    };

    let jobs_each = JOBS_PER_SCALE / clients;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            scope.spawn(move || {
                let client = Client::new(addr);
                for j in 0..jobs_each {
                    let job = client.submit(&job_toml(c * jobs_each + j)).expect("submit");
                    let end = client.watch(job, |_trial| {}).expect("watch");
                    let end = end.as_object().expect("end event");
                    assert_eq!(end["state"].as_str(), Some("done"), "job must finish");
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();

    Client::new(addr).shutdown().expect("shutdown");
    server.join().expect("serve thread").expect("serve exits");
    let store = Store::open_existing(dir.join("store")).expect("reopen daemon store");
    assert_eq!(
        store.len() as u64,
        JOBS_PER_SCALE * TRIALS_PER_JOB,
        "every submitted trial must be durable after shutdown"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    wall
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Daemon throughput at 1 / 4 / 16 concurrent socket clients.
    let total_trials = JOBS_PER_SCALE * TRIALS_PER_JOB;
    println!(
        "bench-serve: daemon throughput ({JOBS_PER_SCALE} jobs · {total_trials} trials per scale)..."
    );
    let scales = [1u64, 4, 16];
    let walls: Vec<f64> = scales.iter().map(|&c| time_daemon_scale(c)).collect();
    for (&clients, &wall) in scales.iter().zip(&walls) {
        println!(
            "  {clients:>2} client(s): {wall:.3}s · {:.1} jobs/sec · {:.1} trials/sec",
            JOBS_PER_SCALE as f64 / wall,
            total_trials as f64 / wall,
        );
    }

    // Warm-store open: identical 10⁵-record data, both formats.
    println!("bench-serve: authoring {OPEN_RECORDS}-record v1 and v2 stores...");
    let v1_dir = scratch("open-v1");
    let v2_dir = scratch("open-v2");
    author_v1(&v1_dir, OPEN_RECORDS);
    author_v2(&v2_dir, OPEN_RECORDS);
    let v1_open = time_open(&v1_dir, OPEN_RECORDS);
    let v2_open = time_open(&v2_dir, OPEN_RECORDS);
    let _ = std::fs::remove_dir_all(&v1_dir);
    let _ = std::fs::remove_dir_all(&v2_dir);
    println!(
        "  open: v1 {v1_open:.3}s · v2 {v2_open:.3}s · {:.2}x",
        v1_open / v2_open
    );
    assert!(
        v2_open < v1_open,
        "v2 binary open ({v2_open:.3}s) must beat the v1 JSON-line parse ({v1_open:.3}s)"
    );

    // Write batching: per-record flush vs the daemon's group flush.
    let flush_1 = time_batched_append(1);
    let flush_64 = time_batched_append(64);
    println!(
        "  append {BATCH_RECORDS} records: flush_every=1 {flush_1:.3}s · flush_every=64 {flush_64:.3}s"
    );

    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "serve-daemon");
    w.field_u64("jobs_per_scale", JOBS_PER_SCALE);
    w.field_u64("trials_per_scale", total_trials);
    for (&clients, &wall) in scales.iter().zip(&walls) {
        w.field_f64(&format!("clients_{clients}_wall_seconds"), wall);
        w.field_f64(
            &format!("clients_{clients}_jobs_per_sec"),
            JOBS_PER_SCALE as f64 / wall,
        );
        w.field_f64(
            &format!("clients_{clients}_trials_per_sec"),
            total_trials as f64 / wall,
        );
    }
    w.field_u64("open_records", OPEN_RECORDS);
    w.field_f64("v1_open_seconds", v1_open);
    w.field_f64("v2_open_seconds", v2_open);
    w.field_f64("v2_open_speedup", v1_open / v2_open);
    w.field_u64("batch_records", BATCH_RECORDS);
    w.field_f64("append_flush_every_1_seconds", flush_1);
    w.field_f64("append_flush_every_64_seconds", flush_64);
    w.field_f64("batching_speedup", flush_1 / flush_64);
    // Per-append tail latency at the daemon's default cadence (64).
    let hist = append_hist(64);
    w.field_f64("append_nanos_p50", hist.percentile(50.0));
    w.field_f64("append_nanos_p95", hist.percentile(95.0));
    w.field_f64("append_nanos_p99", hist.percentile(99.0));
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("→ {out_path}");
}
