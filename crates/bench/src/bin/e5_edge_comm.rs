//! **E5** — Theorem 2: deterministic `(2Δ−1)`-edge coloring in `O(n)`
//! bits and `O(1)` rounds, across `n` and `Δ` sweeps and the whole
//! partitioner family (taking the worst case over partitioners, as a
//! stand-in for the adversary).

use bichrome_bench::Table;
use bichrome_core::edge::solve_edge_coloring;
use bichrome_graph::coloring::validate_edge_coloring_with_palette;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::gen;

fn main() {
    println!("E5: (2Δ−1)-edge coloring — communication & rounds (Theorem 2)\n");
    let mut t = Table::new(&[
        "Δ", "n", "m", "worst bits", "bits/n", "rounds", "trivial m·2logn",
    ]);
    for &delta in &[10usize, 16, 32] {
        for &n in &[256usize, 512, 1024, 2048] {
            let g = gen::gnm_max_degree(n, n * delta / 3, delta, (n + delta) as u64);
            let mut worst_bits = 0u64;
            let mut worst_rounds = 0u64;
            for part in Partitioner::family(7) {
                let p = part.split(&g);
                let out = solve_edge_coloring(&p, 0);
                let budget = 2 * g.max_degree() - 1;
                validate_edge_coloring_with_palette(&g, &out.merged(), budget)
                    .expect("valid");
                worst_bits = worst_bits.max(out.stats.total_bits());
                worst_rounds = worst_rounds.max(out.stats.rounds);
            }
            let trivial =
                (g.num_edges() * 2 * (n as f64).log2().ceil() as usize) as u64;
            t.row(&[
                &delta.to_string(),
                &n.to_string(),
                &g.num_edges().to_string(),
                &worst_bits.to_string(),
                &format!("{:.1}", worst_bits as f64 / n as f64),
                &worst_rounds.to_string(),
                &trivial.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nClaim check: bits/n stays bounded as n and Δ grow (Theorem 2's \
         O(n), independent of m), rounds are a constant 3, and the cost sits \
         far below the trivial send-the-graph bound."
    );
}
