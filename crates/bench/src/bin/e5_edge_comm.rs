//! **E5** — Theorem 2: deterministic `(2Δ−1)`-edge coloring in `O(n)`
//! bits and `O(1)` rounds, across `n` and `Δ` sweeps and the whole
//! partitioner family (taking the worst case over partitioners, as a
//! stand-in for the adversary).
//!
//! Ported to `bichrome-runner`: one `TrialPlan` per graph, with one
//! instance per partitioner, and the worst case read off the report's
//! max aggregates.

use bichrome_bench::Table;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Instance, TrialPlan};

fn main() {
    println!("E5: (2Δ−1)-edge coloring — communication & rounds (Theorem 2)\n");
    let reg = registry();
    let mut t = Table::new(&[
        "Δ",
        "n",
        "m",
        "worst bits",
        "bits/n",
        "rounds",
        "trivial m·2logn",
    ]);
    for &delta in &[10usize, 16, 32] {
        for &n in &[256usize, 512, 1024, 2048] {
            let g = gen::gnm_max_degree(n, n * delta / 3, delta, (n + delta) as u64);
            let instances = Partitioner::family(7)
                .into_iter()
                .map(|part| Instance::new(part.to_string(), part.split(&g), 0));
            let report = TrialPlan::new(reg.get("edge/theorem2").expect("registered"))
                .instances(instances)
                .run();
            assert!(
                report.all_valid(),
                "Theorem 2 must validate on every partition"
            );
            let worst_bits = report.summary.total_bits.max;
            t.row(&[
                &delta.to_string(),
                &n.to_string(),
                &g.num_edges().to_string(),
                &format!("{worst_bits:.0}"),
                &format!("{:.1}", worst_bits / n as f64),
                &format!("{:.0}", report.summary.rounds.max),
                &((g.num_edges() * 2 * (n as f64).log2().ceil() as usize) as u64).to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\nClaim check: bits/n stays bounded as n and Δ grow (Theorem 2's \
         O(n), independent of m), rounds are a constant 3, and the cost sits \
         far below the trivial send-the-graph bound."
    );
}
