//! **E3** — inside `Random-Color-Trial` (Lemmas 4.3–4.5, 4.13):
//! regenerates the EXPERIMENTS.md active-vertex-decay table — decay
//! per iteration against the `(23/24)^{i−1}` bound, the leftover
//! count against `n/log⁴ n`, and the O(1) per-vertex communication.
//!
//! Driven by the one-line campaign
//! `Campaign::new().protocols([RctDecayProbe]).graphs([near-regular(n=4096,d=16)]).seeds(0..3)`;
//! the per-iteration trajectory arrives as `active_iter_NN` metrics
//! aggregated in the cell summary.

use bichrome_bench::Table;
use bichrome_core::rct::paper_iterations;
use bichrome_runner::probes::RctDecayProbe;
use bichrome_runner::{Campaign, GraphSpec, Protocol};
use std::sync::Arc;

fn main() {
    println!("E3: Random-Color-Trial internals (Lemma 4.1 and friends)\n");
    let n = 4096usize;
    let delta = 16usize;

    let report = Campaign::new()
        .protocols([Arc::new(RctDecayProbe::default()) as Arc<dyn Protocol>])
        .graphs([GraphSpec::NearRegular { n, d: delta }])
        .seeds(0..3)
        .run();
    assert!(report.all_valid(), "RCT parties must agree");
    let summary = report.cells[0].summary().clone();

    println!("Active vertices per iteration (n = {n}, Δ = {delta}):");
    let mut t = Table::new(&["iter", "active (mean)", "fraction", "(23/24)^(i-1) bound"]);
    for (key, agg) in &summary.metrics {
        let Some(iter) = key.strip_prefix("active_iter_") else {
            continue;
        };
        // Trajectories are zero-padded to a fixed length; a row where
        // no trial was active is past every termination point.
        if agg.max == 0.0 {
            continue;
        }
        let i: usize = iter.parse().expect("metric key carries the iteration");
        t.row(&[
            &i.to_string(),
            &format!("{:.0}", agg.mean),
            &format!("{:.4}", agg.mean / n as f64),
            &format!("{:.4}", (23.0f64 / 24.0).powi(i as i32 - 1)),
        ]);
    }
    t.print();

    let loglog_budget = n as f64 / (n as f64).log2().powi(4);
    println!(
        "\nLeftover after the trial: mean {:.1} vertices (Lemma 4.1(i) budget \
         n/log⁴n = {loglog_budget:.1}; paper iteration cap {} — early exit engaged)",
        summary.metric("remaining").mean,
        paper_iterations(n),
    );
    println!(
        "Communication: mean {:.2} bits per vertex across the whole trial \
         (Lemmas 4.5 + 4.13 predict O(1))",
        summary.bits_per_vertex.mean
    );
    println!(
        "\nClaim check: the empirical decay is at or below the (23/24)^i \
         envelope, the leftover is far below n/log⁴n, and bits/vertex is a \
         small constant."
    );
}
