//! **E3** — inside `Random-Color-Trial` (Lemmas 4.3–4.5, 4.13):
//! active-vertex decay per iteration against the `(23/24)^{i−1}`
//! bound, the leftover count against `n/log⁴ n`, and the O(1)
//! per-vertex communication cost.

use bichrome_bench::{mean, Table};
use bichrome_comm::session::run_two_party_ctx;
use bichrome_core::input::PartyInput;
use bichrome_core::rct::{paper_iterations, run_random_color_trial, RctConfig};
use bichrome_graph::coloring::VertexColoring;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;

fn main() {
    println!("E3: Random-Color-Trial internals (Lemma 4.1 and friends)\n");
    let n = 4096usize;
    let delta = 16usize;
    let reps = 3u64;

    let mut actives: Vec<Vec<usize>> = Vec::new();
    let mut bits_per_vertex = Vec::new();
    let mut remaining = Vec::new();
    for rep in 0..reps {
        let g = gen::near_regular(n, delta, rep * 7 + 1);
        let p = Partitioner::Random(rep).split(&g);
        let (a, b) = (PartyInput::alice(&p), PartyInput::bob(&p));
        let cfg = RctConfig::default();
        let ((rep_a, _), (_rep_b, _), stats) = run_two_party_ctx(
            rep,
            move |ctx| {
                let mut c = VertexColoring::new(n);
                let r = run_random_color_trial(&a, &ctx, &mut c, &cfg);
                (r, c.num_colored())
            },
            move |ctx| {
                let mut c = VertexColoring::new(n);
                let r = run_random_color_trial(&b, &ctx, &mut c, &cfg);
                (r, c.num_colored())
            },
        );
        remaining.push(rep_a.remaining as f64);
        bits_per_vertex.push(stats.total_bits() as f64 / n as f64);
        actives.push(rep_a.active_per_iteration.clone());
    }

    println!("Active vertices per iteration (n = {n}, Δ = {delta}):");
    let mut t = Table::new(&["iter", "active (mean)", "fraction", "(23/24)^(i-1) bound"]);
    let longest = actives.iter().map(|a| a.len()).max().unwrap_or(0);
    for i in 0..longest.min(24) {
        let vals: Vec<f64> = actives
            .iter()
            .map(|a| a.get(i).copied().unwrap_or(0) as f64)
            .collect();
        let m = mean(&vals);
        t.row(&[
            &(i + 1).to_string(),
            &format!("{m:.0}"),
            &format!("{:.4}", m / n as f64),
            &format!("{:.4}", (23.0f64 / 24.0).powi(i as i32)),
        ]);
    }
    t.print();

    let loglog_budget = n as f64 / (n as f64).log2().powi(4);
    println!(
        "\nLeftover after the trial: mean {:.1} vertices (Lemma 4.1(i) budget \
         n/log⁴n = {loglog_budget:.1}; paper iteration cap {} — early exit engaged)",
        mean(&remaining),
        paper_iterations(n),
    );
    println!(
        "Communication: mean {:.2} bits per vertex across the whole trial \
         (Lemmas 4.5 + 4.13 predict O(1))",
        mean(&bits_per_vertex)
    );
    println!(
        "\nClaim check: the empirical decay is at or below the (23/24)^i \
         envelope, the leftover is far below n/log⁴n, and bits/vertex is a \
         small constant."
    );
}
