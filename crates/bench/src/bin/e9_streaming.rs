//! **E9** — the W-streaming picture of §6.4 / Corollary 1.2: streaming
//! algorithms' space vs colors, and the two-party simulation whose
//! communication equals `passes × state` — the quantity Theorem 5
//! lower-bounds by `Ω(n)`.

use bichrome_bench::Table;
use bichrome_graph::coloring::validate_edge_coloring;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_streaming::algorithms::{ChunkedWStreaming, GreedyWStreaming};
use bichrome_streaming::reduction::simulate_streaming_two_party;
use bichrome_streaming::run_w_streaming;
use bichrome_streaming::weaker::validate_weaker_output;

fn main() {
    println!("E9: W-streaming edge coloring (§6.4, Corollary 1.2)\n");

    println!("Streaming algorithms: space vs colors");
    let mut t = Table::new(&["n", "Δ", "m", "algorithm", "colors", "state bits", "bits/n"]);
    for &(n, delta) in &[(256usize, 16usize), (512, 32), (1024, 64)] {
        let g = gen::gnm_max_degree(n, n * delta / 3, delta, 7);
        let d = g.max_degree();
        let mut greedy = GreedyWStreaming::new(n, d);
        let (cg, sg) = run_w_streaming(&mut greedy, g.edges());
        assert!(validate_edge_coloring(&g, &cg).is_ok());
        t.row(&[
            &n.to_string(),
            &d.to_string(),
            &g.num_edges().to_string(),
            "greedy (2Δ−1)",
            &cg.num_distinct_colors().to_string(),
            &sg.max_state_bits.to_string(),
            &format!("{:.1}", sg.max_state_bits as f64 / n as f64),
        ]);
        let mut chunked = ChunkedWStreaming::with_sqrt_delta_capacity(n, d);
        let (cc, sc) = run_w_streaming(&mut chunked, g.edges());
        assert!(validate_edge_coloring(&g, &cc).is_ok());
        t.row(&[
            &n.to_string(),
            &d.to_string(),
            &g.num_edges().to_string(),
            "chunked Õ(n√Δ)",
            &cc.num_distinct_colors().to_string(),
            &sc.max_state_bits.to_string(),
            &format!("{:.1}", sc.max_state_bits as f64 / n as f64),
        ]);
    }
    t.print();

    println!("\nTwo-party simulation (the §6.4 reduction): bits = passes × state");
    let mut t = Table::new(&[
        "n",
        "Δ",
        "algorithm",
        "sim bits",
        "rounds",
        "valid weaker output",
    ]);
    for &(n, delta) in &[(256usize, 16usize), (512, 32)] {
        let g = gen::gnm_max_degree(n, n * delta / 3, delta, 9);
        let d = g.max_degree();
        let p = Partitioner::Random(1).split(&g);
        let out = simulate_streaming_two_party(&p, || GreedyWStreaming::new(n, d), 0);
        let ok = validate_weaker_output(&g, &out.output, 2 * d - 1).is_ok();
        t.row(&[
            &n.to_string(),
            &d.to_string(),
            "greedy (2Δ−1)",
            &out.stats.total_bits().to_string(),
            &out.stats.rounds.to_string(),
            if ok { "yes" } else { "NO" },
        ]);
    }
    t.print();
    println!(
        "\nClaim check: a (2Δ−1)-coloring streaming algorithm's state is Θ(n) \
         bits and its two-party simulation transmits exactly that per pass; \
         Theorem 5's Ω(n) bound on the weaker problem therefore forces Ω(n) \
         streaming space (Corollary 1.2). The chunked algorithm dodges the \
         bound only by spending ω(Δ) colors."
    );
}
