//! **E9** — the W-streaming picture of §6.4 / Corollary 1.2:
//! regenerates the EXPERIMENTS.md space-vs-colors table and the
//! two-party-simulation table whose communication equals
//! `passes × state` — the quantity Theorem 5 lower-bounds by `Ω(n)`.
//!
//! Driven by two campaigns: space via
//! `Campaign::new().protocols([WStreamingSpaceProbe::greedy(), ::chunked()]).graphs(gnm-specs).seeds([7])`
//! and the §6.4 reduction via
//! `Campaign::new().protocol_keys(["streaming/greedy-w"]).graphs(gnm-specs).partitioners([random(1)]).seeds([0])`.

use bichrome_bench::Table;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::probes::WStreamingSpaceProbe;
use bichrome_runner::{Campaign, GraphSpec, Protocol};
use std::sync::Arc;

/// The (n, Δ) sweep of the historical table, as graph specs with
/// `m = nΔ/3`.
fn specs(points: &[(usize, usize)]) -> Vec<GraphSpec> {
    points
        .iter()
        .map(|&(n, delta)| GraphSpec::GnmMaxDegree {
            n,
            m: n * delta / 3,
            dmax: delta,
        })
        .collect()
}

fn main() {
    println!("E9: W-streaming edge coloring (§6.4, Corollary 1.2)\n");

    println!("Streaming algorithms: space vs colors");
    let space = Campaign::new()
        .protocols([
            Arc::new(WStreamingSpaceProbe::greedy()) as Arc<dyn Protocol>,
            Arc::new(WStreamingSpaceProbe::chunked()) as Arc<dyn Protocol>,
        ])
        .graphs(specs(&[(256, 16), (512, 32), (1024, 64)]))
        .seeds([7])
        .run();
    assert!(space.all_valid(), "streamed colorings must validate");
    let mut t = Table::new(&["graph", "algorithm", "colors", "state bits", "bits/n"]);
    for cell in &space.cells {
        let s = cell.summary();
        t.row(&[
            &cell.spec.to_string(),
            &cell.protocol,
            &format!("{:.0}", s.colors.mean),
            &format!("{:.0}", s.metric("state_bits").mean),
            &format!("{:.1}", s.metric("state_bits_per_vertex").mean),
        ]);
    }
    t.print();

    println!("\nTwo-party simulation (the §6.4 reduction): bits = passes × state");
    let sim = Campaign::new()
        .protocol_keys(["streaming/greedy-w"])
        .graphs(specs(&[(256, 16), (512, 32)]))
        .partitioners([Partitioner::Random(1)])
        .seeds([0])
        .run();
    assert!(sim.all_valid(), "weaker outputs must validate");
    let mut t = Table::new(&[
        "graph",
        "algorithm",
        "sim bits",
        "rounds",
        "valid weaker output",
    ]);
    for cell in &sim.cells {
        let s = cell.summary();
        t.row(&[
            &cell.spec.to_string(),
            "greedy (2Δ−1)",
            &format!("{:.0}", s.total_bits.mean),
            &format!("{:.0}", s.rounds.mean),
            if s.valid == s.trials { "yes" } else { "NO" },
        ]);
    }
    t.print();
    println!(
        "\nClaim check: a (2Δ−1)-coloring streaming algorithm's state is Θ(n) \
         bits and its two-party simulation transmits exactly that per pass; \
         Theorem 5's Ω(n) bound on the weaker problem therefore forces Ω(n) \
         streaming space (Corollary 1.2). The chunked algorithm dodges the \
         bound only by spending ω(Δ) colors."
    );
}
