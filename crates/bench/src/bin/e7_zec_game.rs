//! **E7** — the lower-bound games of Section 6: Lemma 6.2's strategy
//! bound, Lemma 6.4's parallel-repetition decay, Lemma 6.1's
//! transcript-guessing decay, and the ZEC-NEW bound of §6.4.

use bichrome_bench::Table;
use bichrome_lb::best_response::optimized_strategy;
use bichrome_lb::repetition::{guessing_success_rate, run_parallel_repetition};
use bichrome_lb::zec::{
    estimate_win_probability, exact_win_probability, strategy_suite, RandomStrategy, ZEC_WIN_BOUND,
};
use bichrome_lb::zec_new::{estimate_zec_new_win, ColorOnly, HUB_POOL, ZEC_NEW_WIN_BOUND};

fn main() {
    println!("E7: zero-communication edge-coloring games (Section 6)\n");

    println!("Strategy win rates (Lemma 6.2 bound: 11024/11025 ≈ {ZEC_WIN_BOUND:.6}):");
    let mut t = Table::new(&["strategy", "evaluation", "win rate", "≤ bound?"]);
    for s in strategy_suite() {
        let (eval, p) = if s.is_deterministic() {
            ("exact 441 inputs", exact_win_probability(s.as_ref()))
        } else {
            (
                "monte-carlo 2e5",
                estimate_win_probability(s.as_ref(), 200_000, 11),
            )
        };
        t.row(&[
            s.name(),
            eval,
            &format!("{p:.4}"),
            if p <= ZEC_WIN_BOUND + 0.01 {
                "yes"
            } else {
                "NO"
            },
        ]);
    }
    // The strongest deterministic play we can find: multi-start
    // best-response dynamics (exact per-input optimization).
    let (_, p_opt) = optimized_strategy(12, 10);
    t.row(&[
        "best-response optimum",
        "exact, 12 starts",
        &format!("{p_opt:.4}"),
        if p_opt <= ZEC_WIN_BOUND { "yes" } else { "NO" },
    ]);
    t.print();

    println!("\nParallel repetition (Lemma 6.4): win-all of n instances");
    let mut t = Table::new(&["n instances", "win-all (empirical)", "v^n (prediction)"]);
    let s = RandomStrategy;
    for &inst in &[1usize, 2, 4, 8, 16, 32] {
        let out = run_parallel_repetition(&s, inst, 50_000, 3);
        t.row(&[
            &inst.to_string(),
            &format!("{:.5}", out.win_all_rate()),
            &format!("{:.5}", out.predicted()),
        ]);
    }
    t.print();

    println!("\nTranscript guessing (Lemma 6.1): success of a zero-communication");
    println!("simulation of a c-bit protocol");
    let mut t = Table::new(&["c bits", "success (empirical)", "4^-c (prediction)"]);
    for &c in &[1u32, 2, 4, 6, 8] {
        let r = guessing_success_rate(c, 400_000, 5);
        t.row(&[
            &c.to_string(),
            &format!("{r:.6}"),
            &format!("{:.6}", 0.25f64.powi(c as i32)),
        ]);
    }
    t.print();

    println!("\nZEC-NEW (§6.4, bound 33074/33075 ≈ {ZEC_NEW_WIN_BOUND:.6}), hub pool {HUB_POOL}:");
    let p = estimate_zec_new_win(
        &ColorOnly(bichrome_lb::zec::LabelingStrategy::shifted()),
        HUB_POOL,
        100_000,
        7,
    );
    println!("  shifted-labeling strategy: win rate {p:.4} (guessing arm negligible)");

    println!(
        "\nClaim check: every strategy sits below the Lemma 6.2 bound, the \
         win-all rate decays like v^n = 2^-Ω(n), and transcript guessing \
         decays like 2^-Θ(c) — combining them yields Theorem 4's Ω(n)."
    );
}
