//! **E7** — the lower-bound games of Section 6: regenerates the
//! EXPERIMENTS.md game tables — Lemma 6.2's strategy bound, Lemma
//! 6.4's parallel-repetition decay, Lemma 6.1's transcript-guessing
//! decay, and the ZEC-NEW bound of §6.4.
//!
//! Driven by three campaigns over game probes — e.g.
//! `Campaign::new().protocols(ZecGameProbe::suite(200_000)).graphs([empty(n=1)]).seeds([11])` —
//! whose verdicts *are* the lemma bounds: a strategy beating
//! `11024/11025` would fail validation.

use bichrome_bench::Table;
use bichrome_lb::zec::ZEC_WIN_BOUND;
use bichrome_lb::zec_new::{HUB_POOL, ZEC_NEW_WIN_BOUND};
use bichrome_runner::probes::{
    unit_graph, BestResponseProbe, GuessingProbe, RepetitionProbe, ZecGameProbe, ZecNewProbe,
};
use bichrome_runner::{Campaign, Protocol};
use std::sync::Arc;

fn main() {
    println!("E7: zero-communication edge-coloring games (Section 6)\n");

    println!("Strategy win rates (Lemma 6.2 bound: 11024/11025 ≈ {ZEC_WIN_BOUND:.6}):");
    let mut protos = ZecGameProbe::suite(200_000);
    // The strongest deterministic play we can find: multi-start
    // best-response dynamics (exact per-input optimization).
    protos.push(Arc::new(BestResponseProbe::new(12, 10)) as Arc<dyn Protocol>);
    let strategies = Campaign::new()
        .protocols(protos)
        .graphs([unit_graph()])
        .seeds([11])
        .run();
    let mut t = Table::new(&["strategy", "evaluation", "win rate", "≤ bound?"]);
    for cell in &strategies.cells {
        let s = cell.summary();
        let eval = if s.metric("exact").mean == 1.0 {
            "exact 441 inputs"
        } else {
            "monte-carlo 2e5"
        };
        t.row(&[
            &cell.protocol,
            eval,
            &format!("{:.4}", s.metric("win_rate").mean),
            if s.valid == s.trials { "yes" } else { "NO" },
        ]);
    }
    t.print();
    assert!(
        strategies.all_valid(),
        "every strategy must respect Lemma 6.2"
    );

    println!("\nParallel repetition (Lemma 6.4): win-all of n instances");
    let repetition = Campaign::new()
        .protocols(
            [1usize, 2, 4, 8, 16, 32]
                .iter()
                .map(|&n| Arc::new(RepetitionProbe::new(n, 50_000)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds([3])
        .run();
    let mut t = Table::new(&["n instances", "win-all (empirical)", "v^n (prediction)"]);
    for cell in &repetition.cells {
        let s = cell.summary();
        t.row(&[
            &cell.protocol,
            &format!("{:.5}", s.metric("win_all").mean),
            &format!("{:.5}", s.metric("predicted").mean),
        ]);
    }
    t.print();

    println!("\nTranscript guessing (Lemma 6.1): success of a zero-communication");
    println!("simulation of a c-bit protocol");
    let guessing = Campaign::new()
        .protocols(
            [1u32, 2, 4, 6, 8]
                .iter()
                .map(|&c| Arc::new(GuessingProbe::new(c, 400_000)) as Arc<dyn Protocol>),
        )
        .graphs([unit_graph()])
        .seeds([5])
        .run();
    let mut t = Table::new(&["c bits", "success (empirical)", "4^-c (prediction)"]);
    for cell in &guessing.cells {
        let s = cell.summary();
        t.row(&[
            &cell.protocol,
            &format!("{:.6}", s.metric("success").mean),
            &format!("{:.6}", s.metric("predicted").mean),
        ]);
    }
    t.print();

    println!("\nZEC-NEW (§6.4, bound 33074/33075 ≈ {ZEC_NEW_WIN_BOUND:.6}), hub pool {HUB_POOL}:");
    let zec_new = Campaign::new()
        .protocols([Arc::new(ZecNewProbe::new(100_000)) as Arc<dyn Protocol>])
        .graphs([unit_graph()])
        .seeds([7])
        .run();
    assert!(zec_new.all_valid(), "ZEC-NEW must respect its bound");
    println!(
        "  shifted-labeling strategy: win rate {:.4} (guessing arm negligible)",
        zec_new.cells[0].summary().metric("win_rate").mean
    );

    println!(
        "\nClaim check: every strategy sits below the Lemma 6.2 bound, the \
         win-all rate decays like v^n = 2^-Ω(n), and transcript guessing \
         decays like 2^-Θ(c) — combining them yields Theorem 4's Ω(n)."
    );
}
