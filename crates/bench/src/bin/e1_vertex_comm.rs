//! **E1** — Theorem 1's communication cost: `O(n)` expected bits.
//!
//! Sweeps `n` at several fixed maximum degrees and reports total bits,
//! bits per vertex (which must stay flat as `n` grows — that is the
//! `O(n)` claim), and rounds. The Flin–Mittal baseline's bits are
//! shown alongside: both are `Θ(n)`, the difference is rounds (E2).

use bichrome_bench::{mean, Table};
use bichrome_core::baselines::{run_baseline, Baseline};
use bichrome_core::rct::RctConfig;
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::gen;

fn main() {
    println!("E1: (Δ+1)-vertex coloring — communication (Theorem 1)\n");
    let reps = 3u64;
    let mut table = Table::new(&[
        "Δ", "n", "ours bits", "ours bits/n", "FM bits", "FM bits/n", "ours rounds",
    ]);
    for &delta in &[8usize, 16, 32] {
        for &n in &[256usize, 512, 1024, 2048] {
            let mut ours_bits = Vec::new();
            let mut ours_rounds = Vec::new();
            let mut fm_bits = Vec::new();
            for rep in 0..reps {
                let g = gen::near_regular(n, delta, rep * 100 + delta as u64);
                let p = Partitioner::Random(rep).split(&g);
                let out = solve_vertex_coloring(&p, rep + 1, &RctConfig::default());
                validate_vertex_coloring_with_palette(&g, &out.coloring, delta + 1)
                    .expect("valid");
                ours_bits.push(out.stats.total_bits() as f64);
                ours_rounds.push(out.stats.rounds as f64);
                let (_, fm) = run_baseline(&p, Baseline::FlinMittal, rep + 1);
                fm_bits.push(fm.total_bits() as f64);
            }
            table.row(&[
                &delta.to_string(),
                &n.to_string(),
                &format!("{:.0}", mean(&ours_bits)),
                &format!("{:.1}", mean(&ours_bits) / n as f64),
                &format!("{:.0}", mean(&fm_bits)),
                &format!("{:.1}", mean(&fm_bits) / n as f64),
                &format!("{:.0}", mean(&ours_rounds)),
            ]);
        }
    }
    table.print();
    println!(
        "\nClaim check: 'ours bits/n' stays bounded as n grows at fixed Δ \
         (expected O(n) bits, Theorem 1), matching Flin–Mittal's bit scale."
    );
}
