//! **E1** — Theorem 1's communication cost: `O(n)` expected bits.
//!
//! Sweeps `n` at several fixed maximum degrees and reports total bits,
//! bits per vertex (which must stay flat as `n` grows — that is the
//! `O(n)` claim), and rounds. The Flin–Mittal baseline's bits are
//! shown alongside: both are `Θ(n)`, the difference is rounds (E2).
//!
//! Ported to the unified `bichrome-runner` harness: instances are
//! declared once and both protocols run through `TrialPlan`, with
//! trials parallel across seeds.

use bichrome_bench::Table;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Instance, TrialPlan};

fn main() {
    println!("E1: (Δ+1)-vertex coloring — communication (Theorem 1)\n");
    let reg = registry();
    let reps = 3u64;
    let mut table = Table::new(&[
        "Δ",
        "n",
        "ours bits",
        "ours bits/n",
        "FM bits",
        "FM bits/n",
        "ours rounds",
    ]);
    for &delta in &[8usize, 16, 32] {
        for &n in &[256usize, 512, 1024, 2048] {
            // Same instance construction as the historical loop:
            // graph seed rep*100+Δ, partition Random(rep), session
            // seed rep+1.
            let instances = || {
                (0..reps).map(|rep| {
                    let g = gen::near_regular(n, delta, rep * 100 + delta as u64);
                    Instance::new("near-regular", Partitioner::Random(rep).split(&g), rep + 1)
                })
            };
            let ours = TrialPlan::new(reg.get("vertex/theorem1").expect("registered"))
                .instances(instances())
                .run();
            assert!(ours.all_valid(), "Theorem 1 must validate");
            let fm = TrialPlan::new(reg.get("baseline/flin-mittal").expect("registered"))
                .instances(instances())
                .run();
            assert!(fm.all_valid(), "Flin–Mittal must validate");
            table.row(&[
                &delta.to_string(),
                &n.to_string(),
                &format!("{:.0}", ours.summary.total_bits.mean),
                &format!("{:.1}", ours.summary.bits_per_vertex.mean),
                &format!("{:.0}", fm.summary.total_bits.mean),
                &format!("{:.1}", fm.summary.bits_per_vertex.mean),
                &format!("{:.0}", ours.summary.rounds.mean),
            ]);
        }
    }
    table.print();
    println!(
        "\nClaim check: 'ours bits/n' stays bounded as n grows at fixed Δ \
         (expected O(n) bits, Theorem 1), matching Flin–Mittal's bit scale."
    );
}
