//! **bench-hotpath** — microbenchmark of the dense edge-indexed hot
//! path: the validator pass (`ColorMarks` + dense `EdgeColoring`),
//! Misra–Gries fan coloring, and the D1LC finishing protocol, timed
//! on gnp/gnm grids at n ∈ {1e3, 1e4, 1e5} and written to
//! `BENCH_hotpath.json` (nanos per phase + edges/sec) so CI tracks
//! hot-path throughput across PRs.
//!
//! The bin asserts its own schema invariants (all timings > 0, every
//! phase present) before writing, so a malformed benchmark fails the
//! run instead of producing a silently broken trajectory point.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_hotpath [out.json]
//! ```

use bichrome_comm::Side;
use bichrome_core::d1lc::{solve_d1lc, D1lcInput};
use bichrome_graph::coloring::{ColorId, ColorMarks};
use bichrome_graph::edge_color::misra_gries;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph, VertexId};
use std::time::Instant;

/// The benchmark's graph sizes.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Average degree targeted by both families.
const AVG_DEGREE: usize = 8;

/// Keep every `KEEP_EVERY`-th vertex uncolored for the D1LC phase.
const KEEP_EVERY: usize = 4;

/// How many validator repetitions to time (the pass is fast; reps
/// keep the measurement out of clock-granularity noise).
const VALIDATE_REPS: u32 = 20;

/// One timed grid point.
struct Point {
    family: &'static str,
    n: usize,
    m: usize,
    delta: usize,
    validate_nanos: u64,
    validate_edges_per_sec: f64,
    misra_gries_nanos: u64,
    misra_gries_edges_per_sec: f64,
    d1lc_nanos: u64,
    d1lc_vertices_per_sec: f64,
}

fn build(family: &'static str, n: usize, seed: u64) -> Graph {
    match family {
        "gnp" => gen::gnp(n, AVG_DEGREE as f64 / n as f64, seed),
        "gnm" => gen::gnm_max_degree(n, n * AVG_DEGREE / 2, AVG_DEGREE + 4, seed),
        other => panic!("unknown family {other}"),
    }
}

/// Times one grid point: validator reps, one Misra–Gries run, one
/// two-party D1LC instance over the pre-colored remainder.
fn measure(family: &'static str, n: usize, marks: &mut ColorMarks) -> Point {
    let g = build(family, n, 1);
    let m = g.num_edges();
    let delta = g.max_degree();

    // --- Misra–Gries (Proposition 3.4 realization). ---
    let started = Instant::now();
    let coloring = misra_gries(&g);
    let misra_gries_nanos = started.elapsed().as_nanos() as u64;

    // --- Validator pass over the produced coloring, scratch reused. ---
    let budget = delta + 1;
    let started = Instant::now();
    for _ in 0..VALIDATE_REPS {
        marks
            .check_edge_coloring_with_palette(&g, &coloring, budget)
            .expect("Misra–Gries colorings are valid");
    }
    let validate_nanos =
        (started.elapsed().as_nanos() as u64 / u128::from(VALIDATE_REPS) as u64).max(1);

    // --- D1LC rounds on a coloring-induced instance. ---
    let (ia, ib, zlen) = d1lc_instance(&g);
    let started = Instant::now();
    let (ca, cb, _) = bichrome_comm::session::run_two_party_ctx(
        7,
        move |ctx| solve_d1lc(&ia, &ctx),
        move |ctx| solve_d1lc(&ib, &ctx),
    );
    let d1lc_nanos = started.elapsed().as_nanos() as u64;
    assert_eq!(ca, cb, "D1LC parties must agree");

    let per_sec = |nanos: u64, units: usize| units as f64 / (nanos as f64 / 1e9);
    Point {
        family,
        n,
        m,
        delta,
        validate_nanos,
        validate_edges_per_sec: per_sec(validate_nanos, m),
        misra_gries_nanos,
        misra_gries_edges_per_sec: per_sec(misra_gries_nanos, m),
        d1lc_nanos,
        d1lc_vertices_per_sec: per_sec(d1lc_nanos, zlen),
    }
}

/// Builds a realistic D1LC instance the way Theorem 1 does: greedily
/// pre-color all but every [`KEEP_EVERY`]-th vertex publicly, take
/// `Z` = the rest, and give each party the palette minus the colors
/// of *its own* colored neighbors.
fn d1lc_instance(g: &Graph) -> (D1lcInput, D1lcInput, usize) {
    let p = Partitioner::Alternating.split(g);
    let palette = g.max_degree() + 1;
    let full = bichrome_graph::greedy::greedy_vertex_coloring(g);
    let z: Vec<VertexId> = g
        .vertices()
        .filter(|v| v.index().is_multiple_of(KEEP_EVERY))
        .collect();
    let pre = |v: VertexId| -> Option<ColorId> {
        if v.index().is_multiple_of(KEEP_EVERY) {
            None
        } else {
            full.get(v)
        }
    };
    let psi_of = |side: &Graph| -> Vec<Vec<ColorId>> {
        let mut occ_marks = vec![0u32; palette];
        z.iter()
            .enumerate()
            .map(|(stamp, &v)| {
                let stamp = stamp as u32 + 1;
                for &u in side.neighbors(v) {
                    if let Some(c) = pre(u) {
                        occ_marks[c.index()] = stamp;
                    }
                }
                (0..palette as u32)
                    .map(ColorId)
                    .filter(|c| occ_marks[c.index()] != stamp)
                    .collect()
            })
            .collect()
    };
    let psi_a = psi_of(p.alice());
    let psi_b = psi_of(p.bob());
    let zlen = z.len();
    let ia = D1lcInput {
        side: Side::Alice,
        graph: p.alice().clone(),
        z: z.clone(),
        psi: psi_a,
        palette,
    };
    let ib = D1lcInput {
        side: Side::Bob,
        graph: p.bob().clone(),
        z,
        psi: psi_b,
        palette,
    };
    (ia, ib, zlen)
}

fn point_json(p: &Point) -> String {
    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("family", p.family);
    w.field_u64("n", p.n as u64);
    w.field_u64("m", p.m as u64);
    w.field_u64("delta", p.delta as u64);
    w.field_u64("validate_nanos", p.validate_nanos);
    w.field_f64("validate_edges_per_sec", p.validate_edges_per_sec);
    w.field_u64("misra_gries_nanos", p.misra_gries_nanos);
    w.field_f64("misra_gries_edges_per_sec", p.misra_gries_edges_per_sec);
    w.field_u64("d1lc_nanos", p.d1lc_nanos);
    w.field_f64("d1lc_vertices_per_sec", p.d1lc_vertices_per_sec);
    w.finish()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let started = Instant::now();
    let mut marks = ColorMarks::new();
    let mut points = Vec::new();
    for family in ["gnp", "gnm"] {
        for n in SIZES {
            let p = measure(family, n, &mut marks);
            println!(
                "{family:4} n={n:7} m={:7} Δ={:3} · validate {:9} ns ({:.1}M edges/s) · \
                 misra-gries {:9} ns · d1lc {:9} ns",
                p.m,
                p.delta,
                p.validate_nanos,
                p.validate_edges_per_sec / 1e6,
                p.misra_gries_nanos,
                p.d1lc_nanos,
            );
            points.push(p);
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    // Schema smoke invariants: a zero timing or a missing phase means
    // the benchmark is broken, not fast.
    assert_eq!(points.len(), 2 * SIZES.len(), "full grid measured");
    for p in &points {
        assert!(p.m > 0 && p.delta > 0, "graphs must be nonempty");
        assert!(
            p.validate_nanos > 0 && p.misra_gries_nanos > 0 && p.d1lc_nanos > 0,
            "all phase timings must be positive"
        );
    }

    let rows: Vec<String> = points.iter().map(point_json).collect();
    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "hotpath");
    w.field_u64("sizes", SIZES.len() as u64);
    w.field_f64("wall_seconds", wall_seconds);
    w.field_raw("grid", &format!("[{}]", rows.join(",")));
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wall {wall_seconds:.3}s → {out_path}");
}
