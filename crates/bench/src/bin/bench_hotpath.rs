//! **bench-hotpath** — microbenchmark of the dense edge-indexed hot
//! path: the validator pass (`ColorMarks` + dense `EdgeColoring`),
//! Misra–Gries fan coloring, and the D1LC finishing protocol, timed
//! on gnp/gnm grids at n ∈ {1e3, 1e4, 1e5, 1e6} × an intra-trial
//! thread-budget axis {1, 4, 8}, and written to `BENCH_hotpath.json`
//! (nanos per phase + edges/sec) so CI tracks hot-path throughput
//! across PRs. A full run also times two end-to-end campaign shapes
//! (few giant cells vs a 100+-cell small grid) through the real
//! runner, exercising the queue-occupancy budget scheduler.
//!
//! The bin asserts its own schema invariants (all timings > 0, every
//! phase present) before writing, so a malformed benchmark fails the
//! run instead of producing a silently broken trajectory point.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_hotpath \
//!     [out.json] [--max-n N] [--threads T]
//! ```
//!
//! `--max-n` drops grid sizes above `N`; `--threads` restricts the
//! budget axis to one value. Either filter also skips the campaign
//! section (CI uses `--max-n 100000 --threads 8` for a quick
//! trajectory point).

use bichrome_comm::Side;
use bichrome_core::d1lc::{solve_d1lc, D1lcInput};
use bichrome_graph::coloring::{ColorId, ColorMarks};
use bichrome_graph::edge_color::misra_gries_with_budget;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, Graph, VertexId};
use bichrome_runner::{Campaign, GraphSpec};
use std::time::Instant;

/// The benchmark's graph sizes.
const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// The intra-trial thread-budget axis.
const THREADS: [usize; 3] = [1, 4, 8];

/// Average degree targeted by both families.
const AVG_DEGREE: usize = 8;

/// Keep every `KEEP_EVERY`-th vertex uncolored for the D1LC phase.
const KEEP_EVERY: usize = 4;

/// How many validator repetitions to time (the pass is fast; reps
/// keep the measurement out of clock-granularity noise).
const VALIDATE_REPS: u32 = 20;

/// One timed grid point.
struct Point {
    family: &'static str,
    n: usize,
    m: usize,
    delta: usize,
    threads: usize,
    validate_nanos: u64,
    validate_nanos_p50: f64,
    validate_nanos_p95: f64,
    validate_nanos_p99: f64,
    validate_edges_per_sec: f64,
    misra_gries_nanos: u64,
    misra_gries_edges_per_sec: f64,
    d1lc_nanos: u64,
    d1lc_vertices_per_sec: f64,
}

fn build(family: &'static str, n: usize, seed: u64) -> Graph {
    match family {
        "gnp" => gen::gnp(n, AVG_DEGREE as f64 / n as f64, seed),
        "gnm" => gen::gnm_max_degree(n, n * AVG_DEGREE / 2, AVG_DEGREE + 4, seed),
        other => panic!("unknown family {other}"),
    }
}

/// Times one `(family, n)` slice of the grid: the graph, validator
/// timing, and D1LC instance are built once and reused across the
/// thread-budget axis (outputs are bit-identical at every budget, so
/// only the timings differ).
fn measure(
    family: &'static str,
    n: usize,
    threads_axis: &[usize],
    marks: &mut ColorMarks,
) -> Vec<Point> {
    let g = build(family, n, 1);
    let m = g.num_edges();
    let delta = g.max_degree();
    let budget = delta + 1;
    let (ia, ib, zlen) = d1lc_instance(&g);
    let per_sec = |nanos: u64, units: usize| units as f64 / (nanos as f64 / 1e9);

    threads_axis
        .iter()
        .map(|&threads| {
            // --- Misra–Gries (Proposition 3.4) at this budget. ---
            let started = Instant::now();
            let coloring = misra_gries_with_budget(&g, threads);
            let misra_gries_nanos = started.elapsed().as_nanos() as u64;

            // --- Validator pass over the coloring, scratch reused.
            // Each rep lands in an obs histogram so the trajectory
            // carries tail latency, not just the mean. ---
            let (n_label, t_label) = (n.to_string(), threads.to_string());
            let validate_hist = bichrome_obs::histogram_labeled(
                "bench_validate_nanos",
                &[("family", family), ("n", &n_label), ("threads", &t_label)],
            );
            let started = Instant::now();
            for _ in 0..VALIDATE_REPS {
                let rep = Instant::now();
                marks
                    .check_edge_coloring_with_palette(&g, &coloring, budget)
                    .expect("Misra–Gries colorings are valid");
                validate_hist.observe(rep.elapsed().as_nanos() as u64);
            }
            let validate_nanos =
                (started.elapsed().as_nanos() as u64 / u128::from(VALIDATE_REPS) as u64).max(1);

            // --- D1LC rounds with this trial-wide thread budget. ---
            let (ia, ib) = (ia.clone(), ib.clone());
            let started = Instant::now();
            let (ca, cb, _) = bichrome_comm::with_intra_budget(threads, || {
                bichrome_comm::session::run_two_party_ctx(
                    7,
                    move |ctx| solve_d1lc(&ia, &ctx),
                    move |ctx| solve_d1lc(&ib, &ctx),
                )
            });
            let d1lc_nanos = started.elapsed().as_nanos() as u64;
            assert_eq!(ca, cb, "D1LC parties must agree");

            Point {
                family,
                n,
                m,
                delta,
                threads,
                validate_nanos,
                validate_nanos_p50: validate_hist.percentile(50.0),
                validate_nanos_p95: validate_hist.percentile(95.0),
                validate_nanos_p99: validate_hist.percentile(99.0),
                validate_edges_per_sec: per_sec(validate_nanos, m),
                misra_gries_nanos,
                misra_gries_edges_per_sec: per_sec(misra_gries_nanos, m),
                d1lc_nanos,
                d1lc_vertices_per_sec: per_sec(d1lc_nanos, zlen),
            }
        })
        .collect()
}

/// Builds a realistic D1LC instance the way Theorem 1 does: greedily
/// pre-color all but every [`KEEP_EVERY`]-th vertex publicly, take
/// `Z` = the rest, and give each party the palette minus the colors
/// of *its own* colored neighbors.
fn d1lc_instance(g: &Graph) -> (D1lcInput, D1lcInput, usize) {
    let p = Partitioner::Alternating.split(g);
    let palette = g.max_degree() + 1;
    let full = bichrome_graph::greedy::greedy_vertex_coloring(g);
    let z: Vec<VertexId> = g
        .vertices()
        .filter(|v| v.index().is_multiple_of(KEEP_EVERY))
        .collect();
    let pre = |v: VertexId| -> Option<ColorId> {
        if v.index().is_multiple_of(KEEP_EVERY) {
            None
        } else {
            full.get(v)
        }
    };
    let psi_of = |side: &Graph| -> Vec<Vec<ColorId>> {
        let mut occ_marks = vec![0u32; palette];
        z.iter()
            .enumerate()
            .map(|(stamp, &v)| {
                let stamp = stamp as u32 + 1;
                for &u in side.neighbors(v) {
                    if let Some(c) = pre(u) {
                        occ_marks[c.index()] = stamp;
                    }
                }
                (0..palette as u32)
                    .map(ColorId)
                    .filter(|c| occ_marks[c.index()] != stamp)
                    .collect()
            })
            .collect()
    };
    let psi_a = psi_of(p.alice());
    let psi_b = psi_of(p.bob());
    let zlen = z.len();
    let ia = D1lcInput {
        side: Side::Alice,
        graph: p.alice().clone(),
        z: z.clone(),
        psi: psi_a,
        palette,
    };
    let ib = D1lcInput {
        side: Side::Bob,
        graph: p.bob().clone(),
        z,
        psi: psi_b,
        palette,
    };
    (ia, ib, zlen)
}

fn point_json(p: &Point) -> String {
    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("family", p.family);
    w.field_u64("n", p.n as u64);
    w.field_u64("m", p.m as u64);
    w.field_u64("delta", p.delta as u64);
    w.field_u64("threads", p.threads as u64);
    w.field_u64("validate_nanos", p.validate_nanos);
    w.field_f64("validate_nanos_p50", p.validate_nanos_p50);
    w.field_f64("validate_nanos_p95", p.validate_nanos_p95);
    w.field_f64("validate_nanos_p99", p.validate_nanos_p99);
    w.field_f64("validate_edges_per_sec", p.validate_edges_per_sec);
    w.field_u64("misra_gries_nanos", p.misra_gries_nanos);
    w.field_f64("misra_gries_edges_per_sec", p.misra_gries_edges_per_sec);
    w.field_u64("d1lc_nanos", p.d1lc_nanos);
    w.field_f64("d1lc_vertices_per_sec", p.d1lc_vertices_per_sec);
    w.finish()
}

/// One end-to-end campaign timing through the real runner (queue →
/// budget assignment → executor), reported as trajectory evidence for
/// the two scheduling regimes: few giant cells (each trial gets a
/// multi-thread budget) vs a wide small grid (1 thread per trial, so
/// the budget machinery must cost nothing).
struct CampaignPoint {
    label: &'static str,
    cells: usize,
    trials: u64,
    intra_threads: u64,
    wall_seconds: f64,
}

fn campaign_json(p: &CampaignPoint) -> String {
    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("label", p.label);
    w.field_u64("cells", p.cells as u64);
    w.field_u64("trials", p.trials);
    w.field_u64("intra_threads", p.intra_threads);
    w.field_f64("wall_seconds", p.wall_seconds);
    w.finish()
}

/// Four big cells at n = 1e5: two protocols × two partitioners, one
/// seed — the "queue occupancy hands each trial several threads"
/// regime.
fn giant_campaign() -> CampaignPoint {
    let started = Instant::now();
    let (report, stats) = Campaign::new()
        .protocol_keys(["vertex/theorem1", "edge/theorem2"])
        .graphs([GraphSpec::Gnp {
            n: 100_000,
            p: AVG_DEGREE as f64 / 100_000.0,
        }])
        .partitioners([Partitioner::Alternating, Partitioner::Random(1)])
        .seeds([1])
        .run_with_stats();
    CampaignPoint {
        label: "giant-4-cells-n1e5",
        cells: report.cells.len(),
        trials: stats.trials_computed,
        intra_threads: stats.intra_threads,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// A 100+-cell grid of small instances — the "stay at 1 thread per
/// trial" regime the budget scheduler must not slow down.
fn small_grid_campaign() -> CampaignPoint {
    let started = Instant::now();
    let (report, stats) = Campaign::new()
        .protocol_keys([
            "vertex/theorem1",
            "edge/theorem2",
            "baseline/send-everything",
        ])
        .graphs([GraphSpec::NearRegular { n: 64, d: 8 }])
        .sizes((64..400).step_by(9))
        .seeds([1])
        .run_with_stats();
    CampaignPoint {
        label: "small-grid-100plus-cells",
        cells: report.cells.len(),
        trials: stats.trials_computed,
        intra_threads: stats.intra_threads,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut max_n: Option<usize> = None;
    let mut only_threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-n" => {
                let v = args.next().expect("--max-n needs a value");
                max_n = Some(v.parse().expect("--max-n must be an integer"));
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                only_threads = Some(v.parse().expect("--threads must be an integer"));
            }
            other => out_path = other.to_string(),
        }
    }
    let sizes: Vec<usize> = SIZES
        .into_iter()
        .filter(|&n| max_n.is_none_or(|cap| n <= cap))
        .collect();
    let threads_axis: Vec<usize> = match only_threads {
        Some(t) => vec![t],
        None => THREADS.to_vec(),
    };
    let full_grid = max_n.is_none() && only_threads.is_none();

    let started = Instant::now();
    let mut marks = ColorMarks::new();
    let mut points = Vec::new();
    for family in ["gnp", "gnm"] {
        for &n in &sizes {
            for p in measure(family, n, &threads_axis, &mut marks) {
                println!(
                    "{family:4} n={n:7} m={:8} Δ={:3} t={} · validate {:9} ns ({:.1}M edges/s) · \
                     misra-gries {:10} ns · d1lc {:11} ns",
                    p.m,
                    p.delta,
                    p.threads,
                    p.validate_nanos,
                    p.validate_edges_per_sec / 1e6,
                    p.misra_gries_nanos,
                    p.d1lc_nanos,
                );
                points.push(p);
            }
        }
    }

    // End-to-end campaign regimes, only on unfiltered runs (CI's
    // filtered trajectory point skips them).
    let campaigns: Vec<CampaignPoint> = if full_grid {
        let giant = giant_campaign();
        println!(
            "campaign {} · {} cells · {} trials · intra-threads ≤ {} · wall {:.3}s",
            giant.label, giant.cells, giant.trials, giant.intra_threads, giant.wall_seconds
        );
        let small = small_grid_campaign();
        println!(
            "campaign {} · {} cells · {} trials · intra-threads ≤ {} · wall {:.3}s",
            small.label, small.cells, small.trials, small.intra_threads, small.wall_seconds
        );
        vec![giant, small]
    } else {
        Vec::new()
    };
    let wall_seconds = started.elapsed().as_secs_f64();

    // Schema smoke invariants: a zero timing or a missing phase means
    // the benchmark is broken, not fast.
    assert_eq!(
        points.len(),
        2 * sizes.len() * threads_axis.len(),
        "full grid measured"
    );
    for p in &points {
        assert!(p.m > 0 && p.delta > 0, "graphs must be nonempty");
        assert!(
            p.validate_nanos > 0 && p.misra_gries_nanos > 0 && p.d1lc_nanos > 0,
            "all phase timings must be positive"
        );
        assert!(
            p.validate_nanos_p50 > 0.0
                && p.validate_nanos_p50 <= p.validate_nanos_p95
                && p.validate_nanos_p95 <= p.validate_nanos_p99,
            "validator percentiles must be positive and ordered"
        );
    }
    for c in &campaigns {
        assert!(c.cells > 0 && c.wall_seconds > 0.0, "campaigns must run");
    }
    if full_grid {
        assert!(
            campaigns[1].cells > 100,
            "small grid must exceed 100 cells, got {}",
            campaigns[1].cells
        );
    }

    let rows: Vec<String> = points.iter().map(point_json).collect();
    let camp_rows: Vec<String> = campaigns.iter().map(campaign_json).collect();
    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "hotpath");
    w.field_u64("sizes", sizes.len() as u64);
    w.field_raw(
        "threads_axis",
        &format!(
            "[{}]",
            threads_axis
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    w.field_f64("wall_seconds", wall_seconds);
    w.field_raw("grid", &format!("[{}]", rows.join(",")));
    w.field_raw("campaigns", &format!("[{}]", camp_rows.join(",")));
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wall {wall_seconds:.3}s → {out_path}");
}
