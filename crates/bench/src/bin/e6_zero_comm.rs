//! **E6** — Theorem 3 (`2Δ` colors, zero communication) and Lemma 5.1
//! (constant Δ, one round): the color-count / communication trade-off
//! around the Ω(n) threshold of Theorem 4.

use bichrome_bench::Table;
use bichrome_core::edge::two_delta::solve_two_delta;
use bichrome_core::edge::solve_edge_coloring;
use bichrome_graph::coloring::validate_edge_coloring_with_palette;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::gen;

fn main() {
    println!("E6: the last color costs Ω(n) bits (Theorems 2, 3, 4)\n");
    let mut t = Table::new(&["n", "Δ", "colors", "bits", "rounds", "protocol"]);
    for &n in &[256usize, 1024] {
        for &delta in &[6usize, 12] {
            let g = gen::gnm_max_degree(n, n * delta / 3, delta, 5);
            let d = g.max_degree();
            let p = Partitioner::Random(3).split(&g);

            // (2Δ)-coloring: zero communication (Theorem 3).
            let (a, b) = solve_two_delta(&p);
            let mut merged = a;
            merged.merge(&b).expect("disjoint");
            validate_edge_coloring_with_palette(&g, &merged, 2 * d).expect("valid");
            t.row(&[
                &n.to_string(),
                &d.to_string(),
                &format!("2Δ = {}", 2 * d),
                "0",
                "0",
                "Theorem 3 (local only)",
            ]);

            // (2Δ−1)-coloring: Θ(n) bits (Theorem 2; lower bound Thm 4).
            let out = solve_edge_coloring(&p, 0);
            validate_edge_coloring_with_palette(&g, &out.merged(), 2 * d - 1)
                .expect("valid");
            let label = if d <= 7 { "Lemma 5.1" } else { "Algorithm 2" };
            t.row(&[
                &n.to_string(),
                &d.to_string(),
                &format!("2Δ−1 = {}", 2 * d - 1),
                &out.stats.total_bits().to_string(),
                &out.stats.rounds.to_string(),
                label,
            ]);
        }
    }
    t.print();
    println!(
        "\nClaim check: with 2Δ colors the parties need not talk at all; \
         dropping a single color forces Θ(n) bits — and Theorem 4 proves no \
         protocol can do better than Ω(n)."
    );
}
