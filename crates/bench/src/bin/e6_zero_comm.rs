//! **E6** — Theorem 3 (`2Δ` colors, zero communication) and Lemma 5.1
//! (constant Δ, one round): the color-count / communication trade-off
//! around the Ω(n) threshold of Theorem 4.
//!
//! Ported to `bichrome-runner`: both sides of the trade-off are
//! registry protocols run on the same instance.

use bichrome_bench::Table;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Instance};

fn main() {
    println!("E6: the last color costs Ω(n) bits (Theorems 2, 3, 4)\n");
    let reg = registry();
    let zero_comm = reg.get("edge/theorem3-zero-comm").expect("registered");
    let theorem2 = reg.get("edge/theorem2").expect("registered");
    let mut t = Table::new(&["n", "Δ", "colors", "bits", "rounds", "protocol"]);
    for &n in &[256usize, 1024] {
        for &delta in &[6usize, 12] {
            let g = gen::gnm_max_degree(n, n * delta / 3, delta, 5);
            let d = g.max_degree();
            let inst = Instance::new("gnm", Partitioner::Random(3).split(&g), 0);

            // (2Δ)-coloring: zero communication (Theorem 3).
            let out = zero_comm.run(&inst);
            assert!(out.verdict.is_valid(), "Theorem 3 must validate");
            t.row(&[
                &n.to_string(),
                &d.to_string(),
                &format!("2Δ = {}", 2 * d),
                &out.stats.total_bits().to_string(),
                &out.stats.rounds.to_string(),
                "Theorem 3 (local only)",
            ]);

            // (2Δ−1)-coloring: Θ(n) bits (Theorem 2; lower bound Thm 4).
            let out = theorem2.run(&inst);
            assert!(out.verdict.is_valid(), "Theorem 2 must validate");
            let label = if d <= 7 { "Lemma 5.1" } else { "Algorithm 2" };
            t.row(&[
                &n.to_string(),
                &d.to_string(),
                &format!("2Δ−1 = {}", 2 * d - 1),
                &out.stats.total_bits().to_string(),
                &out.stats.rounds.to_string(),
                label,
            ]);
        }
    }
    t.print();
    println!(
        "\nClaim check: with 2Δ colors the parties need not talk at all; \
         dropping a single color forces Θ(n) bits — and Theorem 4 proves no \
         protocol can do better than Ω(n)."
    );
}
