//! **A2 (ablation)** — regenerates the EXPERIMENTS.md
//! sampling-constant table: Algorithm 3's constant (the `150` in
//! `p = min(1, 150·m/k̃²)`), swept against slack-int cost.
//!
//! Driven by one campaign per slack:
//! `Campaign::new().protocols(cs.map(|c| SlackIntProbe::with_constant(m, k, c))).graphs([empty(n=1)]).seeds(0..25)` —
//! the constant sweep is the protocol axis.
//!
//! A small constant makes samples too thin, so the deficit certificate
//! `|S∩X| + |S∩Y| < |S|` keeps failing and the guess loop burns
//! rounds; a huge constant inflates the sample and the binary search
//! inside it. The paper's 150 guarantees a constant per-guess success
//! probability (Markov on the sampled occupancy); the sweep shows the
//! measured trade-off around it.

use bichrome_bench::Table;
use bichrome_runner::probes::{unit_graph, SlackIntProbe};
use bichrome_runner::{Campaign, Protocol};
use std::sync::Arc;

fn main() {
    println!("A2: ablation — Algorithm 3's sampling constant\n");
    let m = 4096usize;
    let constants = [2.0f64, 10.0, 50.0, 150.0, 600.0, 2400.0];
    for &k in &[64usize, 4] {
        println!("universe m = {m}, slack k = {k}:");
        let report = Campaign::new()
            .protocols(
                constants
                    .iter()
                    .map(|&c| Arc::new(SlackIntProbe::with_constant(m, k, c)) as Arc<dyn Protocol>),
            )
            .graphs([unit_graph()])
            .seeds(0..25)
            .run();
        assert!(report.all_valid(), "must find a free element");
        let mut t = Table::new(&["constant C", "bits mean", "rounds mean"]);
        for (cell, &c) in report.cells.iter().zip(&constants) {
            let s = cell.summary();
            t.row(&[
                &format!("{c}"),
                &format!("{:.1}", s.total_bits.mean),
                &format!("{:.1}", s.rounds.mean),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Reading: tiny constants save bits per probe but repeat probes \
         (rounds climb); very large constants certify immediately but pay a \
         larger in-sample binary search. The paper's C = 150 sits in the \
         flat region — any constant ≥ ~50 gives the same asymptotics, which \
         is why the analysis only needs 'sufficiently large'."
    );
}
