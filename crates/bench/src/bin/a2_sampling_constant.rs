//! **A2 (ablation)** — Algorithm 3's sampling constant (the `150` in
//! `p = min(1, 150·m/k̃²)`): sweep it and measure slack-int cost.
//!
//! A small constant makes samples too thin, so the deficit certificate
//! `|S∩X| + |S∩Y| < |S|` keeps failing and the guess loop burns
//! rounds; a huge constant inflates the sample and the binary search
//! inside it. The paper's 150 guarantees a constant per-guess success
//! probability (Markov on the sampled occupancy); the sweep shows the
//! measured trade-off around it.

use bichrome_bench::{mean, Table};
use bichrome_core::slack_int::run_slack_int_session_with_constant;

fn main() {
    println!("A2: ablation — Algorithm 3's sampling constant\n");
    let m = 4096usize;
    let reps = 25u64;
    for &k in &[64usize, 4] {
        println!("universe m = {m}, slack k = {k}:");
        let occupied = m - k;
        let x: Vec<u64> = (0..(occupied as u64) / 2).collect();
        let y: Vec<u64> = ((occupied as u64) / 2..occupied as u64).collect();
        let mut t = Table::new(&["constant C", "bits mean", "rounds mean"]);
        for &c in &[2.0f64, 10.0, 50.0, 150.0, 600.0, 2400.0] {
            let mut bits = Vec::new();
            let mut rounds = Vec::new();
            for seed in 0..reps {
                let (e, stats) = run_slack_int_session_with_constant(m, &x, &y, seed * 7 + 1, c);
                assert!(e >= occupied as u64, "must find a free element");
                bits.push(stats.total_bits() as f64);
                rounds.push(stats.rounds as f64);
            }
            t.row(&[
                &format!("{c}"),
                &format!("{:.1}", mean(&bits)),
                &format!("{:.1}", mean(&rounds)),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "Reading: tiny constants save bits per probe but repeat probes \
         (rounds climb); very large constants certify immediately but pay a \
         larger in-sample binary search. The paper's C = 150 sits in the \
         flat region — any constant ≥ ~50 gives the same asymptotics, which \
         is why the analysis only needs 'sufficiently large'."
    );
}
