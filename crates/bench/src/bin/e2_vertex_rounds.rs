//! **E2** — Theorem 1's round complexity versus the baselines: ours is
//! `O(log log n · log Δ)`, Flin–Mittal is `Θ(n)`, and the
//! deterministic greedy+binary-search is `Θ(n log Δ)`.
//!
//! Two sweeps: rounds vs `n` at fixed Δ (the headline), and rounds vs
//! `Δ` at fixed `n`. All three protocols run through one
//! `bichrome-runner` `TrialPlan` per cell.

use bichrome_bench::Table;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use bichrome_runner::{registry, Instance, TrialPlan};

/// Mean rounds per protocol key over `reps` seeded instances.
fn rounds_for(n: usize, delta: usize, reps: u64) -> (f64, f64, f64) {
    let reg = registry();
    let mean_rounds = |key: &str| {
        let instances = (0..reps).map(|rep| {
            let g = gen::near_regular(n, delta, rep * 31 + n as u64);
            Instance::new("near-regular", Partitioner::Random(rep).split(&g), rep)
        });
        let report = TrialPlan::new(reg.get(key).expect("registered"))
            .instances(instances)
            .run();
        assert!(report.all_valid(), "{key} must validate");
        report.summary.rounds.mean
    };
    (
        mean_rounds("vertex/theorem1"),
        mean_rounds("baseline/flin-mittal"),
        mean_rounds("baseline/greedy-binary-search"),
    )
}

fn main() {
    println!("E2: (Δ+1)-vertex coloring — rounds (Theorem 1 vs baselines)\n");
    println!("Sweep 1: rounds vs n at Δ = 16");
    let mut t = Table::new(&["n", "ours", "flin-mittal", "greedy-binsearch", "FM/ours"]);
    for &n in &[128usize, 256, 512, 1024, 2048] {
        let (ours, fm, gbs) = rounds_for(n, 16, 2);
        t.row(&[
            &n.to_string(),
            &format!("{ours:.0}"),
            &format!("{fm:.0}"),
            &format!("{gbs:.0}"),
            &format!("{:.1}x", fm / ours),
        ]);
    }
    t.print();

    println!("\nSweep 2: rounds vs Δ at n = 512");
    let mut t = Table::new(&["Δ", "ours", "flin-mittal", "greedy-binsearch"]);
    for &delta in &[4usize, 8, 16, 32, 64] {
        let (ours, fm, gbs) = rounds_for(512, delta, 2);
        t.row(&[
            &delta.to_string(),
            &format!("{ours:.0}"),
            &format!("{fm:.0}"),
            &format!("{gbs:.0}"),
        ]);
    }
    t.print();
    println!(
        "\nClaim check: baseline rounds grow linearly with n while ours grow \
         only with log log n · log Δ — the FM/ours ratio widens with n."
    );
}
