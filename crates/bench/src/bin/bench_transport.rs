//! **bench-transport** — the wire-layer benchmark: writes
//! `BENCH_transport.json` so CI can chart three things across PRs:
//!
//! 1. **Per-exchange latency.** One two-party session per transport
//!    (`inproc` / `pipe` / `tcp`) ping-pongs a small message a few
//!    thousand times; ns per exchange, best-of-3. The metered stats
//!    are asserted identical across transports — the wire must never
//!    change the numbers, only the clock. A fourth row repeats the
//!    TCP session under a recoverable fault plan (sever + corrupt +
//!    short reads) and asserts the stats *still* match: chaos lives
//!    below the meter, so it may only cost wall-clock.
//! 2. **Frame batching.** Streams frames over a real loopback TCP
//!    socket two ways: through the `FramedLink`-style `BufWriter`
//!    (header + payload coalesce into one syscall per frame) and
//!    through the raw unbuffered stream (two syscalls per frame).
//!    Records both timings and the speedup.
//! 3. **Distributed throughput.** The same campaign executed by the
//!    daemon's local pool (`workers = 0` remote) and by a
//!    scheduler-only daemon with 2 / 4 remote workers pulling
//!    `lease`/`complete` over a real TCP socket; trials/sec each.
//!
//! ```sh
//! cargo run --release -p bichrome-bench --bin bench_transport [out.json]
//! ```

use bichrome_comm::session::run_two_party_ctx_on;
use bichrome_comm::transport::{read_frame, write_frame};
use bichrome_comm::{with_session_faults, BitWriter, CommStats, FaultPlan, Message, TransportKind};
use bichrome_runner::{compute_trial, InstanceCache};
use bichrome_serve::{Addr, Client, Daemon, DaemonConfig, LeaseGrant, Listener};
use bichrome_store::TrialKey;
use std::io::{BufReader, BufWriter as IoBufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

/// Ping-pong exchanges per latency session.
const EXCHANGES: u64 = 2_000;

/// Frames streamed per batching pass.
const FRAMES: u64 = 20_000;

/// Trials in the distributed-throughput campaign.
const TRIALS: u64 = 24;

/// A scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bichrome-bench-transport-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Times `EXCHANGES` round-synchronous exchanges over `kind`; returns
/// (wall seconds, the metered stats) — the stats must match across
/// transports. Both parties run the same script: one `exchange` per
/// round, each verifying the peer echoed the round index. Every
/// exchange also lands in a per-transport obs histogram
/// (`bench_exchange_nanos`), so the written percentiles cover both
/// parties across all best-of-3 passes.
fn time_exchanges(kind: TransportKind) -> (f64, CommStats) {
    let hist = exchange_hist(kind);
    let script = move |ep: &bichrome_comm::Endpoint| {
        for i in 0..EXCHANGES {
            let mut w = BitWriter::new();
            w.write_uint(i % 64, 6);
            let one = Instant::now();
            let reply = ep.exchange(w.finish());
            hist.observe(one.elapsed().as_nanos() as u64);
            assert_eq!(reply.reader().read_uint(6), i % 64);
        }
    };
    let started = Instant::now();
    let (_, _, stats) = run_two_party_ctx_on(
        kind,
        0,
        {
            let script = script.clone();
            move |ctx| script(&ctx.endpoint)
        },
        move |ctx| script(&ctx.endpoint),
    );
    (started.elapsed().as_secs_f64(), stats)
}

/// The per-transport exchange-latency histogram.
fn exchange_hist(kind: TransportKind) -> bichrome_obs::Histogram {
    bichrome_obs::histogram_labeled("bench_exchange_nanos", &[("transport", &kind.to_string())])
}

/// [`time_exchanges`] over TCP under a recoverable fault plan — one
/// severed connection, one corrupted frame, and a few short reads.
/// The wall-clock row prices the self-healing machinery; the metered
/// stats are asserted untouched (faults live below the meter).
fn time_faulted_exchanges(plan: &FaultPlan) -> (f64, CommStats) {
    with_session_faults(plan, || time_exchanges(TransportKind::Tcp))
}

/// A ~32-byte frame payload, like a real protocol round's message.
fn bench_message() -> Message {
    let mut w = BitWriter::new();
    for i in 0..256u64 {
        w.write_bit(i % 3 == 0);
    }
    w.finish()
}

/// Streams `FRAMES` frames over loopback TCP and waits for the
/// reader's ack. `batched` sends each frame through a `BufWriter`
/// (one flush = one syscall per frame, as `FramedLink` does);
/// unbatched writes header and payload straight to the socket (two
/// syscalls per frame).
fn time_frames(batched: bool) -> f64 {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let reader_side = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..FRAMES {
            let msg = read_frame(&mut reader).expect("frame");
            assert_eq!(msg.len_bits(), 256);
        }
        // One ack byte so the writer's clock covers full delivery.
        (&stream).write_all(&[1]).expect("ack");
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let msg = bench_message();

    let started = Instant::now();
    if batched {
        let mut w = IoBufWriter::new(stream.try_clone().expect("clone"));
        for _ in 0..FRAMES {
            write_frame(&mut w, &msg).expect("send");
            w.flush().expect("flush");
        }
    } else {
        for _ in 0..FRAMES {
            write_frame(&mut stream, &msg).expect("send");
        }
    }
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).expect("ack");
    let secs = started.elapsed().as_secs_f64();
    reader_side.join().expect("reader thread");
    secs
}

/// The distributed-throughput campaign: one deterministic protocol,
/// `TRIALS` disjoint seeds, sessions over TCP.
fn campaign_toml() -> String {
    format!(
        "[campaign]\n\
         protocols = [\"edge/theorem2\"]\n\
         graphs    = [\"near-regular(n=48,d=4)\"]\n\
         seeds     = \"0..{TRIALS}\"\n\
         transport = \"tcp\"\n"
    )
}

/// One worker thread: pull leases over the socket, compute, complete,
/// until the daemon goes idle-with-nothing-left (the watcher below
/// ends the measurement; `stop` only fires on drain).
fn worker_loop(addr: &Addr, done: &std::sync::atomic::AtomicBool) -> u64 {
    use std::sync::atomic::Ordering;
    let client = Client::new(addr.clone());
    let cache = InstanceCache::new();
    let mut computed = 0;
    while !done.load(Ordering::SeqCst) {
        match client.lease().expect("lease") {
            LeaseGrant::Trial(t) => {
                let key = TrialKey {
                    protocol: t.protocol.clone(),
                    graph: t.graph.clone(),
                    partitioner: t.partitioner.clone(),
                    seed: t.seed,
                };
                let kind: TransportKind = t.transport.parse().expect("transport");
                let fault: FaultPlan = t.fault.parse().expect("fault");
                let record = compute_trial(&key, kind, &fault, &cache).expect("compute");
                client
                    .complete(t.lease, &record.to_json())
                    .expect("complete");
                computed += 1;
            }
            LeaseGrant::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
            LeaseGrant::Stop => break,
        }
    }
    computed
}

/// Submits the campaign to a fresh daemon and times it to completion.
/// `remote_workers = 0` uses the daemon's own local pool; otherwise
/// the daemon is a pure scheduler and `remote_workers` threads pull
/// trials over a real TCP socket.
fn time_workers(remote_workers: usize) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};
    let dir = scratch(&format!("workers-{remote_workers}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let daemon = Daemon::start(
        dir.join("store"),
        DaemonConfig {
            local_pool: remote_workers == 0,
            ..DaemonConfig::default()
        },
    )
    .expect("start daemon");
    let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".to_string())).expect("bind");
    let addr = Addr::parse(&listener.local_addr().to_string()).expect("effective addr");
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || daemon.serve(listener))
    };

    let client = Client::new(addr.clone());
    let done = AtomicBool::new(false);
    let started = Instant::now();
    let wall = std::thread::scope(|scope| {
        for _ in 0..remote_workers {
            let addr = addr.clone();
            let done = &done;
            scope.spawn(move || worker_loop(&addr, done));
        }
        let job = client.submit(&campaign_toml()).expect("submit");
        let end = client.watch(job, |_trial| {}).expect("watch");
        assert_eq!(
            end.as_object().expect("end")["state"].as_str(),
            Some("done"),
            "job must finish"
        );
        let wall = started.elapsed().as_secs_f64();
        done.store(true, Ordering::SeqCst);
        wall
    });

    client.shutdown().expect("shutdown");
    server.join().expect("serve thread").expect("serve exits");
    let _ = std::fs::remove_dir_all(&dir);
    wall
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_transport.json".to_string());

    // Per-exchange latency, best-of-3 per transport — with the
    // transport-invariance assertion on the metered stats.
    println!("bench-transport: {EXCHANGES} ping-pong exchanges per session...");
    let mut exchange_ns = Vec::new();
    let mut baseline: Option<CommStats> = None;
    for kind in TransportKind::ALL {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (secs, stats) = time_exchanges(kind);
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => assert_eq!(
                    &stats, b,
                    "{kind} must meter identically to the other transports"
                ),
            }
            best = best.min(secs);
        }
        let ns = best * 1e9 / EXCHANGES as f64;
        println!("  {kind:>6}: {ns:>9.0} ns/exchange");
        let hist = exchange_hist(kind);
        let percentiles = (
            hist.percentile(50.0),
            hist.percentile(95.0),
            hist.percentile(99.0),
        );
        exchange_ns.push((kind, ns, percentiles));
    }

    // The same TCP session under a recoverable fault plan, best-of-3
    // — prices reconnect/retransmit against the clean tcp row above.
    let plan = FaultPlan::new().sever_at(16).corrupt_at(64).short(8);
    let clean_stats = baseline.clone().expect("clean baseline stats");
    let mut faulted_best = f64::INFINITY;
    for _ in 0..3 {
        let (secs, stats) = time_faulted_exchanges(&plan);
        assert_eq!(
            stats, clean_stats,
            "faults must stay below the meter: stats are transport- and fault-invariant"
        );
        faulted_best = faulted_best.min(secs);
    }
    let faulted_ns = faulted_best * 1e9 / EXCHANGES as f64;
    println!("  tcp+fault[{plan}]: {faulted_ns:>9.0} ns/exchange");

    // Frame batching on a raw loopback socket.
    let unbatched = time_frames(false);
    let batched = time_frames(true);
    println!(
        "  {FRAMES} frames over TCP: batched {batched:.3}s · unbatched {unbatched:.3}s · {:.2}x",
        unbatched / batched
    );

    // Distributed throughput at 0 / 2 / 4 remote workers.
    println!("bench-transport: {TRIALS}-trial campaign per worker scale...");
    let scales = [0usize, 2, 4];
    let walls: Vec<f64> = scales.iter().map(|&n| time_workers(n)).collect();
    for (&n, &wall) in scales.iter().zip(&walls) {
        println!(
            "  {n} remote worker(s): {wall:.3}s · {:.1} trials/sec",
            TRIALS as f64 / wall
        );
    }

    let mut w = bichrome_runner::json::Writer::object();
    w.field_str("benchmark", "transport");
    w.field_u64("exchanges", EXCHANGES);
    for (kind, ns, (p50, p95, p99)) in &exchange_ns {
        w.field_f64(&format!("{kind}_exchange_ns"), *ns);
        w.field_f64(&format!("{kind}_exchange_ns_p50"), *p50);
        w.field_f64(&format!("{kind}_exchange_ns_p95"), *p95);
        w.field_f64(&format!("{kind}_exchange_ns_p99"), *p99);
    }
    w.field_str("fault_plan", &plan.to_string());
    w.field_f64("tcp_faulted_exchange_ns", faulted_ns);
    w.field_u64("frames", FRAMES);
    w.field_f64("tcp_frames_batched_seconds", batched);
    w.field_f64("tcp_frames_unbatched_seconds", unbatched);
    w.field_f64("frame_batching_speedup", unbatched / batched);
    w.field_u64("campaign_trials", TRIALS);
    for (&n, &wall) in scales.iter().zip(&walls) {
        w.field_f64(&format!("workers_{n}_wall_seconds"), wall);
        w.field_f64(&format!("workers_{n}_trials_per_sec"), TRIALS as f64 / wall);
    }
    let json = w.finish();
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("→ {out_path}");
}
