//! **A1 (ablation)** — why `O(log log n)` Random-Color-Trial
//! iterations before switching to D1LC (the design choice behind
//! Theorem 1): sweep the iteration budget and measure the leftover-set
//! size, total bits, and rounds of the full protocol.
//!
//! Too few iterations leave a large `Z` for the (more expensive per
//! vertex) D1LC stage; too many buy nothing once `Z` is tiny but pay
//! worst-case rounds. The paper's budget sits at the knee.

// This ablation reads RCT-internal instrumentation (`out.rct`), which
// sits below the runner's uniform Outcome, so it stays on the core
// entry point.
#![allow(deprecated)]

use bichrome_bench::{mean, Table};
use bichrome_core::rct::{paper_iterations, RctConfig};
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;

fn main() {
    println!("A1: ablation — RCT iteration budget vs protocol cost\n");
    let n = 1024usize;
    let delta = 16usize;
    let reps = 3u64;
    println!(
        "n = {n}, Δ = {delta}, paper budget = {} iterations\n",
        paper_iterations(n)
    );

    let mut t = Table::new(&[
        "iterations",
        "leftover |Z|",
        "total bits",
        "bits/n",
        "rounds",
    ]);
    for &iters in &[0usize, 1, 2, 4, 8, 16, 32, 64] {
        let mut leftover = Vec::new();
        let mut bits = Vec::new();
        let mut rounds = Vec::new();
        for rep in 0..reps {
            let g = gen::near_regular(n, delta, rep * 13 + 1);
            let p = Partitioner::Random(rep).split(&g);
            let cfg = RctConfig {
                iterations: Some(iters),
                early_exit: true,
            };
            let out = solve_vertex_coloring(&p, rep, &cfg);
            validate_vertex_coloring_with_palette(&g, &out.coloring, delta + 1)
                .expect("valid under every budget");
            leftover.push(out.rct.remaining as f64);
            bits.push(out.stats.total_bits() as f64);
            rounds.push(out.stats.rounds as f64);
        }
        t.row(&[
            &iters.to_string(),
            &format!("{:.0}", mean(&leftover)),
            &format!("{:.0}", mean(&bits)),
            &format!("{:.1}", mean(&bits) / n as f64),
            &format!("{:.0}", mean(&rounds)),
        ]);
    }
    t.print();
    println!(
        "\nReading: with 0 iterations everything lands in D1LC (pure palette \
         sparsification — correct but with a log⁴n bit overhead); a few \
         iterations collapse |Z| geometrically; beyond the knee extra \
         iterations only add rounds. The paper's O(log log n) budget drives \
         |Z| below n/log⁴n so the D1LC stage costs o(n) bits."
    );
}
