//! **A1 (ablation)** — regenerates the EXPERIMENTS.md
//! iteration-budget table: why `O(log log n)` Random-Color-Trial
//! iterations before switching to D1LC (the design choice behind
//! Theorem 1) — leftover-set size, total bits, and rounds of the full
//! protocol across the budget sweep.
//!
//! Driven by the one-line campaign
//! `Campaign::new().protocol_labeled("iters=N", VertexTheorem1 { config }).graphs([near-regular(n=1024,d=16)]).seeds(0..3)` —
//! the budget sweep is a *labeled protocol axis* (same registry key,
//! different tuning), and the leftover `|Z|` arrives as the
//! `rct_remaining` metric the registry protocol now reports.
//!
//! Too few iterations leave a large `Z` for the (more expensive per
//! vertex) D1LC stage; too many buy nothing once `Z` is tiny but pay
//! worst-case rounds. The paper's budget sits at the knee.

use bichrome_bench::Table;
use bichrome_core::rct::{paper_iterations, RctConfig};
use bichrome_runner::registry::VertexTheorem1;
use bichrome_runner::{Campaign, GraphSpec, Protocol};
use std::sync::Arc;

fn main() {
    println!("A1: ablation — RCT iteration budget vs protocol cost\n");
    let n = 1024usize;
    let delta = 16usize;
    println!(
        "n = {n}, Δ = {delta}, paper budget = {} iterations\n",
        paper_iterations(n)
    );

    let budgets = [0usize, 1, 2, 4, 8, 16, 32, 64];
    let mut campaign = Campaign::new()
        .graphs([GraphSpec::NearRegular { n, d: delta }])
        .seeds(0..3);
    for &iters in &budgets {
        let config = RctConfig {
            iterations: Some(iters),
            early_exit: true,
        };
        campaign = campaign.protocol_labeled(
            format!("iters={iters}"),
            Arc::new(VertexTheorem1 { config }) as Arc<dyn Protocol>,
        );
    }
    let report = campaign.run();
    assert!(report.all_valid(), "valid under every budget");

    let mut t = Table::new(&[
        "iterations",
        "leftover |Z|",
        "total bits",
        "bits/n",
        "rounds",
    ]);
    for (cell, &iters) in report.cells.iter().zip(&budgets) {
        let s = cell.summary();
        t.row(&[
            &iters.to_string(),
            &format!("{:.0}", s.metric("rct_remaining").mean),
            &format!("{:.0}", s.total_bits.mean),
            &format!("{:.1}", s.bits_per_vertex.mean),
            &format!("{:.0}", s.rounds.mean),
        ]);
    }
    t.print();
    println!(
        "\nReading: with 0 iterations everything lands in D1LC (pure palette \
         sparsification — correct but with a log⁴n bit overhead); a few \
         iterations collapse |Z| geometrically; beyond the knee extra \
         iterations only add rounds. The paper's O(log log n) budget drives \
         |Z| below n/log⁴n so the D1LC stage costs o(n) bits."
    );
}
