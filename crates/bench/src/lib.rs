//! Shared plumbing for the experiment binaries (`e1` – `e8`).
//!
//! Each binary regenerates one table of EXPERIMENTS.md; this crate
//! holds the text-table printer and small statistics helpers they
//! share. See DESIGN.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A plain-text table printer with right-aligned columns.
///
/// # Example
///
/// ```
/// use bichrome_bench::Table;
/// let mut t = Table::new(&["n", "bits", "bits/n"]);
/// t.row(&["256", "12000", "46.9"]);
/// let s = t.render();
/// assert!(s.contains("bits/n"));
/// assert!(s.contains("46.9"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header's.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Renders to an aligned string (with trailing newline).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&" ".repeat(widths[c] - cell.len()));
                line.push_str(cell);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a sample.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["12345", "6"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("bbbb"));
        assert!(lines[2].starts_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        Table::new(&["x"]).row(&["1", "2"]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}
