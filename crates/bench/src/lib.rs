//! Shared plumbing for the experiment binaries (`e1` – `e9`,
//! `a1` – `a2`, `bench_campaign`).
//!
//! Each binary regenerates one table of EXPERIMENTS.md by declaring a
//! `bichrome_runner::Campaign` (or, for the pinned historical setups,
//! a `TrialPlan`). The text-table printer and the statistics are the
//! runner crate's — exactly one implementation of each in the
//! workspace — so this crate only re-exports them.
//!
//! # Example
//!
//! ```
//! use bichrome_bench::{Aggregate, Table};
//! let mut t = Table::new(&["n", "bits", "bits/n"]);
//! t.row(&["256", "12000", "46.9"]);
//! assert!(t.render().contains("46.9"));
//! let a = Aggregate::of(&[2.0, 4.0]);
//! assert_eq!((a.mean, a.stddev), (3.0, 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bichrome_runner::table::Table;
pub use bichrome_runner::{Aggregate, Summary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["12345", "6"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("bbbb"));
        assert!(lines[2].starts_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        Table::new(&["x"]).row(&["1", "2"]);
    }

    #[test]
    fn reexported_aggregate_is_the_runner_statistics() {
        assert_eq!(Aggregate::of(&[]), Aggregate::default());
        let a = Aggregate::of(&[2.0, 4.0]);
        assert_eq!(a.mean, 3.0);
        assert_eq!(a.stddev, 1.0);
        assert_eq!(a.min, 2.0);
        assert_eq!(a.max, 4.0);
    }
}
