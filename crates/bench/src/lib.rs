//! Shared plumbing for the experiment binaries (`e1` – `e9`).
//!
//! Each binary regenerates one table of EXPERIMENTS.md. The
//! text-table printer is the runner crate's (one implementation for
//! the whole workspace); this crate re-exports it and keeps the small
//! statistics helpers the unported binaries still use.
//!
//! # Example
//!
//! ```
//! use bichrome_bench::Table;
//! let mut t = Table::new(&["n", "bits", "bits/n"]);
//! t.row(&["256", "12000", "46.9"]);
//! let s = t.render();
//! assert!(s.contains("bits/n"));
//! assert!(s.contains("46.9"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bichrome_runner::table::Table;

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a sample.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["12345", "6"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("bbbb"));
        assert!(lines[2].starts_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        Table::new(&["x"]).row(&["1", "2"]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}
