//! Criterion micro-benchmarks for the (Δ+1)-vertex-coloring
//! protocols: Theorem 1 vs the baselines, across graph sizes.

// These micro-benchmarks time the raw protocol sessions, not the
// runner harness (which adds validation), so they stay on the core
// entry points.
#![allow(deprecated)]

use bichrome_core::baselines::{run_baseline, Baseline};
use bichrome_core::rct::RctConfig;
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex/theorem1");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let g = gen::near_regular(n, 12, 1);
        let p = Partitioner::Random(2).split(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                solve_vertex_coloring(p, seed, &RctConfig::default())
            });
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex/baselines");
    group.sample_size(10);
    let n = 256usize;
    let g = gen::near_regular(n, 12, 1);
    let p = Partitioner::Random(2).split(&g);
    for baseline in [
        Baseline::FlinMittal,
        Baseline::GreedyBinarySearch,
        Baseline::SendEverything,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(baseline), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_baseline(p, baseline, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem1, bench_baselines);
criterion_main!(benches);
