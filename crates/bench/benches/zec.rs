//! Criterion micro-benchmarks for the Section 6 game machinery.

use bichrome_lb::repetition::run_parallel_repetition;
use bichrome_lb::zec::{
    estimate_win_probability, exact_win_probability, LabelingStrategy, RandomStrategy,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exact_eval(c: &mut Criterion) {
    let s = LabelingStrategy::shifted();
    c.bench_function("zec/exact_441", |b| b.iter(|| exact_win_probability(&s)));
}

fn bench_monte_carlo(c: &mut Criterion) {
    let s = RandomStrategy;
    let mut group = c.benchmark_group("zec/monte_carlo");
    for &trials in &[1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(trials),
            &trials,
            |b, &trials| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    estimate_win_probability(&s, trials, seed)
                });
            },
        );
    }
    group.finish();
}

fn bench_repetition(c: &mut Criterion) {
    let s = RandomStrategy;
    c.bench_function("zec/repetition_16x1000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_parallel_repetition(&s, 16, 1_000, seed)
        });
    });
}

criterion_group!(
    benches,
    bench_exact_eval,
    bench_monte_carlo,
    bench_repetition
);
criterion_main!(benches);
