//! Criterion micro-benchmarks for the k-Slack-Int machinery
//! (Lemmas A.1/A.2) at several slack levels.

use bichrome_core::slack_int::run_slack_int_session;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_slack_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("slack_int/by_slack");
    group.sample_size(20);
    let m = 1024usize;
    for &k in &[1usize, 32, 1023] {
        let occupied = m - k;
        let x: Vec<u64> = (0..(occupied as u64) / 2).collect();
        let y: Vec<u64> = ((occupied as u64) / 2..occupied as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &(x, y), |b, (x, y)| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_slack_int_session(m, x, y, seed)
            });
        });
    }
    group.finish();
}

fn bench_universe_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("slack_int/by_universe");
    group.sample_size(20);
    for &m in &[64usize, 512, 4096] {
        let x: Vec<u64> = (0..(m as u64) / 4).collect();
        let y: Vec<u64> = ((m as u64) / 4..(m as u64) / 2).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &(x, y), |b, (x, y)| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_slack_int_session(m, x, y, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slack_levels, bench_universe_sizes);
criterion_main!(benches);
