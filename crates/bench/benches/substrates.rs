//! Criterion micro-benchmarks for the graph substrates the protocols
//! stand on: Misra–Gries, constructive Fournier, Hopcroft–Karp
//! Δ-perfect matching, and the greedy colorings.

use bichrome_graph::edge_color::{fournier, misra_gries};
use bichrome_graph::gen;
use bichrome_graph::greedy::{greedy_edge_coloring, greedy_vertex_coloring};
use bichrome_graph::matching::delta_perfect_matching;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_misra_gries(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/misra_gries");
    for &n in &[100usize, 400, 1600] {
        let g = gen::gnm_max_degree(n, n * 4, 12, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| misra_gries(g));
        });
    }
    group.finish();
}

fn bench_fournier(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/fournier");
    for &n in &[100usize, 400, 1600] {
        let g = gen::independent_max_degree(n, 8, n / 12, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| fournier(g).expect("valid instance"));
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/delta_matching");
    for &n in &[100usize, 400, 1600] {
        let g = gen::independent_max_degree(n, 8, n / 12, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| delta_perfect_matching(g).expect("Lemma 5.3"));
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/greedy");
    let g = gen::gnm_max_degree(1000, 4000, 12, 4);
    group.bench_function("vertex_n1000", |b| b.iter(|| greedy_vertex_coloring(&g)));
    group.bench_function("edge_n1000", |b| b.iter(|| greedy_edge_coloring(&g)));
    group.finish();
}

criterion_group!(
    benches,
    bench_misra_gries,
    bench_fournier,
    bench_matching,
    bench_greedy
);
criterion_main!(benches);
