//! Criterion micro-benchmarks for the edge-coloring protocols:
//! Algorithm 2 (Theorem 2), Lemma 5.1, and the zero-communication
//! Theorem 3.

// These micro-benchmarks time the raw protocol sessions, not the
// runner harness (which adds validation), so they stay on the core
// entry points.
#![allow(deprecated)]

use bichrome_core::edge::solve_edge_coloring;
use bichrome_core::edge::two_delta::solve_two_delta;
use bichrome_graph::gen;
use bichrome_graph::partition::Partitioner;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge/theorem2");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let g = gen::gnm_max_degree(n, n * 4, 12, 3);
        let p = Partitioner::Random(1).split(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_edge_coloring(p, 0));
        });
    }
    group.finish();
}

fn bench_bounded_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge/lemma5.1");
    group.sample_size(10);
    let n = 512usize;
    let g = gen::gnm_max_degree(n, n * 2, 6, 3);
    let p = Partitioner::Random(1).split(&g);
    group.bench_function("delta6_n512", |b| {
        b.iter(|| solve_edge_coloring(&p, 0));
    });
    group.finish();
}

fn bench_two_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge/theorem3");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = gen::gnm_max_degree(n, n * 4, 12, 3);
        let p = Partitioner::Random(1).split(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_two_delta(p));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem2,
    bench_bounded_delta,
    bench_two_delta
);
criterion_main!(benches);
