//! `bichrome-lb` — the lower-bound machinery of Section 6 of *Round
//! and Communication Efficient Graph Coloring*.
//!
//! Lower bounds cannot be "run" the way protocols can, but every
//! combinatorial object in their proofs can, and this crate makes them
//! executable:
//!
//! * [`zec`] — the **zero-communication edge-coloring (ZEC) game**
//!   (§6.2): the 9-vertex hard instance, a strategy interface, exact
//!   evaluation of deterministic strategies over all 441 joint inputs,
//!   Monte-Carlo evaluation of randomized ones, and the label analysis
//!   (`L_A`/`L_B`) that drives Lemma 6.2's proof that *no* strategy
//!   wins with probability above `11024/11025`.
//! * [`repetition`] — the parallel-repetition harness: `n` independent
//!   ZEC instances, whose win-all probability decays like `2^{−Ω(n)}`
//!   (Lemma 6.4 via Raz's theorem), plus the communication-guessing
//!   simulation of Lemma 6.1 that converts an `o(n)`-bit protocol into
//!   a zero-communication one succeeding with probability `2^{−o(n)}`.
//! * [`zec_new`] — the ZEC-NEW variant (§6.4) whose extra
//!   hub-guessing win conditions transfer the bound to the
//!   weaker-(2Δ−1) problem and hence to the W-streaming model
//!   (Corollary 1.2).
//! * [`learning`] — the learning-problem reduction (§2.3) behind the
//!   `Ω(n)` bound for `(Δ+1)`-vertex coloring: from any proper
//!   3-coloring of the union-of-C4 gadget graph, Bob reconstructs
//!   Alice's n-bit string — demonstrated end-to-end against the actual
//!   Theorem 1 protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod best_response;
pub mod learning;
pub mod repetition;
pub mod zec;
pub mod zec_new;

pub use zec::{ZecStrategy, ZEC_WIN_BOUND};
