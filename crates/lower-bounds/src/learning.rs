//! The learning-problem reduction (§2.3) behind Flin–Mittal's `Ω(n)`
//! lower bound for `(Δ+1)`-vertex coloring.
//!
//! Alice holds a string `x ∈ {0,1}^n`; for each bit a 4-vertex gadget
//! `a_i, b_i, c_i, d_i` carries edges `{a,b}, {c,d}` plus the
//! x-dependent diagonal pairs, forming a `C_4` — so `Δ = 2` and
//! `Δ+1 = 3`. All edges belong to Alice. After *any*
//! `(Δ+1)`-vertex-coloring protocol, both parties know a proper
//! 3-coloring of a graph whose two candidate edge sets per gadget
//! union to `K_4`: a 3-coloring can be proper for only one of them, so
//! Bob reads off every `x_i` — he has *learned* `n` bits, which must
//! have cost `Ω(n)` communication.

use bichrome_core::rct::RctConfig;
#[allow(deprecated)] // this crate sits below bichrome-runner; see run_learning_reduction
use bichrome_core::vertex::solve_vertex_coloring;
use bichrome_graph::coloring::VertexColoring;
use bichrome_graph::partition::Partitioner;
use bichrome_graph::{gen, VertexId};

/// Builds the gadget graph for `bits` (all edges will be Alice's).
///
/// Re-exported convenience over [`gen::c4_gadget_union`].
pub fn gadget_graph(bits: &[bool]) -> bichrome_graph::Graph {
    gen::c4_gadget_union(bits)
}

/// Bob's decoder: recovers the bit of gadget `i` from any proper
/// 3-coloring of the gadget graph.
///
/// The `x_i = 0` gadget is the cycle `a−b−d−c−a` (diagonals `{a,d}`,
/// `{b,c}` absent) and the `x_i = 1` gadget is `a−b−c−d−a`. A proper
/// coloring of one is improper for the other (their union is `K_4`,
/// which needs 4 colors), so checking which candidate edge set is
/// conflict-free identifies the bit.
///
/// # Panics
///
/// Panics if the coloring is proper for neither candidate (i.e. it was
/// not a proper coloring of the gadget graph at all).
pub fn recover_bit(coloring: &VertexColoring, gadget: usize) -> bool {
    let base = 4 * gadget as u32;
    let col = |off: u32| {
        coloring
            .get(VertexId(base + off))
            .expect("gadget vertices are colored")
    };
    let (a, b, c, d) = (col(0), col(1), col(2), col(3));
    // Common edges {a,b}, {c,d} must be proper either way.
    assert_ne!(a, b, "input coloring improper on a common edge");
    assert_ne!(c, d, "input coloring improper on a common edge");
    let zero_ok = a != c && b != d; // edges {a,c}, {b,d}
    let one_ok = a != d && b != c; // edges {a,d}, {b,c}
    match (zero_ok, one_ok) {
        (true, false) => false,
        (false, true) => true,
        (true, true) => unreachable!("3-coloring cannot be proper for K4's union"),
        (false, false) => panic!("coloring proper for neither gadget orientation"),
    }
}

/// Recovers the whole string.
pub fn recover_bits(coloring: &VertexColoring, n_bits: usize) -> Vec<bool> {
    (0..n_bits).map(|i| recover_bit(coloring, i)).collect()
}

/// Runs the full reduction end-to-end against the actual Theorem 1
/// protocol: builds the gadget graph, gives Alice all edges, runs the
/// protocol, and decodes Bob's view. Returns the recovered string and
/// the bits of communication spent.
pub fn run_learning_reduction(bits: &[bool], seed: u64) -> (Vec<bool>, u64) {
    let g = gadget_graph(bits);
    let partition = Partitioner::AllToAlice.split(&g);
    // This crate sits below bichrome-runner in the dependency graph,
    // so it drives the session through the core shim directly.
    #[allow(deprecated)]
    let out = solve_vertex_coloring(&partition, seed, &RctConfig::default());
    let recovered = recover_bits(&out.coloring, bits.len());
    (recovered, out.stats.total_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bichrome_graph::coloring::validate_vertex_coloring_with_palette;
    use bichrome_graph::greedy::greedy_vertex_coloring;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn recovery_from_greedy_coloring() {
        for seed in 0..10 {
            let bits = random_bits(12, seed);
            let g = gadget_graph(&bits);
            let c = greedy_vertex_coloring(&g);
            validate_vertex_coloring_with_palette(&g, &c, 3).expect("Δ=2 → 3 colors");
            assert_eq!(recover_bits(&c, bits.len()), bits);
        }
    }

    #[test]
    fn recovery_from_the_real_protocol() {
        let bits = random_bits(8, 3);
        let (recovered, comm_bits) = run_learning_reduction(&bits, 5);
        assert_eq!(recovered, bits, "Bob must learn Alice's string exactly");
        assert!(comm_bits > 0, "learning n bits costs communication");
    }

    #[test]
    fn recovery_works_for_extreme_strings() {
        for bits in [vec![false; 6], vec![true; 6]] {
            let (recovered, _) = run_learning_reduction(&bits, 1);
            assert_eq!(recovered, bits);
        }
    }

    #[test]
    fn single_gadget() {
        let (r0, _) = run_learning_reduction(&[false], 2);
        assert_eq!(r0, vec![false]);
        let (r1, _) = run_learning_reduction(&[true], 2);
        assert_eq!(r1, vec![true]);
    }

    #[test]
    #[should_panic(expected = "improper on a common edge")]
    fn decoder_rejects_broken_colorings() {
        use bichrome_graph::coloring::ColorId;
        let mut c = VertexColoring::new(4);
        for v in 0..4 {
            c.set(VertexId(v), ColorId(0));
        }
        let _ = recover_bit(&c, 0);
    }
}
