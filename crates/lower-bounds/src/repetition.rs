//! Parallel repetition of the ZEC game (Lemma 6.4) and the
//! communication-guessing protocol (Lemma 6.1).
//!
//! `n` independent ZEC instances form one big `(2Δ−1)`-edge-coloring
//! instance on `9n` vertices with `Δ = 2`. A zero-communication
//! protocol wins only if it wins *every* instance; with per-instance
//! win probability `v < 1` and independent play, the probability is
//! exactly `v^n = 2^{−Ω(n)}` — the executable shadow of Raz's parallel
//! repetition theorem (Proposition 6.3, which handles even correlated
//! strategies).
//!
//! Conversely, Lemma 6.1 turns an `o(n)`-bit protocol into a
//! zero-communication one by *guessing the transcript*: both parties
//! guess the same `c`-bit communication pattern with probability
//! `2^{−c}`. [`guessing_success_rate`] measures exactly that, closing
//! the contradiction loop `2^{−o(n)} > 2^{−Ω(n)}` that proves
//! Theorem 4.

use crate::zec::{is_win, PairInput, ZecStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of an `n`-fold parallel ZEC run.
#[derive(Debug, Clone, PartialEq)]
pub struct RepetitionOutcome {
    /// Number of instances per trial.
    pub instances: usize,
    /// Trials attempted.
    pub trials: usize,
    /// Trials in which *all* instances were won.
    pub all_won: usize,
    /// Mean per-instance win rate (for calibration).
    pub per_instance_rate: f64,
}

impl RepetitionOutcome {
    /// Empirical probability of winning all instances.
    pub fn win_all_rate(&self) -> f64 {
        self.all_won as f64 / self.trials as f64
    }

    /// The independent-play prediction `v^n`.
    pub fn predicted(&self) -> f64 {
        self.per_instance_rate.powi(self.instances as i32)
    }
}

/// Plays `trials` runs of `instances` independent ZEC games with the
/// given strategy applied independently per instance.
pub fn run_parallel_repetition(
    strategy: &dyn ZecStrategy,
    instances: usize,
    trials: usize,
    seed: u64,
) -> RepetitionOutcome {
    let mut referee = StdRng::seed_from_u64(seed ^ 0xFEED_0001);
    let mut a_rng = StdRng::seed_from_u64(seed ^ 0xFEED_000A);
    let mut b_rng = StdRng::seed_from_u64(seed ^ 0xFEED_000B);
    let mut all_won = 0usize;
    let mut instance_wins = 0usize;
    for _ in 0..trials {
        let mut won_all = true;
        for _ in 0..instances {
            let a_in = PairInput::sample(&mut referee);
            let b_in = PairInput::sample(&mut referee);
            let ac = strategy.alice(a_in, &mut a_rng);
            let bc = strategy.bob(b_in, &mut b_rng);
            if is_win(a_in, ac, b_in, bc) {
                instance_wins += 1;
            } else {
                won_all = false;
            }
        }
        if won_all {
            all_won += 1;
        }
    }
    RepetitionOutcome {
        instances,
        trials,
        all_won,
        per_instance_rate: instance_wins as f64 / (trials * instances) as f64,
    }
}

/// Lemma 6.1's communication-guessing experiment: both parties
/// independently guess a `pattern_bits`-long transcript; success iff
/// the guesses match the true pattern (all three uniform). The success
/// probability is `2^{−2·pattern_bits}` for independent guesses
/// against a random pattern, or `2^{−pattern_bits}` for the
/// "guess-and-agree" variant the lemma uses (both must match one
/// fixed pattern — equivalently, guess identically *and* correctly;
/// the lemma's accounting charges `2^{−o(n)}` total). We measure the
/// variant where both parties share the guess distribution and
/// success means both match the true pattern.
pub fn guessing_success_rate(pattern_bits: u32, trials: usize, seed: u64) -> f64 {
    assert!(pattern_bits <= 20, "keep the simulation tractable");
    let mut rng = StdRng::seed_from_u64(seed);
    let space = 1u64 << pattern_bits;
    let mut hits = 0usize;
    for _ in 0..trials {
        let truth = rng.gen_range(0..space);
        let alice_guess = rng.gen_range(0..space);
        let bob_guess = rng.gen_range(0..space);
        if alice_guess == truth && bob_guess == truth {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zec::{exact_win_probability, LabelingStrategy, RandomStrategy};

    #[test]
    fn win_all_decays_exponentially() {
        let s = RandomStrategy;
        let few = run_parallel_repetition(&s, 2, 30_000, 1);
        let more = run_parallel_repetition(&s, 8, 30_000, 2);
        assert!(
            more.win_all_rate() < few.win_all_rate(),
            "more instances, lower win-all: {} vs {}",
            few.win_all_rate(),
            more.win_all_rate()
        );
        // And the decay is multiplicative, matching v^n within noise.
        assert!(
            (few.win_all_rate() - few.predicted()).abs() < 0.03,
            "empirical {} vs predicted {}",
            few.win_all_rate(),
            few.predicted()
        );
    }

    #[test]
    fn deterministic_strategy_decay_matches_exact_power() {
        let s = LabelingStrategy::shifted();
        let v = exact_win_probability(&s);
        let out = run_parallel_repetition(&s, 4, 40_000, 5);
        let predicted = v.powi(4);
        assert!(
            (out.win_all_rate() - predicted).abs() < 0.02,
            "win-all {} vs v^4 = {predicted}",
            out.win_all_rate()
        );
    }

    #[test]
    fn guessing_rate_halves_per_bit() {
        let r4 = guessing_success_rate(2, 400_000, 3);
        let r6 = guessing_success_rate(3, 400_000, 4);
        // Success = both guesses hit: 2^{-2b}. b=2 → 1/16; b=3 → 1/64.
        assert!((r4 - 1.0 / 16.0).abs() < 0.01, "got {r4}");
        assert!((r6 - 1.0 / 64.0).abs() < 0.005, "got {r6}");
        assert!(r6 < r4);
    }

    #[test]
    fn outcome_accessors() {
        let out = RepetitionOutcome {
            instances: 3,
            trials: 100,
            all_won: 25,
            per_instance_rate: 0.6,
        };
        assert!((out.win_all_rate() - 0.25).abs() < 1e-9);
        assert!((out.predicted() - 0.216).abs() < 1e-9);
    }
}
