//! The ZEC-NEW game (§6.4): the variant whose lower bound transfers to
//! the *weaker*-(2Δ−1)-edge-coloring problem and hence, by reduction,
//! to the W-streaming model (Theorem 5, Corollary 1.2).
//!
//! Each player's hub is now itself drawn uniformly from a pool of
//! `HUB_POOL = 33075` candidates, and a player also wins by *guessing*
//! the other's hub — modeling a W-streaming algorithm that outputs the
//! other party's edge colors, which it can only do if it knows where
//! those edges attach. The win probability is bounded by
//! `11024/11025 + 2/33075 = 33074/33075 < 1`.

use crate::zec::{is_win, GameColor, PairInput, ZecStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of each player's hub pool in the paper's construction.
pub const HUB_POOL: u64 = 33_075;
/// The §6.4 bound on any ZEC-NEW strategy's win probability.
pub const ZEC_NEW_WIN_BOUND: f64 = 33_074.0 / 33_075.0;

/// A strategy for ZEC-NEW: colors as in ZEC, plus optional guesses of
/// the opponent's hub.
pub trait ZecNewStrategy {
    /// Alice's edge colors and her guess of Bob's hub index.
    fn alice(&self, hub: u64, input: PairInput, rng: &mut StdRng) -> ([GameColor; 2], u64);
    /// Bob's edge colors and his guess of Alice's hub index.
    fn bob(&self, hub: u64, input: PairInput, rng: &mut StdRng) -> ([GameColor; 2], u64);
    /// Display name.
    fn name(&self) -> &'static str;
}

/// Adapts any ZEC strategy: play the colors, guess hub 0.
#[derive(Debug)]
pub struct ColorOnly<S: ZecStrategy>(pub S);

impl<S: ZecStrategy> ZecNewStrategy for ColorOnly<S> {
    fn alice(&self, _hub: u64, input: PairInput, rng: &mut StdRng) -> ([GameColor; 2], u64) {
        (self.0.alice(input, rng), 0)
    }
    fn bob(&self, _hub: u64, input: PairInput, rng: &mut StdRng) -> ([GameColor; 2], u64) {
        (self.0.bob(input, rng), 0)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// One play of ZEC-NEW; `hub_pool` is parameterized so tests can
/// exercise the guessing arm with realistic hit rates.
pub fn play_zec_new(
    strategy: &dyn ZecNewStrategy,
    hub_pool: u64,
    referee: &mut StdRng,
    a_rng: &mut StdRng,
    b_rng: &mut StdRng,
) -> bool {
    let a_hub = referee.gen_range(0..hub_pool);
    let b_hub = referee.gen_range(0..hub_pool);
    let a_in = PairInput::sample(referee);
    let b_in = PairInput::sample(referee);
    let (ac, a_guess) = strategy.alice(a_hub, a_in, a_rng);
    let (bc, b_guess) = strategy.bob(b_hub, b_in, b_rng);
    // Win condition 1: proper joint coloring. Distinct hubs mean the
    // only shared vertices are the middles, exactly as in ZEC; with
    // hub pools, two players' edges never meet at a hub (a_hub and
    // b_hub index disjoint pools v_{A·} and v_{B·}).
    if is_win(a_in, ac, b_in, bc) {
        return true;
    }
    // Win conditions 2–3: either player guessed the other's hub.
    a_guess == b_hub || b_guess == a_hub
}

/// Monte-Carlo estimate of a ZEC-NEW strategy's win probability.
pub fn estimate_zec_new_win(
    strategy: &dyn ZecNewStrategy,
    hub_pool: u64,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut referee = StdRng::seed_from_u64(seed ^ 0x2EC_0001);
    let mut a_rng = StdRng::seed_from_u64(seed ^ 0x2EC_000A);
    let mut b_rng = StdRng::seed_from_u64(seed ^ 0x2EC_000B);
    let mut wins = 0usize;
    for _ in 0..trials {
        if play_zec_new(strategy, hub_pool, &mut referee, &mut a_rng, &mut b_rng) {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zec::{LabelingStrategy, RandomStrategy};

    #[test]
    fn bound_constant_is_the_papers() {
        // 11024/11025 + 2/33075 = 33072/33075 + 2/33075 = 33074/33075.
        let composed = 11_024.0 / 11_025.0 + 2.0 / 33_075.0;
        assert!((composed - ZEC_NEW_WIN_BOUND).abs() < 1e-12);
    }

    #[test]
    fn color_only_strategies_stay_bounded() {
        for (name, p) in [
            (
                "shifted",
                estimate_zec_new_win(&ColorOnly(LabelingStrategy::shifted()), HUB_POOL, 30_000, 1),
            ),
            (
                "random",
                estimate_zec_new_win(&ColorOnly(RandomStrategy), HUB_POOL, 30_000, 2),
            ),
        ] {
            assert!(p <= ZEC_NEW_WIN_BOUND + 0.01, "{name}: {p}");
            assert!(p > 0.3, "{name} still wins sometimes: {p}");
        }
    }

    #[test]
    fn guessing_arm_helps_with_tiny_pools() {
        /// Always colors improperly but guesses hub 0 — wins only via
        /// guessing.
        struct GuessOnly;
        impl ZecNewStrategy for GuessOnly {
            fn alice(&self, _h: u64, _i: PairInput, _r: &mut StdRng) -> ([GameColor; 2], u64) {
                ([0, 0], 0) // improper at the hub: never a coloring win
            }
            fn bob(&self, _h: u64, _i: PairInput, _r: &mut StdRng) -> ([GameColor; 2], u64) {
                ([0, 0], 0)
            }
            fn name(&self) -> &'static str {
                "guess-only"
            }
        }
        let p_small = estimate_zec_new_win(&GuessOnly, 2, 40_000, 3);
        let p_big = estimate_zec_new_win(&GuessOnly, 1_000, 40_000, 4);
        // With pool 2: P(a_guess = b_hub or b_guess = a_hub) = 1 - (1/2)(1/2)...
        // each guess hits with prob 1/2 independently → 3/4.
        assert!((p_small - 0.75).abs() < 0.02, "got {p_small}");
        assert!(p_big < 0.01, "big pools make guessing hopeless: {p_big}");
    }

    #[test]
    fn real_pool_guessing_is_negligible() {
        // At the paper's pool size the guessing arm contributes
        // ≤ 2/33075 ≈ 6e-5 — invisible at this sample size, so the
        // color-only and ZEC win rates coincide within noise.
        let zec_new = estimate_zec_new_win(&ColorOnly(RandomStrategy), HUB_POOL, 30_000, 9);
        let zec = crate::zec::estimate_win_probability(&RandomStrategy, 30_000, 9);
        assert!((zec_new - zec).abs() < 0.02, "{zec_new} vs {zec}");
    }
}
