//! The zero-communication edge-coloring (ZEC) game (§6.2).
//!
//! Fixed vertices `{v_A, v_B, v_1, ..., v_7}`. A referee hands Alice a
//! uniformly random pair of edges `{v_A, v_i}, {v_A, v_j}` (21 choices)
//! and Bob, independently, `{v_i, v_B}, {v_j, v_B}`. With no
//! communication and no public randomness, each player 3-colors its
//! own two edges; they win if the union is a proper 3-edge coloring.
//!
//! Lemma 6.2: every strategy wins with probability at most
//! [`ZEC_WIN_BOUND`] `= 11024/11025 < 1`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of middle vertices `v_1..v_7`.
pub const MIDDLE: usize = 7;
/// Number of possible inputs per player: `C(7,2)`.
pub const INPUTS: usize = 21;
/// The Lemma 6.2 upper bound on any strategy's win probability.
pub const ZEC_WIN_BOUND: f64 = 11024.0 / 11025.0;

/// An edge color in the 3-color palette of the game.
pub type GameColor = u8;

/// A player's input: the indices `0 ≤ i < j < 7` of the two middle
/// vertices its edges touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairInput {
    /// Smaller middle-vertex index.
    pub i: u8,
    /// Larger middle-vertex index.
    pub j: u8,
}

impl PairInput {
    /// Constructs a pair, normalizing order.
    ///
    /// # Panics
    ///
    /// Panics unless `a != b` and both are below 7.
    pub fn new(a: u8, b: u8) -> Self {
        assert!(
            a != b && a < MIDDLE as u8 && b < MIDDLE as u8,
            "bad pair ({a},{b})"
        );
        if a < b {
            PairInput { i: a, j: b }
        } else {
            PairInput { i: b, j: a }
        }
    }

    /// Every possible input, in lexicographic order.
    pub fn all() -> Vec<PairInput> {
        let mut out = Vec::with_capacity(INPUTS);
        for i in 0..MIDDLE as u8 {
            for j in (i + 1)..MIDDLE as u8 {
                out.push(PairInput { i, j });
            }
        }
        out
    }

    /// Uniformly random input.
    pub fn sample(rng: &mut StdRng) -> Self {
        let all = Self::all();
        all[rng.gen_range(0..all.len())]
    }
}

/// A (possibly randomized) strategy for the ZEC game.
///
/// The same object serves both players; implementations receive the
/// player's private RNG, so deterministic strategies simply ignore it.
/// Outputs are the colors of the edges to `input.i` and `input.j`,
/// in that order.
pub trait ZecStrategy {
    /// Alice's coloring of `{v_A, v_i}` and `{v_A, v_j}`.
    fn alice(&self, input: PairInput, rng: &mut StdRng) -> [GameColor; 2];
    /// Bob's coloring of `{v_i, v_B}` and `{v_j, v_B}`.
    fn bob(&self, input: PairInput, rng: &mut StdRng) -> [GameColor; 2];
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Whether the strategy ignores its RNG (enables exact evaluation).
    fn is_deterministic(&self) -> bool {
        true
    }
}

/// Checks the winning condition for one play of the game.
///
/// Proper means: Alice's two edge colors differ (they meet at `v_A`),
/// Bob's two differ (they meet at `v_B`), and wherever both players
/// touch the same middle vertex, their colors there differ.
pub fn is_win(
    a_in: PairInput,
    a_colors: [GameColor; 2],
    b_in: PairInput,
    b_colors: [GameColor; 2],
) -> bool {
    if a_colors[0] == a_colors[1] || b_colors[0] == b_colors[1] {
        return false;
    }
    let a_at = |v: u8| -> Option<GameColor> {
        if v == a_in.i {
            Some(a_colors[0])
        } else if v == a_in.j {
            Some(a_colors[1])
        } else {
            None
        }
    };
    for (idx, v) in [b_in.i, b_in.j].into_iter().enumerate() {
        if let Some(ac) = a_at(v) {
            if ac == b_colors[idx] {
                return false;
            }
        }
    }
    true
}

/// Exact win probability of a deterministic strategy, by enumerating
/// all `21 × 21` equally likely joint inputs.
///
/// # Panics
///
/// Panics if called on a randomized strategy.
pub fn exact_win_probability(strategy: &dyn ZecStrategy) -> f64 {
    assert!(
        strategy.is_deterministic(),
        "exact evaluation needs determinism"
    );
    let mut rng = StdRng::seed_from_u64(0); // ignored by deterministic strategies
    let all = PairInput::all();
    let mut wins = 0usize;
    for &a in &all {
        let ac = strategy.alice(a, &mut rng);
        for &b in &all {
            let bc = strategy.bob(b, &mut rng);
            if is_win(a, ac, b, bc) {
                wins += 1;
            }
        }
    }
    wins as f64 / (all.len() * all.len()) as f64
}

/// Monte-Carlo estimate of a strategy's win probability.
pub fn estimate_win_probability(strategy: &dyn ZecStrategy, trials: usize, seed: u64) -> f64 {
    let mut referee = StdRng::seed_from_u64(seed ^ 0x5EED_0001);
    let mut a_rng = StdRng::seed_from_u64(seed ^ 0x5EED_000A);
    let mut b_rng = StdRng::seed_from_u64(seed ^ 0x5EED_000B);
    let mut wins = 0usize;
    for _ in 0..trials {
        let a_in = PairInput::sample(&mut referee);
        let b_in = PairInput::sample(&mut referee);
        let ac = strategy.alice(a_in, &mut a_rng);
        let bc = strategy.bob(b_in, &mut b_rng);
        if is_win(a_in, ac, b_in, bc) {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

// ---------------------------------------------------------------------------
// Strategy suite
// ---------------------------------------------------------------------------

/// Deterministic strategy: color the edge to `v_i` with `labels[i]`,
/// bumping the second edge's color by one if the two collide at the
/// hub. Alice and Bob may use different base labelings.
#[derive(Debug, Clone)]
pub struct LabelingStrategy {
    /// Alice's labels per middle vertex.
    pub alice_labels: [GameColor; MIDDLE],
    /// Bob's labels per middle vertex.
    pub bob_labels: [GameColor; MIDDLE],
    /// Report name.
    pub label: &'static str,
}

impl LabelingStrategy {
    fn play(labels: &[GameColor; MIDDLE], input: PairInput) -> [GameColor; 2] {
        let c0 = labels[input.i as usize] % 3;
        let mut c1 = labels[input.j as usize] % 3;
        if c1 == c0 {
            c1 = (c1 + 1) % 3;
        }
        [c0, c1]
    }

    /// Both players use the labeling `i mod 3`.
    pub fn symmetric() -> Self {
        LabelingStrategy {
            alice_labels: [0, 1, 2, 0, 1, 2, 0],
            bob_labels: [0, 1, 2, 0, 1, 2, 0],
            label: "labeling-symmetric",
        }
    }

    /// Bob shifts his labels by one — the natural collision-avoidance
    /// attempt.
    pub fn shifted() -> Self {
        LabelingStrategy {
            alice_labels: [0, 1, 2, 0, 1, 2, 0],
            bob_labels: [1, 2, 0, 1, 2, 0, 1],
            label: "labeling-shifted",
        }
    }
}

impl ZecStrategy for LabelingStrategy {
    fn alice(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        Self::play(&self.alice_labels, input)
    }
    fn bob(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        Self::play(&self.bob_labels, input)
    }
    fn name(&self) -> &'static str {
        self.label
    }
}

/// Deterministic strategy ignoring the input: first edge color 0,
/// second color 1. (A deliberately weak member of the suite.)
#[derive(Debug, Clone, Default)]
pub struct LexStrategy;

impl ZecStrategy for LexStrategy {
    fn alice(&self, _input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        [0, 1]
    }
    fn bob(&self, _input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        [2, 1]
    }
    fn name(&self) -> &'static str {
        "lexicographic"
    }
}

/// Randomized strategy: a uniformly random ordered pair of distinct
/// colors, independent of the input.
#[derive(Debug, Clone, Default)]
pub struct RandomStrategy;

impl ZecStrategy for RandomStrategy {
    fn alice(&self, _input: PairInput, rng: &mut StdRng) -> [GameColor; 2] {
        let c0 = rng.gen_range(0..3u8);
        let c1 = (c0 + rng.gen_range(1..3u8)) % 3;
        [c0, c1]
    }
    fn bob(&self, input: PairInput, rng: &mut StdRng) -> [GameColor; 2] {
        self.alice(input, rng)
    }
    fn name(&self) -> &'static str {
        "random"
    }
    fn is_deterministic(&self) -> bool {
        false
    }
}

/// The strongest deterministic attempt in the suite: players try to
/// "agree" that Alice owns colors by vertex parity while Bob
/// complements, maximizing middle-vertex disagreement.
#[derive(Debug, Clone, Default)]
pub struct ComplementStrategy;

impl ZecStrategy for ComplementStrategy {
    fn alice(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        // Alice prefers colors {0, 1}.
        if input.i.is_multiple_of(2) {
            [0, 1]
        } else {
            [1, 0]
        }
    }
    fn bob(&self, input: PairInput, _rng: &mut StdRng) -> [GameColor; 2] {
        // Bob prefers colors {2, and the one Alice is least likely to
        // put here}.
        if input.j.is_multiple_of(2) {
            [2, 0]
        } else {
            [2, 1]
        }
    }
    fn name(&self) -> &'static str {
        "complement"
    }
}

/// The built-in strategy suite used by experiments and tests.
pub fn strategy_suite() -> Vec<Box<dyn ZecStrategy>> {
    vec![
        Box::new(LabelingStrategy::symmetric()),
        Box::new(LabelingStrategy::shifted()),
        Box::new(LexStrategy),
        Box::new(ComplementStrategy),
        Box::new(RandomStrategy),
    ]
}

// ---------------------------------------------------------------------------
// Label analysis (the combinatorial core of Lemma 6.2)
// ---------------------------------------------------------------------------

/// The labels `L_A(v_i)`, `L_B(v_i)` of Lemma 6.2 for a deterministic
/// strategy: color `c ∈ L_A(v_i)` iff some input makes Alice color her
/// edge at `v_i` with `c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    /// `L_A(v_i)` for each middle vertex, sorted.
    pub alice: Vec<Vec<GameColor>>,
    /// `L_B(v_i)` for each middle vertex, sorted.
    pub bob: Vec<Vec<GameColor>>,
}

/// Computes the Lemma 6.2 labels of a deterministic strategy.
pub fn compute_labels(strategy: &dyn ZecStrategy) -> Labels {
    assert!(
        strategy.is_deterministic(),
        "labels are defined per deterministic run"
    );
    let mut rng = StdRng::seed_from_u64(0);
    let mut alice = vec![Vec::new(); MIDDLE];
    let mut bob = vec![Vec::new(); MIDDLE];
    for input in PairInput::all() {
        let ac = strategy.alice(input, &mut rng);
        let bc = strategy.bob(input, &mut rng);
        alice[input.i as usize].push(ac[0]);
        alice[input.j as usize].push(ac[1]);
        bob[input.i as usize].push(bc[0]);
        bob[input.j as usize].push(bc[1]);
    }
    for l in alice.iter_mut().chain(bob.iter_mut()) {
        l.sort_unstable();
        l.dedup();
    }
    Labels { alice, bob }
}

/// A witness of *why* the strategy must lose somewhere, mirroring the
/// case analysis of Lemma 6.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LossWitness {
    /// Two vertices with identical singleton labels for one player:
    /// giving that player both as input forces a hub conflict.
    SingletonCollision {
        /// Which player's labels collide (true = Alice).
        alice_side: bool,
        /// The two middle vertices.
        vertices: (u8, u8),
        /// The shared forced color.
        color: GameColor,
    },
    /// A middle vertex where both labels have size ≥ 2 and share a
    /// color: a joint input exists where both play that color there.
    SharedColor {
        /// The middle vertex.
        vertex: u8,
        /// A color in `L_A(v) ∩ L_B(v)`.
        color: GameColor,
    },
}

/// Finds a loss witness for a deterministic strategy, following
/// Lemma 6.2's dichotomy. By the lemma, one always exists.
pub fn find_loss_witness(labels: &Labels) -> Option<LossWitness> {
    // Case 1: ≥ 4 singleton labels on one side → a repeated singleton.
    for (alice_side, side) in [(true, &labels.alice), (false, &labels.bob)] {
        let singles: Vec<(usize, GameColor)> = side
            .iter()
            .enumerate()
            .filter(|(_, l)| l.len() == 1)
            .map(|(v, l)| (v, l[0]))
            .collect();
        if singles.len() >= 4 {
            for (a_idx, &(va, ca)) in singles.iter().enumerate() {
                for &(vb, cb) in &singles[a_idx + 1..] {
                    if ca == cb {
                        return Some(LossWitness::SingletonCollision {
                            alice_side,
                            vertices: (va as u8, vb as u8),
                            color: ca,
                        });
                    }
                }
            }
        }
    }
    // Case 2: some vertex has both labels of size ≥ 2 — they share a
    // color by pigeonhole over 3 colors.
    for v in 0..MIDDLE {
        if labels.alice[v].len() >= 2 && labels.bob[v].len() >= 2 {
            for &c in &labels.alice[v] {
                if labels.bob[v].contains(&c) {
                    return Some(LossWitness::SharedColor {
                        vertex: v as u8,
                        color: c,
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_enumerate_21() {
        let all = PairInput::all();
        assert_eq!(all.len(), INPUTS);
        assert!(all.windows(2).all(|w| (w[0].i, w[0].j) < (w[1].i, w[1].j)));
    }

    #[test]
    #[should_panic(expected = "bad pair")]
    fn pair_rejects_equal() {
        let _ = PairInput::new(3, 3);
    }

    #[test]
    fn pair_normalizes() {
        assert_eq!(PairInput::new(5, 2), PairInput::new(2, 5));
    }

    #[test]
    fn win_condition_cases() {
        let a = PairInput::new(0, 1);
        let b_disjoint = PairInput::new(2, 3);
        // Hub conflicts lose.
        assert!(!is_win(a, [1, 1], b_disjoint, [0, 1]));
        assert!(!is_win(a, [0, 1], b_disjoint, [2, 2]));
        // Disjoint middles always win with hub-proper colors.
        assert!(is_win(a, [0, 1], b_disjoint, [0, 1]));
        // Shared middle with equal color loses...
        let b_shares_0 = PairInput::new(0, 5);
        assert!(!is_win(a, [0, 1], b_shares_0, [0, 2]));
        // ... but different colors there win.
        assert!(is_win(a, [0, 1], b_shares_0, [2, 0]));
    }

    #[test]
    fn every_deterministic_strategy_obeys_lemma_6_2() {
        for s in strategy_suite() {
            if !s.is_deterministic() {
                continue;
            }
            let p = exact_win_probability(s.as_ref());
            assert!(
                p <= ZEC_WIN_BOUND + 1e-12,
                "{} wins with {p} > bound {ZEC_WIN_BOUND}",
                s.name()
            );
            assert!(p > 0.0, "{} should at least sometimes win", s.name());
        }
    }

    #[test]
    fn randomized_strategy_also_bounded() {
        let p = estimate_win_probability(&RandomStrategy, 40_000, 7);
        // Monte-Carlo noise is ~0.005 at this sample size.
        assert!(p <= ZEC_WIN_BOUND + 0.01, "estimated {p}");
        assert!(p > 0.3, "random play still wins often: {p}");
    }

    #[test]
    fn exact_and_estimated_agree_for_deterministic() {
        let s = LabelingStrategy::shifted();
        let exact = exact_win_probability(&s);
        let est = estimate_win_probability(&s, 60_000, 3);
        assert!(
            (exact - est).abs() < 0.02,
            "exact {exact} vs estimate {est}"
        );
    }

    #[test]
    fn labels_and_witness_exist_for_all_deterministic() {
        for s in strategy_suite() {
            if !s.is_deterministic() {
                continue;
            }
            let labels = compute_labels(s.as_ref());
            // Every middle vertex is touched by some input.
            for v in 0..MIDDLE {
                assert!(!labels.alice[v].is_empty());
                assert!(!labels.bob[v].is_empty());
            }
            let witness = find_loss_witness(&labels);
            assert!(
                witness.is_some(),
                "Lemma 6.2 dichotomy must produce a witness for {}",
                s.name()
            );
        }
    }

    #[test]
    fn witness_predicts_a_real_loss() {
        // For the symmetric labeling, materialize the witness into an
        // actual losing joint input.
        let s = LabelingStrategy::symmetric();
        let labels = compute_labels(&s);
        let mut rng = StdRng::seed_from_u64(0);
        match find_loss_witness(&labels).expect("exists") {
            LossWitness::SharedColor { vertex, color } => {
                // Find Alice and Bob inputs that both put `color` at
                // `vertex`.
                let all = PairInput::all();
                let a_in = all
                    .iter()
                    .copied()
                    .find(|inp| {
                        let c = s.alice(*inp, &mut rng);
                        (inp.i == vertex && c[0] == color) || (inp.j == vertex && c[1] == color)
                    })
                    .expect("label membership implies such an input");
                let b_in = all
                    .iter()
                    .copied()
                    .find(|inp| {
                        let c = s.bob(*inp, &mut rng);
                        (inp.i == vertex && c[0] == color) || (inp.j == vertex && c[1] == color)
                    })
                    .expect("label membership implies such an input");
                let ac = s.alice(a_in, &mut rng);
                let bc = s.bob(b_in, &mut rng);
                assert!(!is_win(a_in, ac, b_in, bc), "witness input must lose");
            }
            LossWitness::SingletonCollision {
                alice_side,
                vertices,
                ..
            } => {
                // Give that player both vertices: hub conflict after
                // tie-breaking may still dodge, but the *pair* of
                // forced colors collides at the hub for labels without
                // the bump; our strategies bump, so this arm is not
                // expected for them.
                panic!(
                    "unexpected singleton collision for symmetric labeling: \
                     {alice_side} {vertices:?}"
                );
            }
        }
    }

    #[test]
    fn suite_has_distinct_names() {
        let names: Vec<&str> = strategy_suite().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
